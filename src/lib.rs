//! # past — facade for the PAST reproduction workspace
//!
//! A from-scratch Rust reproduction of *"Storage management and caching
//! in PAST, a large-scale, persistent peer-to-peer storage utility"*
//! (Rowstron & Druschel, SOSP 2001). Each subsystem lives in its own
//! crate; this facade re-exports them under one roof for examples,
//! integration tests and downstream users.
//!
//! - [`id`] — 128/160-bit identifier arithmetic (nodeIds, fileIds).
//! - [`crypto`] — SHA-1, signatures, smartcards, certificates, quotas.
//! - [`net`] — deterministic discrete-event network emulation.
//! - [`pastry`] — the Pastry routing substrate.
//! - [`store`] — per-node storage management and GD-S/LRU caching.
//! - [`core`] — the PAST protocol (insert/lookup/reclaim, replica and
//!   file diversion, maintenance, caching).
//! - [`workload`] — synthetic traces calibrated to the paper's.
//! - [`sim`] — the experiment harness behind every table and figure.
//! - [`erasure`] — Reed–Solomon coding (the paper's §3.6 extension).
//! - [`obs`] — metrics registry, operation spans, JSON emission.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.

pub use past_core as core;
pub use past_crypto as crypto;
pub use past_erasure as erasure;
pub use past_id as id;
pub use past_net as net;
pub use past_obs as obs;
pub use past_pastry as pastry;
pub use past_sim as sim;
pub use past_store as store;
pub use past_workload as workload;
