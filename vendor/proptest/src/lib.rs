//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset used by this workspace's tests: the
//! [`proptest!`] macro over `name in strategy` / `name: Type` argument
//! lists, integer-range and `any::<T>()` strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure
//! files: each property runs a fixed number of deterministically
//! seeded cases (default 96, override with `PROPTEST_CASES`), so
//! failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of values for property tests.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in only ever samples.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..64);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy drawing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_tuple {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));

/// Combinator strategies (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Vec of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T>(Vec<T>);

        /// Uniform choice from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 96).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// Deterministic per-property RNG, varied by the property name.
pub fn case_rng(property: &str, case: u32) -> StdRng {
    // FNV-1a over the property name keeps distinct properties on
    // distinct streams while staying reproducible run to run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Common imports for property tests.
pub mod prelude {
    pub use super::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to a `continue` of the enclosing case loop generated by
/// [`proptest!`], so it is only usable inside a property body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines `#[test]` functions that run a body over sampled inputs.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u64..100, ys in prop::collection::vec(any::<u8>(), 0..32)) { ... }
///     #[test]
///     fn also_holds(v: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Entry: munch one fn item at a time.
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            for case in 0..cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $crate::__proptest_bind!(proptest_rng, $($args)*);
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: binds one argument list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, mut $var:ident: $ty:ty $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $var: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $var:ident: $ty:ty $(, $($rest:tt)*)?) => {
        let $var: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn range_strategy_bounds(x in 10u64..20) {
            prop_assert!((10..20).contains(&x));
        }

        #[test]
        fn typed_args(a: u32, b: bool) {
            let _ = (a, b);
        }

        #[test]
        fn vec_strategy(v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn select_strategy(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }
    }

    #[test]
    fn cases_deterministic() {
        let a: u64 = crate::Strategy::sample(&(0u64..1000), &mut crate::case_rng("p", 0));
        let b: u64 = crate::Strategy::sample(&(0u64..1000), &mut crate::case_rng("p", 0));
        assert_eq!(a, b);
    }
}
