//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository cannot reach a crates.io
//! mirror, so the workspace patches `rand` with this self-contained
//! implementation of the *subset* of the 0.8 API the codebase uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic
//! and high quality, but it does **not** reproduce the byte streams of
//! upstream `rand`'s ChaCha12-based `StdRng`. All experiments in this
//! repository are self-consistent (seed → identical run under this
//! implementation); absolute values differ from runs made with upstream
//! `rand`.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an RNG (the `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform draw over a sub-range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `high > low` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty as $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                // Multiply-shift bounded draw; the modulo fallback keeps
                // 128-bit spans correct. Bias is < 2^-64 for spans below
                // 2^64, irrelevant for simulation workloads.
                let draw = if span <= u64::MAX as u128 {
                    ((rng.next_u64() as u128 * span) >> 64) as u128
                } else {
                    u128::sample_standard(rng) % span
                };
                ((low as $wide as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as usize, u128 as u128, i32 as u32, i64 as u64, i128 as u128, isize as usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                if low == <$t>::MIN && high == <$t>::MAX {
                    return <$t as SampleStandard>::sample_standard(rng);
                }
                <$t>::sample_range(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}
impl_range_inclusive_int!(u8, u16, u32, u64, u128, usize, i32, i64, isize);

/// The user-facing RNG interface (subset of `rand::Rng` 0.8).
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard (uniform) distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose RNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro state must not be all zero.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_callable_through_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
