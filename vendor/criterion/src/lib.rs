//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface used by this workspace's `harness = false`
//! benches — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — but replaces
//! criterion's statistical engine with a single timed batch per
//! benchmark. Good enough to smoke-run `cargo bench` and keep benches
//! compiling under clippy; not a measurement tool. Serious replay
//! throughput numbers come from the `BENCH_replay.json` reporter in
//! `past-bench` instead.

use std::time::Instant;

/// How batched inputs are grouped (accepted for API compatibility;
/// every batch size runs the same way here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total_ns;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.iters, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (mapped directly to iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n as u64;
        self
    }

    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, self.throughput, f);
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed_ns as f64 / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 / (per_iter_ns / 1e9))
        }
        None => String::new(),
    };
    println!("bench {label}: {per_iter_ns:.0} ns/iter ({iters} iters){rate}");
}

/// Declares a function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        Criterion { iters: 3 }.bench_function("t", |b| {
            b.iter(|| ran += 1);
        });
        assert_eq!(ran, 3);
    }

    #[test]
    fn group_batched_runs_setup_per_iter() {
        let mut c = Criterion { iters: 4 };
        let mut setups = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(4).throughput(Throughput::Bytes(1));
        g.bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| {},
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
