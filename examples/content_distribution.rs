//! Content distribution scenario: a popular file is fetched by clients
//! all over an 8-site network; PAST's route-through caching pulls copies
//! toward each site, cutting fetch distance and balancing query load —
//! the §4/§5.2 story.
//!
//! Run with: `cargo run --release --example content_distribution`

use past::core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past::crypto::{derive_node_id, KeyPair, Scheme};
use past::net::{Addr, ClusteredTopology, SimDuration, Simulator};
use past::pastry::{NodeEntry, PastryConfig, PastryNode};
use past::store::CachePolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(
    nodes: usize,
    cache: CachePolicyKind,
    seed: u64,
) -> Simulator<PastOverlayNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = ClusteredTopology::round_robin(nodes, 8);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topology), seed);
    let pastry_cfg = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::ZERO,
        ..Default::default()
    };
    let past_cfg = PastConfig {
        cache_policy: cache,
        ..Default::default()
    };
    for i in 0..nodes {
        let keys = KeyPair::generate(Scheme::Keyed, &mut rng);
        let id = derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let app = PastNode::new(past_cfg.clone(), keys, 64 << 20, u64::MAX / 2);
        let bootstrap = (i > 0).then(|| Addr(rng.gen_range(0..i) as u32));
        sim.add_node(
            addr,
            PastryNode::new(pastry_cfg.clone(), NodeEntry::new(id, addr), app, bootstrap),
        );
        sim.run_until_idle();
    }
    sim
}

fn run_workload(sim: &mut Simulator<PastOverlayNode>, nodes: usize) -> (f64, f64, u64) {
    // Publish one popular file.
    sim.invoke(Addr(0), |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.insert(actx, "viral-video.mp4", 2 << 20);
        });
    });
    sim.run_until_idle();
    let mut file_id = None;
    for (_, _, e) in sim.drain_upcalls() {
        if let PastEvent::InsertDone {
            file_id: fid,
            success: true,
            ..
        } = e
        {
            file_id = Some(fid);
        }
    }
    let file_id = file_id.expect("publish succeeded");
    // 400 fetches from clients across all 8 sites.
    let mut rng = StdRng::seed_from_u64(99);
    let mut early_hops = 0u64;
    let mut late_hops = 0u64;
    let mut cache_hits = 0u64;
    let rounds = 400;
    for r in 0..rounds {
        let from = Addr(rng.gen_range(0..nodes) as u32);
        sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.lookup(actx, file_id);
            });
        });
        sim.run_until_idle();
        for (_, _, e) in sim.drain_upcalls() {
            if let PastEvent::LookupDone {
                found: true,
                hops,
                kind,
                ..
            } = e
            {
                if r < rounds / 4 {
                    early_hops += hops as u64;
                } else if r >= 3 * rounds / 4 {
                    late_hops += hops as u64;
                }
                if matches!(kind, Some(past::core::HitKind::Cached)) {
                    cache_hits += 1;
                }
            }
        }
    }
    (
        early_hops as f64 / (rounds / 4) as f64,
        late_hops as f64 / (rounds / 4) as f64,
        cache_hits,
    )
}

fn main() {
    let nodes = 120;
    println!("content distribution across 8 sites, {nodes} nodes\n");
    for (label, policy) in [
        ("GreedyDual-Size", CachePolicyKind::GreedyDualSize),
        ("LRU", CachePolicyKind::Lru),
        ("no caching", CachePolicyKind::None),
    ] {
        let mut sim = build(nodes, policy, 21);
        let (early, late, hits) = run_workload(&mut sim, nodes);
        println!(
            "{label:>16}: mean hops first-quarter {early:.2} -> last-quarter {late:.2}  (cache hits: {hits})"
        );
    }
    println!(
        "\nWith caching, popular content migrates toward its consumers:\n\
         late fetches take fewer Pastry hops and most are served from caches."
    );
}
