//! The §3.6 extension: Reed–Solomon fragments instead of whole-file
//! replicas. Shows the storage-overhead/durability tradeoff the paper
//! sketches ("adding m checksum blocks to n data blocks ... reduces the
//! storage overhead from m to (m+n)/n times the file size").
//!
//! Run with: `cargo run --release --example erasure_coding`

use past::erasure::ReedSolomon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let file: Vec<u8> = (0..1_000_000u32).map(|i| (i * 2654435761) as u8).collect();
    println!("file size: {} bytes\n", file.len());

    println!("{:<14} {:>10} {:>12} {:>18}", "scheme", "tolerates", "overhead", "bytes stored");
    // k-way replication, the paper's default with k = 5.
    for k in [3usize, 5] {
        println!(
            "{:<14} {:>10} {:>11.2}x {:>18}",
            format!("replicate k={k}"),
            k - 1,
            k as f64,
            k * file.len()
        );
    }
    // Reed-Solomon variants tolerating the same number of losses.
    for (n, m) in [(4usize, 2usize), (8, 4), (16, 4)] {
        let rs = ReedSolomon::new(n, m);
        let shards = rs.encode_bytes(&file);
        let stored: usize = shards.iter().map(|s| s.len()).sum();
        println!(
            "{:<14} {:>10} {:>11.2}x {:>18}",
            format!("RS({n},{m})"),
            m,
            rs.storage_overhead(),
            stored
        );
    }

    // Demonstrate recovery: RS(8,4) with 4 random losses.
    println!("\nrecovery demo: RS(8,4), dropping 4 of 12 fragments at random");
    let rs = ReedSolomon::new(8, 4);
    let shards = rs.encode_bytes(&file);
    let mut rng = StdRng::seed_from_u64(5);
    let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    let mut dropped = 0;
    while dropped < 4 {
        let idx = rng.gen_range(0..received.len());
        if received[idx].take().is_some() {
            println!("  lost fragment {idx}");
            dropped += 1;
        }
    }
    let recovered = rs
        .decode_bytes(&mut received, file.len())
        .expect("recoverable with n fragments");
    assert_eq!(recovered, file);
    println!("file recovered bit-exact from the surviving 8 fragments.");
    println!(
        "\nsame 4-loss tolerance as k=5 replication at {:.2}x storage instead of 5x",
        rs.storage_overhead()
    );
}
