//! Archival backup scenario: a user archives a filesystem snapshot into
//! PAST, nodes fail, and every file remains retrievable — the paper's
//! core durability argument ("obviates the need for physical transport
//! of storage media to protect backup and archival data").
//!
//! Run with: `cargo run --release --example archival_backup`

use past::core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past::crypto::{derive_node_id, KeyPair, Scheme};
use past::net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past::pastry::{NodeEntry, PastryConfig, PastryNode};
use past::store::CachePolicyKind;
use past::workload::FsTraceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = 60;
    let mut rng = StdRng::seed_from_u64(11);
    let topology = EuclideanTopology::random(nodes, &mut rng);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topology), 11);

    // Keep-alives ON: the overlay must detect failures and re-replicate.
    let pastry_cfg = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::from_secs(5),
        failure_timeout: SimDuration::from_secs(15),
        // Lazy routing-table repair: forwards detect dead next hops by
        // timeout and route around them.
        per_hop_acks: true,
        ..Default::default()
    };
    let past_cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    println!("booting a {nodes}-node archival overlay (keep-alives on) ...");
    for i in 0..nodes {
        let keys = KeyPair::generate(Scheme::Keyed, &mut rng);
        let id = derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let app = PastNode::new(past_cfg.clone(), keys, 200 << 20, u64::MAX / 2);
        let bootstrap = (i > 0).then(|| Addr(rng.gen_range(0..i) as u32));
        sim.add_node(
            addr,
            PastryNode::new(pastry_cfg.clone(), NodeEntry::new(id, addr), app, bootstrap),
        );
        sim.run_for(SimDuration::from_secs(1));
    }

    // Archive a small filesystem snapshot (sizes follow the paper's
    // filesystem workload statistics) from one access point.
    let snapshot = FsTraceConfig {
        files: 200,
        max_size: (4u64 << 20) as f64,
        mean_size: 60_000.0,
        median_size: 4_578.0,
        ..Default::default()
    }
    .generate();
    println!("archiving {} files ...", snapshot.files.len());
    let mut archived = Vec::new();
    for spec in &snapshot.files {
        let name = format!("backup/{}", spec.name());
        let size = spec.size;
        sim.invoke(Addr(0), move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, size);
            });
        });
        sim.run_for(SimDuration::from_secs(2));
        for (_, _, event) in sim.drain_upcalls() {
            if let PastEvent::InsertDone {
                file_id,
                success: true,
                ..
            } = event
            {
                archived.push(file_id);
            }
        }
    }
    println!("{} files archived with k = 5 replicas each", archived.len());

    // Disaster: 8 nodes fail (scattered). Keep-alives detect the
    // failures; §3.5 maintenance re-creates lost replicas.
    let victims = [5u32, 12, 19, 26, 33, 40, 47, 54];
    println!("failing {} nodes ...", victims.len());
    for v in victims {
        sim.fail_node(Addr(v));
    }
    sim.run_for(SimDuration::from_secs(180));
    sim.drain_upcalls();

    // Every archived file must still be retrievable from a live node.
    // A request routed through a stale table entry can be swallowed by a
    // dead node; like a real client, retry from a different access point.
    let mut found = 0;
    let mut lost = 0;
    for (i, fid) in archived.iter().enumerate() {
        let fid = *fid;
        let mut ok = false;
        for attempt in 0..3u32 {
            let from = Addr((1 + i as u32 * 7 + attempt * 13) % nodes as u32);
            if victims.contains(&from.0) {
                continue;
            }
            sim.invoke(from, move |node, ctx| {
                node.invoke_app(ctx, |app, actx| {
                    app.lookup(actx, fid);
                });
            });
            sim.run_for(SimDuration::from_secs(3));
            for (_, _, event) in sim.drain_upcalls() {
                if let PastEvent::LookupDone { found: f, .. } = event {
                    ok = ok || f;
                }
            }
            if ok {
                break;
            }
        }
        if ok {
            found += 1;
        } else {
            lost += 1;
        }
    }
    println!("after failures: {found} retrievable, {lost} lost");
    assert_eq!(lost, 0, "archival durability violated");
    println!("all archived files survived the failures.");
}
