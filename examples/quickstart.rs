//! Quickstart: build a small PAST overlay, insert a file, look it up
//! from another node, then reclaim it.
//!
//! Run with: `cargo run --release --example quickstart`

use past::core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past::crypto::{derive_node_id, KeyPair, Scheme};
use past::net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past::pastry::{NodeEntry, PastryConfig, PastryNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = 50;
    let mut rng = StdRng::seed_from_u64(7);

    // 1. An emulated network: nodes scattered in a unit square, message
    //    latency proportional to distance.
    let topology = EuclideanTopology::random(nodes, &mut rng);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topology), 7);

    // 2. Boot the overlay: every node gets a key pair, derives its
    //    nodeId from the key (so it cannot choose its position), and
    //    joins via an existing contact.
    let pastry_cfg = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::ZERO, // static demo network
        ..Default::default()
    };
    let past_cfg = PastConfig::default(); // k = 5, t_pri = 0.1, t_div = 0.05, GD-S cache
    println!("booting a {nodes}-node PAST overlay ...");
    for i in 0..nodes {
        let keys = KeyPair::generate(Scheme::Keyed, &mut rng);
        let id = derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let app = PastNode::new(past_cfg.clone(), keys, 100 << 20, u64::MAX / 2);
        let bootstrap = (i > 0).then(|| Addr(rng.gen_range(0..i) as u32));
        sim.add_node(
            addr,
            PastryNode::new(pastry_cfg.clone(), NodeEntry::new(id, addr), app, bootstrap),
        );
        sim.run_until_idle();
    }
    println!("overlay ready ({} messages exchanged)\n", sim.stats().delivered);

    // 3. Insert a file from node 3. The fileId is the SHA-1 of
    //    (name, owner key, salt); k = 5 replicas land on the nodes with
    //    the numerically closest nodeIds.
    sim.invoke(Addr(3), |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.insert(actx, "vacation-photos.tar", 4 << 20);
        });
    });
    sim.run_until_idle();
    let mut file_id = None;
    for (_, _, event) in sim.drain_upcalls() {
        if let PastEvent::InsertDone {
            file_id: fid,
            success,
            attempts,
            ..
        } = event
        {
            println!("insert: success={success} attempts={attempts} fileId={fid}");
            file_id = Some(fid);
        }
    }
    let file_id = file_id.expect("insert completed");

    // 4. Look the file up from a distant node; Pastry routes toward the
    //    fileId and the first node holding a copy answers.
    sim.invoke(Addr(42), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.lookup(actx, file_id);
        });
    });
    sim.run_until_idle();
    for (_, _, event) in sim.drain_upcalls() {
        if let PastEvent::LookupDone {
            found, hops, kind, ..
        } = event
        {
            println!("lookup from n42: found={found} hops={hops} served_by={kind:?}");
        }
    }

    // 5. Reclaim the storage (only the owner's signed reclaim
    //    certificate is accepted) and confirm the space returns.
    sim.invoke(Addr(3), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.reclaim(actx, file_id);
        });
    });
    sim.run_until_idle();
    for (_, _, event) in sim.drain_upcalls() {
        if let PastEvent::ReclaimDone { ok, freed, .. } = event {
            println!("reclaim: ok={ok} freed={freed} bytes of quota");
        }
    }
    let quota = sim.node(Addr(3)).unwrap().app().quota();
    println!("client quota in use after reclaim: {} bytes", quota.used());
}
