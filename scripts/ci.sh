#!/usr/bin/env bash
# Local CI gate: build, full test suite, and lint — all offline.
#
# The workspace vendors its few dev-dependencies (see vendor/ and the
# [patch.crates-io] table in Cargo.toml), so everything here runs with
# no network access. Run from the repository root:
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test"
# The root package is a facade; --workspace covers every crate.
cargo test -q --workspace --no-fail-fast --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
