#!/usr/bin/env bash
# Local CI gate: build, full test suite, and lint — all offline.
#
# The workspace vendors its few dev-dependencies (see vendor/ and the
# [patch.crates-io] table in Cargo.toml), so everything here runs with
# no network access. Run from the repository root:
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== zero-test guard"
# Every workspace crate must ship at least one test: a crate that
# silently drops to zero tests would pass `cargo test` forever.
for crate in crates/*/; do
  if ! grep -rq '#\[test\]' "${crate}src" "${crate}tests" 2>/dev/null; then
    echo "error: ${crate%/} has no tests (add at least one #[test])" >&2
    exit 1
  fi
done

echo "== cargo test"
# The root package is a facade; --workspace covers every crate.
cargo test -q --workspace --no-fail-fast --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
