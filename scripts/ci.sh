#!/usr/bin/env bash
# Local CI gate: build, full test suite, and lint — all offline.
#
# The workspace vendors its few dev-dependencies (see vendor/ and the
# [patch.crates-io] table in Cargo.toml), so everything here runs with
# no network access. Run from the repository root:
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== zero-test guard"
# Every workspace crate must ship at least one test: a crate that
# silently drops to zero tests would pass `cargo test` forever.
for crate in crates/*/; do
  if ! grep -rq '#\[test\]' "${crate}src" "${crate}tests" 2>/dev/null; then
    echo "error: ${crate%/} has no tests (add at least one #[test])" >&2
    exit 1
  fi
done

echo "== cargo test"
# The root package is a facade; --workspace covers every crate.
cargo test -q --workspace --no-fail-fast --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== perf smoke (perf_suite, reduced scale)"
# End-to-end run of the perf bench at a scale that finishes in seconds;
# guards the hot path and the hand-rolled JSON writer. Artifacts go to
# a scratch dir so CI never dirties the working tree.
perf_out=$(mktemp -d)
trap 'rm -rf "$perf_out"' EXIT
PAST_NODES=60 PAST_FILES=5000 PAST_OUT_DIR="$perf_out" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
python3 - "$perf_out/BENCH_perf.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
workloads = {(w["name"], w["scale"]) for w in report["workloads"]}
want = {("insert_heavy", "env"), ("lookup_heavy", "env"), ("churn", "env")}
missing = want - workloads
assert not missing, f"perf_suite JSON missing workloads: {missing}"
for w in report["workloads"]:
    assert w["wall_seconds"] > 0, f"{w['name']}: non-positive wall time"
print(f"perf smoke OK: {len(workloads)} workloads, JSON parseable")
PY

echo "== sharded-engine smoke (shards=1 vs shards=2 counter parity)"
# The sharded engine's determinism contract: the same seed must produce
# identical protocol and network counters at any shard count. Run the
# reduced-scale suite on the sharded engine at 1 and 2 shards and fail
# on any divergence in the counters a perf comparison would read.
PAST_NODES=60 PAST_FILES=5000 PAST_SHARDS=1 PAST_OUT_DIR="$perf_out/s1" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
PAST_NODES=60 PAST_FILES=5000 PAST_SHARDS=2 PAST_OUT_DIR="$perf_out/s2" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
python3 - "$perf_out/s1/BENCH_perf.json" "$perf_out/s2/BENCH_perf.json" <<'PY'
import json, sys
KEYS = ("events", "delivered", "inserts_ok", "inserts_failed", "lookups", "lookups_ok")
def counters(path):
    report = json.load(open(path))
    return {
        (w["name"], w["scale"]): {k: w[k] for k in KEYS}
        for w in report["workloads"]
    }
one, two = counters(sys.argv[1]), counters(sys.argv[2])
assert one.keys() == two.keys(), f"workload sets differ: {one.keys() ^ two.keys()}"
for wl in sorted(one):
    if one[wl] != two[wl]:
        raise AssertionError(
            f"{wl}: counters diverge across shard counts\n  shards=1: {one[wl]}\n  shards=2: {two[wl]}"
        )
print(f"sharded smoke OK: {len(one)} workloads bit-identical at 1 vs 2 shards")
PY

echo "CI OK"
