#!/usr/bin/env bash
# Local CI gate: build, full test suite, and lint — all offline.
#
# The workspace vendors its few dev-dependencies (see vendor/ and the
# [patch.crates-io] table in Cargo.toml), so everything here runs with
# no network access. Run from the repository root:
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== zero-test guard"
# Every workspace crate must ship at least one test: a crate that
# silently drops to zero tests would pass `cargo test` forever.
for crate in crates/*/; do
  if ! grep -rq '#\[test\]' "${crate}src" "${crate}tests" 2>/dev/null; then
    echo "error: ${crate%/} has no tests (add at least one #[test])" >&2
    exit 1
  fi
done

echo "== cargo test"
# The root package is a facade; --workspace covers every crate.
cargo test -q --workspace --no-fail-fast --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== perf smoke (perf_suite, reduced scale)"
# End-to-end run of the perf bench at a scale that finishes in seconds;
# guards the hot path and the hand-rolled JSON writer. Artifacts go to
# a scratch dir so CI never dirties the working tree.
perf_out=$(mktemp -d)
trap 'rm -rf "$perf_out"' EXIT
PAST_NODES=60 PAST_FILES=5000 PAST_OUT_DIR="$perf_out" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
python3 - "$perf_out/BENCH_perf.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == 3, f"unexpected schema: {report['schema']}"
workloads = {(w["name"], w["scale"]) for w in report["workloads"]}
want = {("insert_heavy", "env"), ("lookup_heavy", "env"), ("churn", "env")}
missing = want - workloads
assert not missing, f"perf_suite JSON missing workloads: {missing}"
# RSS budget: each smoke workload peaks at ~9-13 MB since-reset today
# (streaming traces, interned certs, packed inventories). The ceiling
# has ~5x headroom for allocator/kernel variance while still catching a
# regression that re-materializes per-replica state at scale.
RSS_BUDGET_KB = 64 * 1024
for w in report["workloads"]:
    assert w["wall_seconds"] > 0, f"{w['name']}: non-positive wall time"
    assert w["peak_semantics"] in ("since_reset", "process_wide"), w
    assert w["peak_rss_kb"] > 0, f"{w['name']}: no RSS sample"
    if w["peak_semantics"] == "since_reset":
        assert w["peak_rss_kb"] < RSS_BUDGET_KB, (
            f"{w['name']}/{w['scale']}: peak RSS {w['peak_rss_kb']} kB "
            f"blew the {RSS_BUDGET_KB} kB smoke budget"
        )
print(f"perf smoke OK: {len(workloads)} workloads, JSON parseable, "
      f"peak RSS within {RSS_BUDGET_KB} kB")
PY

echo "== counting-allocator feature build"
# The allocation-site harness is feature-gated off the default build;
# make sure the gate keeps compiling (bench binary owns the
# #[global_allocator] so the feature only exists there and in past-obs).
cargo build --release -q -p past-bench --features count-alloc --offline

echo "== sharded-engine smoke (shards=1 vs shards=2 counter parity)"
# The sharded engine's determinism contract: the same seed must produce
# identical protocol and network counters at any shard count. Run the
# reduced-scale suite on the sharded engine at 1 and 2 shards and fail
# on any divergence in the counters a perf comparison would read.
PAST_NODES=60 PAST_FILES=5000 PAST_SHARDS=1 PAST_OUT_DIR="$perf_out/s1" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
PAST_NODES=60 PAST_FILES=5000 PAST_SHARDS=2 PAST_OUT_DIR="$perf_out/s2" \
  cargo run --release -q -p past-bench --bin perf_suite --offline
python3 - "$perf_out/s1/BENCH_perf.json" "$perf_out/s2/BENCH_perf.json" <<'PY'
import json, sys
KEYS = ("events", "delivered", "inserts_ok", "inserts_failed", "lookups", "lookups_ok")
def counters(path):
    report = json.load(open(path))
    return {
        (w["name"], w["scale"]): {k: w[k] for k in KEYS}
        for w in report["workloads"]
    }
one, two = counters(sys.argv[1]), counters(sys.argv[2])
assert one.keys() == two.keys(), f"workload sets differ: {one.keys() ^ two.keys()}"
for wl in sorted(one):
    if one[wl] != two[wl]:
        raise AssertionError(
            f"{wl}: counters diverge across shard counts\n  shards=1: {one[wl]}\n  shards=2: {two[wl]}"
        )
print(f"sharded smoke OK: {len(one)} workloads bit-identical at 1 vs 2 shards")
PY

echo "== warm-restart churn smoke (warm vs cold at mtbf 60 s)"
# The warm-restart contract: at the highest churn rate, warm restarts
# must cut maintenance bytes hard (the advertise-then-fetch sweep) and
# must not lose lookups vs cold. Run the smoke pair twice and also
# assert the JSON is deterministic run-to-run.
PAST_CHURN_SMOKE=1 PAST_CHURN_NODES=60 PAST_OUT_DIR="$perf_out/w1" \
  cargo run --release -q -p past-bench --bin churn_availability --offline
PAST_CHURN_SMOKE=1 PAST_CHURN_NODES=60 PAST_OUT_DIR="$perf_out/w2" \
  cargo run --release -q -p past-bench --bin churn_availability --offline
cmp "$perf_out/w1/BENCH_churn.json" "$perf_out/w2/BENCH_churn.json" \
  || { echo "error: churn smoke JSON not deterministic across runs" >&2; exit 1; }
python3 - "$perf_out/w1/BENCH_churn.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
rows = {r["warm_restart"]: r for r in report["warm_vs_cold"] if r["mtbf_s"] == 60}
assert set(rows) == {True, False}, f"missing warm/cold pair: {set(rows)}"
warm, cold = rows[True], rows[False]
wb = warm["maint_bytes_rereplication"] + warm["maint_bytes_refresh"]
cb = cold["maint_bytes_rereplication"] + cold["maint_bytes_refresh"]
assert warm["restarts_warm"] > 0 and warm["restarts_cold"] == 0, warm
assert cold["restarts_cold"] > 0 and cold["restarts_warm"] == 0, cold
assert wb * 2 <= cb, f"warm maintenance bytes not halved: warm={wb} cold={cb}"
assert warm["lookup_success_rate"] >= cold["lookup_success_rate"], \
    f"warm lookups regressed: {warm['lookup_success_rate']} < {cold['lookup_success_rate']}"
print(f"warm smoke OK: bytes {cb} -> {wb} ({cb / wb:.1f}x), "
      f"lookup success {cold['lookup_success_rate']} -> {warm['lookup_success_rate']}")
PY

echo "== byzantine audit smoke (10% malicious, audits on vs off)"
# The Byzantine defense contract: with 10% of the overlay malicious,
# the audited run must end with ZERO residual corrupted lookups, detect
# the adversary, and beat the undefended run on the same seed.
PAST_BYZ_SMOKE=1 PAST_OUT_DIR="$perf_out/byz" \
  cargo run --release -q -p past-bench --bin byzantine_audit --offline
python3 - "$perf_out/byz/BENCH_byzantine.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
rows = {r["audits"]: r for r in report["rows"] if r["fraction"] == 0.10}
assert set(rows) == {True, False}, f"missing audits on/off pair: {set(rows)}"
on, off = rows[True], rows[False]
assert on["malicious"] > 0, "10% fraction converted nobody"
assert off["corrupted_lookups"] > 0, \
    "undefended run saw no corruption - smoke scenario miscalibrated"
assert on["corrupted_lookups"] == 0, \
    f"audited run left residual corruption: {on['corrupted_lookups']}"
assert on["corrupted_lookups"] < off["corrupted_lookups"], (on, off)
assert on["challenges"] > 0 and on["failed"] + on["timeouts"] > 0, \
    f"audits never convicted the adversary: {on}"
assert on["detection_latency_s"] is not None, "no detection timestamp"
print(f"byzantine smoke OK: corrupted {off['corrupted_lookups']} -> 0, "
      f"detected in {on['detection_latency_s']}s, "
      f"{on['shunned']} shun entries")
PY

echo "== flash-crowd smoke (policies x flip, windowed series, engine equality)"
# The flash-crowd serving contract: the smoke sweep must be
# deterministic run-to-run (byte-identical JSON), GDS must absorb a
# nonzero share of the post-flip load and keep its hot node's served
# peak strictly below the no-cache row, and a default-knob run (no
# obs_window, no new policy) must produce identical counters on the
# legacy engine (twice) and the sharded engine at 1 and 2 shards.
PAST_FC_SMOKE=1 PAST_OUT_DIR="$perf_out/fc1" \
  cargo run --release -q -p past-bench --bin flash_crowd --offline
PAST_FC_SMOKE=1 PAST_OUT_DIR="$perf_out/fc2" \
  cargo run --release -q -p past-bench --bin flash_crowd --offline
cmp "$perf_out/fc1/BENCH_flashcrowd.json" "$perf_out/fc2/BENCH_flashcrowd.json" \
  || { echo "error: flash_crowd smoke JSON not deterministic across runs" >&2; exit 1; }
python3 - "$perf_out/fc1/BENCH_flashcrowd.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
cells = {c["policy"]: c for c in report["frontier"]["cells"]}
assert {"gds", "lru", "poprand", "none"} <= set(cells), f"missing policies: {set(cells)}"
gds, none = cells["gds"], cells["none"]
assert gds["absorbed_post_flip"] > 0, "GDS absorbed no post-flip load"
assert gds["hot_node_peak_post_flip"] < none["hot_node_peak_post_flip"], (
    f"GDS hot-node peak {gds['hot_node_peak_post_flip']} not below "
    f"no-cache {none['hot_node_peak_post_flip']}"
)
assert none["hit_rate"] == 0, "no-cache run reported cache hits"
for c in cells.values():
    assert c["windows"], f"{c['policy']}: no windowed series"
    assert sum(w[1] for w in c["windows"]) == c["lookups_ok"], (
        f"{c['policy']}: windowed completions disagree with the lookup counter"
    )
runs = report["baseline"]["runs"]
assert report["baseline"]["all_equal"], "engine-equality baseline diverged"
by_mode = {}
for r in runs:
    key = {k: v for k, v in r.items() if k not in ("engine", "shards", "mode")}
    by_mode.setdefault(r["mode"], []).append((r["engine"], key))
assert set(by_mode) == {"per_op", "pipelined"}, f"unexpected modes: {set(by_mode)}"
for mode, group in by_mode.items():
    first_engine, first = group[0]
    for engine, got in group[1:]:
        assert got == first, (
            f"{mode}: {engine} counters diverge from {first_engine}"
        )
assert report["gates"]["gds_absorbs"], report["gates"]
print(f"flash-crowd smoke OK: gds absorbed {gds['absorbed_post_flip']}, "
      f"hot peak {gds['hot_node_peak_post_flip']} vs {none['hot_node_peak_post_flip']} (no cache), "
      f"{len(runs)} engine runs bit-identical")
PY

echo "CI OK"
