//! Network addresses for emulated nodes.

use std::fmt;


/// The emulated-network address of a node (stands in for an IP address).
///
/// Addresses are dense small integers so that topologies can store
/// coordinates in flat arrays.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug,
)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address as an array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Addr(7).to_string(), "n7");
        assert_eq!(Addr(7).index(), 7);
    }
}
