//! The sharded multi-core simulation engine.
//!
//! [`ShardedSim`] partitions the emulated world round-robin across
//! `shards` [`ShardCore`]s (node `a` lives on shard `a % shards`), each
//! with its own event heap, per-node RNG streams and fault
//! sub-schedule. Shards advance in parallel under **conservative
//! lookahead**: with `L = topology.min_latency()`, every message sent
//! at time `t` arrives no earlier than `t + L`, so all shards can
//! process the window `[T, T + L)` independently — any message one
//! shard sends another inside the window lands in a *later* window. At
//! each window barrier the coordinator exchanges cross-shard sends and
//! picks the next window start as the earliest pending timestamp
//! anywhere.
//!
//! # Determinism
//!
//! The same seed produces the same execution at *any* shard count —
//! including byte-identical metrics reports — because nothing a node
//! observes depends on the partitioning:
//!
//! - events are totally ordered by the shard-invariant key
//!   `(arrival, sent, source, source-seq)` (see [`crate::shard`]);
//! - every random draw comes from a per-node stream seeded by
//!   `(master seed, address)`, with loss drawn by the destination and
//!   jitter by the source;
//! - upcalls and observability fragments are merged in that same
//!   deterministic order at the barrier.
//!
//! Worker threads are purely an execution detail: windows are handed to
//! a small thread pool when the host has spare cores and run inline on
//! the coordinator thread otherwise, with identical results by
//! construction. `PAST_SHARD_THREADS` overrides the pool size (0 forces
//! inline execution).

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::addr::Addr;
use crate::fault::{FaultPlan, NodeFault};
use crate::proto::{Ctx, NetStats, Protocol};
use crate::shard::ShardCore;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

struct Job<P: Protocol> {
    idx: usize,
    core: ShardCore<P>,
    end: SimTime,
}

/// A window-granular worker pool: the coordinator moves whole shard
/// cores through channels (no shared mutable state, no unsafe), workers
/// run one window and send the core back.
struct WorkerPool<P: Protocol> {
    job_tx: Option<Sender<Job<P>>>,
    jobs: Arc<Mutex<Receiver<Job<P>>>>,
    done_rx: Receiver<(usize, ShardCore<P>)>,
    handles: Vec<JoinHandle<()>>,
}

impl<P> WorkerPool<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Upcall: Send + 'static,
{
    fn spawn(workers: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job<P>>();
        let jobs = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let done = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("past-shard-{i}"))
                    .spawn(move || loop {
                        // The guard drops as soon as recv returns, so a
                        // worker only holds the lock while the queue is
                        // empty — which is exactly when there is
                        // nothing for anyone else to take.
                        let job = {
                            let guard = jobs.lock().expect("job queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(Job { idx, mut core, end }) => {
                                core.run_window(end);
                                if done.send((idx, core)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn shard worker thread")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            jobs,
            done_rx,
            handles,
        }
    }

    /// Grabs a queued job without blocking (the coordinator helps drain
    /// the queue while waiting). `try_lock` keeps this deadlock-free: a
    /// worker parked in `recv` holds the lock, but only when the queue
    /// is already empty.
    fn try_steal(&self) -> Option<Job<P>> {
        match self.jobs.try_lock() {
            Ok(guard) => guard.try_recv().ok(),
            Err(_) => None,
        }
    }
}

impl<P: Protocol> Drop for WorkerPool<P> {
    fn drop(&mut self) {
        self.job_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The sharded discrete-event simulator: a drop-in counterpart to
/// [`crate::Simulator`] that partitions nodes across shards and runs
/// them under conservative lookahead.
///
/// # Panics
///
/// Construction panics if the topology's
/// [`min_latency`](Topology::min_latency) is zero — a zero lower bound
/// leaves no lookahead window, so such topologies must run on the
/// single-threaded engine.
pub struct ShardedSim<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Upcall: Send + 'static,
{
    /// `None` only transiently, while a core is out on a worker thread.
    cores: Vec<Option<ShardCore<P>>>,
    topology: Arc<dyn Topology>,
    shards: usize,
    lookahead: SimDuration,
    time: SimTime,
    worker_threads: usize,
    pool: Option<WorkerPool<P>>,
    upcall_buf: Vec<(SimTime, Addr, u64, P::Upcall)>,
}

impl<P> ShardedSim<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + 'static,
    P::Upcall: Send + 'static,
{
    /// Creates a sharded simulator over `topology` with `shards` shards
    /// and deterministic per-node randomness derived from `seed`.
    pub fn new(topology: Box<dyn Topology>, seed: u64, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        let lookahead = topology.min_latency();
        assert!(
            lookahead > SimDuration::ZERO,
            "ShardedSim requires a topology with a positive min_latency(): \
             conservative lookahead needs a nonzero lower bound on link \
             latency. Override Topology::min_latency() for this topology, \
             or use the single-threaded Simulator."
        );
        let topology: Arc<dyn Topology> = Arc::from(topology);
        let cores = (0..shards)
            .map(|i| Some(ShardCore::new(i, shards, Arc::clone(&topology), seed)))
            .collect();
        ShardedSim {
            cores,
            topology,
            shards,
            lookahead,
            time: SimTime::ZERO,
            worker_threads: default_worker_threads(shards),
            pool: None,
            upcall_buf: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative-lookahead window width (the topology's minimum
    /// link latency).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Overrides the worker-thread count (0 forces inline execution on
    /// the coordinator thread; results are identical either way). Also
    /// settable via the `PAST_SHARD_THREADS` environment variable.
    pub fn set_worker_threads(&mut self, n: usize) {
        let n = n.min(self.shards.saturating_sub(1));
        if n != self.worker_threads {
            self.worker_threads = n;
            // Joins the old pool; a right-sized one respawns lazily.
            self.pool = None;
        }
    }

    fn core(&self, addr: Addr) -> &ShardCore<P> {
        self.cores[addr.index() % self.shards]
            .as_ref()
            .expect("core present between windows")
    }

    fn core_mut(&mut self, addr: Addr) -> &mut ShardCore<P> {
        self.cores[addr.index() % self.shards]
            .as_mut()
            .expect("core present between windows")
    }

    /// Pre-sizes the event heaps and upcall buffers (split evenly
    /// across shards).
    pub fn reserve_capacity(&mut self, events: usize, upcalls: usize) {
        let per = events / self.shards + 1;
        let per_up = upcalls / self.shards + 1;
        for c in self.cores.iter_mut().flatten() {
            c.reserve(per, per_up);
        }
    }

    /// Global i.i.d. message-loss probability (drawn from the
    /// destination node's RNG stream).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        for c in self.cores.iter_mut().flatten() {
            c.set_loss_probability(p);
        }
    }

    /// Installs a fault plan: the crash/recover schedule is partitioned
    /// by node ownership; partitions, link loss and jitter are shared.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let schedule = plan.schedule();
        let plan = Arc::new(plan);
        for (i, core) in self.cores.iter_mut().enumerate() {
            let core = core.as_mut().expect("core present between windows");
            let sub: Vec<(SimTime, NodeFault)> = schedule
                .iter()
                .filter(|(_, f)| {
                    let addr = match f {
                        NodeFault::Crash(a) | NodeFault::Recover(a) => *a,
                    };
                    addr.index() % self.shards == i
                })
                .cloned()
                .collect();
            core.set_fault_inputs(sub, Arc::clone(&plan));
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Aggregated network counters (each field sums across shards; see
    /// [`NetStats::queue_peak`] for its caveat).
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats::default();
        for c in self.cores.iter().flatten() {
            s.merge_from(c.stats());
        }
        s
    }

    /// The topology driving latency and proximity.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topology
    }

    /// Adds a node and runs its `on_start` handler.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the topology capacity or is occupied.
    pub fn add_node(&mut self, addr: Addr, proto: P) {
        let at = self.time;
        self.core_mut(addr).add_node(addr, proto, at);
    }

    /// Whether a node exists and is up.
    pub fn is_up(&self, addr: Addr) -> bool {
        self.core(addr).is_up(addr)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, addr: Addr) -> Option<&P> {
        self.core(addr).node(addr)
    }

    /// Mutable access to a node's protocol state.
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut P> {
        self.core_mut(addr).node_mut(addr)
    }

    /// All live addresses, in address order.
    pub fn live_addrs(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self
            .cores
            .iter()
            .flatten()
            .flat_map(|c| c.live_addrs())
            .collect();
        v.sort_unstable();
        v
    }

    /// Marks a node as failed (state retained; messages and timers to
    /// it are dropped).
    pub fn fail_node(&mut self, addr: Addr) {
        self.core_mut(addr).fail_node(addr);
    }

    /// Brings a failed node back up and runs its `on_recover` handler.
    pub fn recover_node(&mut self, addr: Addr) {
        self.ensure_obs_fragments();
        let at = self.time;
        let core = self.core_mut(addr);
        if core.recorder.is_some() {
            let prev = past_obs::install(core.recorder.take().expect("checked"));
            core.recover_node(addr, at);
            core.recorder = past_obs::uninstall();
            if let Some(p) = prev {
                past_obs::install(p);
            }
        } else {
            core.recover_node(addr, at);
        }
    }

    /// Removes a node entirely, returning its protocol state.
    pub fn remove_node(&mut self, addr: Addr) -> Option<P> {
        self.core_mut(addr).remove_node(addr)
    }

    /// Runs `f` against a node right now (the entry point for workload
    /// injection).
    pub fn invoke<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        self.ensure_obs_fragments();
        let at = self.time;
        self.core_mut(addr).dispatch_obs(addr, at, f);
    }

    /// Takes all pending upcalls in deterministic order: by time, then
    /// address, then per-node emission order.
    pub fn drain_upcalls(&mut self) -> Vec<(SimTime, Addr, P::Upcall)> {
        let mut out = Vec::new();
        self.drain_upcalls_into(&mut out);
        out
    }

    /// Like [`ShardedSim::drain_upcalls`], appending into `buf`.
    pub fn drain_upcalls_into(&mut self, buf: &mut Vec<(SimTime, Addr, P::Upcall)>) {
        let mut merged = std::mem::take(&mut self.upcall_buf);
        for c in self.cores.iter_mut().flatten() {
            c.take_upcalls(&mut merged);
        }
        merged.sort_unstable_by_key(|&(t, a, seq, _)| (t, a.0, seq));
        buf.extend(merged.drain(..).map(|(t, a, _, u)| (t, a, u)));
        self.upcall_buf = merged;
    }

    /// Discards all pending upcalls.
    pub fn discard_upcalls(&mut self) {
        self.upcall_buf.clear();
        for c in self.cores.iter_mut().flatten() {
            c.discard_upcalls();
        }
    }

    /// Total queued events across all shards.
    pub fn queue_len(&self) -> usize {
        self.cores.iter().flatten().map(|c| c.queue_len()).sum()
    }

    /// Runs until no events or scheduled faults remain anywhere.
    pub fn run_until_idle(&mut self) {
        self.run_windows(None);
        self.sync_clocks();
    }

    /// Runs every event and fault with timestamp `<= deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_windows(Some(deadline));
        if deadline > self.time {
            self.time = deadline;
        }
        self.sync_clocks();
    }

    /// Runs for a span of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// Folds every shard's observability fragment into the recorder
    /// installed on the calling thread and finalizes completed spans.
    /// Call before reading metrics snapshots; a no-op when metrics are
    /// off.
    pub fn sync_obs(&mut self) {
        if !past_obs::is_enabled() {
            return;
        }
        let cores = &mut self.cores;
        past_obs::with_recorder(|primary| {
            for c in cores.iter_mut().flatten() {
                if let Some(rec) = c.recorder.as_mut() {
                    primary.absorb(rec);
                }
            }
            primary.finalize_completed_spans();
        });
    }

    /// The main loop: pick the earliest pending timestamp anywhere,
    /// execute one lookahead window on every shard, exchange
    /// cross-shard messages, repeat.
    fn run_windows(&mut self, deadline: Option<SimTime>) {
        self.ensure_obs_fragments();
        // Injection between runs (add_node/invoke) may have deposited
        // cross-shard sends; route them before looking for work.
        self.exchange();
        loop {
            let next = self
                .cores
                .iter()
                .flatten()
                .filter_map(|c| c.next_ts())
                .min();
            let Some(t) = next else { break };
            if let Some(d) = deadline {
                if t > d {
                    break;
                }
            }
            let end = match deadline {
                // `d + 1 µs` so events at exactly the deadline process
                // (windows are half-open).
                Some(d) => (t + self.lookahead).min(SimTime(d.0.saturating_add(1))),
                None => t + self.lookahead,
            };
            self.execute_window(end);
            self.exchange();
        }
        for c in self.cores.iter().flatten() {
            if c.time() > self.time {
                self.time = c.time();
            }
        }
    }

    /// Runs `[.., end)` on every shard — on the worker pool when one is
    /// configured, inline otherwise. Identical results either way.
    fn execute_window(&mut self, end: SimTime) {
        if self.worker_threads == 0 {
            for c in self.cores.iter_mut().flatten() {
                c.run_window(end);
            }
            return;
        }
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(self.worker_threads));
        }
        let pool = self.pool.take().expect("pool just ensured");
        let mut pending = 0usize;
        for i in 1..self.shards {
            let core = self.cores[i].take().expect("core present");
            pool.job_tx
                .as_ref()
                .expect("job channel open")
                .send(Job { idx: i, core, end })
                .expect("worker pool alive");
            pending += 1;
        }
        // Shard 0 always runs on the coordinator thread…
        self.cores[0].as_mut().expect("core present").run_window(end);
        // …which then helps drain the queue when workers are
        // oversubscribed.
        while let Some(Job { idx, mut core, end }) = pool.try_steal() {
            core.run_window(end);
            self.cores[idx] = Some(core);
            pending -= 1;
        }
        while pending > 0 {
            let (idx, core) = pool.done_rx.recv().expect("worker returned core");
            self.cores[idx] = Some(core);
            pending -= 1;
        }
        self.pool = Some(pool);
    }

    /// The barrier exchange: route every outbox to its destination
    /// shard's heap. Heap order is shard-invariant, so routing order
    /// does not matter.
    fn exchange(&mut self) {
        for s in 0..self.shards {
            for d in 0..self.shards {
                if s == d {
                    continue;
                }
                let batch = {
                    let src = self.cores[s].as_mut().expect("core present");
                    if src.outboxes[d].is_empty() {
                        continue;
                    }
                    std::mem::take(&mut src.outboxes[d])
                };
                self.cores[d]
                    .as_mut()
                    .expect("core present")
                    .receive(batch);
            }
        }
    }

    /// Gives every shard a fragment recorder when metrics are on, so
    /// instrumentation lands in a mergeable per-shard registry no
    /// matter which thread runs the window.
    fn ensure_obs_fragments(&mut self) {
        if !past_obs::is_enabled() {
            return;
        }
        for c in self.cores.iter_mut().flatten() {
            if c.recorder.is_none() {
                c.recorder = Some(past_obs::Recorder::fragment());
            }
        }
    }

    /// Aligns every shard's local clock with the coordinator's after a
    /// run, so the next injection dispatches at a consistent `now`.
    fn sync_clocks(&mut self) {
        for c in self.cores.iter_mut().flatten() {
            if self.time > c.time() {
                c.set_time(self.time);
            } else if c.time() > self.time {
                self.time = c.time();
            }
        }
        let t = self.time;
        for c in self.cores.iter_mut().flatten() {
            if t > c.time() {
                c.set_time(t);
            }
        }
    }
}

/// Default pool size: one thread per shard beyond the first, capped by
/// the machine's available parallelism (0 on a single-core host —
/// inline execution, no thread overhead). `PAST_SHARD_THREADS`
/// overrides.
fn default_worker_threads(shards: usize) -> usize {
    if let Ok(v) = std::env::var("PAST_SHARD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.min(shards.saturating_sub(1));
        }
    }
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    avail.min(shards).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::topology::{EuclideanTopology, Topology, UniformTopology};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn euclid(n: usize, seed: u64) -> EuclideanTopology {
        EuclideanTopology::random(n, &mut StdRng::seed_from_u64(seed))
    }

    /// A gossip protocol exercising sends, timers, upcalls and RNG:
    /// every node pings a few pseudo-random peers on start; each ping
    /// is re-forwarded while its TTL lasts; pongs bump a counter and
    /// emit an upcall.
    struct Gossip {
        n: u32,
        pongs: u64,
        fanout: u32,
    }

    #[derive(Clone)]
    enum Msg {
        Ping { ttl: u8 },
        Pong,
    }

    impl Protocol for Gossip {
        type Msg = Msg;
        type Upcall = (Addr, u64);

        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg, (Addr, u64)>) {
            for _ in 0..self.fanout {
                let dst = Addr(ctx.rng().gen_range(0..self.n));
                ctx.send(dst, Msg::Ping { ttl: 3 });
            }
            if self.fanout > 0 {
                ctx.set_timer(SimDuration::from_millis(40), 1);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, (Addr, u64)>, from: Addr, msg: Msg) {
            match msg {
                Msg::Ping { ttl } => {
                    ctx.send(from, Msg::Pong);
                    if ttl > 0 {
                        let dst = Addr(ctx.rng().gen_range(0..self.n));
                        ctx.send(dst, Msg::Ping { ttl: ttl - 1 });
                    }
                }
                Msg::Pong => {
                    self.pongs += 1;
                    if self.pongs.is_multiple_of(5) {
                        let me = ctx.addr();
                        let pongs = self.pongs;
                        ctx.emit((me, pongs));
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, (Addr, u64)>, _token: u64) {
            let dst = Addr(ctx.rng().gen_range(0..self.n));
            ctx.send(dst, Msg::Ping { ttl: 1 });
        }
    }

    fn build(n: u32, shards: usize, threads: Option<usize>) -> ShardedSim<Gossip> {
        let topo = euclid(n as usize, 99);
        let mut sim = ShardedSim::new(Box::new(topo), 42, shards);
        if let Some(t) = threads {
            sim.set_worker_threads(t);
        }
        for a in 0..n {
            sim.add_node(
                Addr(a),
                Gossip {
                    n,
                    pongs: 0,
                    fanout: 2,
                },
            );
        }
        sim
    }

    fn fingerprint(sim: &mut ShardedSim<Gossip>) -> (Vec<u64>, Vec<(u64, u32, u64)>, NetStats) {
        let pongs: Vec<u64> = (0..sim.live_addrs().len() as u32)
            .map(|a| sim.node(Addr(a)).map(|g| g.pongs).unwrap_or(0))
            .collect();
        let ups: Vec<(u64, u32, u64)> = sim
            .drain_upcalls()
            .into_iter()
            .map(|(t, a, (src, p))| {
                assert_eq!(a, src);
                (t.0, a.0, p)
            })
            .collect();
        (pongs, ups, sim.stats())
    }

    #[test]
    #[should_panic(expected = "positive min_latency")]
    fn zero_latency_topology_rejected() {
        struct Instant(usize);
        impl Topology for Instant {
            fn latency(&self, _: Addr, _: Addr) -> SimDuration {
                SimDuration::ZERO
            }
            fn distance(&self, _: Addr, _: Addr) -> f64 {
                0.0
            }
            fn capacity(&self) -> usize {
                self.0
            }
        }
        let _: ShardedSim<Gossip> = ShardedSim::new(Box::new(Instant(8)), 1, 2);
    }

    #[test]
    fn stats_invariant_across_shard_counts() {
        let mut reference = None;
        for &shards in &[1usize, 2, 4, 8] {
            let mut sim = build(48, shards, Some(0));
            sim.run_until_idle();
            let fp = fingerprint(&mut sim);
            assert!(fp.2.delivered > 0, "workload must exercise the network");
            let probe = (
                fp.0.clone(),
                fp.1.clone(),
                (
                    fp.2.delivered,
                    fp.2.dropped,
                    fp.2.events,
                    fp.2.timers_fired,
                ),
            );
            match &reference {
                None => reference = Some(probe),
                Some(r) => assert_eq!(r, &probe, "divergence at {shards} shards"),
            }
        }
    }

    #[test]
    fn threaded_execution_matches_inline() {
        let run = |threads: usize| {
            let mut sim = build(32, 4, Some(threads));
            sim.run_until_idle();
            fingerprint(&mut sim)
        };
        let (p0, u0, s0) = run(0);
        let (p3, u3, s3) = run(3);
        assert_eq!(p0, p3);
        assert_eq!(u0, u3);
        assert_eq!(s0.delivered, s3.delivered);
        assert_eq!(s0.events, s3.events);
        assert_eq!(s0.timers_fired, s3.timers_fired);
    }

    #[test]
    fn faults_loss_and_jitter_are_shard_invariant() {
        let run = |shards: usize| {
            let n = 40u32;
            let mut sim = build(n, shards, Some(if shards > 1 { 2 } else { 0 }));
            sim.set_loss_probability(0.2);
            let nodes: Vec<Addr> = (1..n).map(Addr).collect();
            let plan = FaultPlan::new()
                .poisson_churn(
                    7,
                    &nodes,
                    SimDuration::from_secs(3),
                    SimDuration::from_secs(1),
                    SimTime::ZERO,
                    SimTime(20_000_000),
                )
                .partition(
                    SimTime(1_000_000),
                    SimTime(2_000_000),
                    vec![Addr(0), Addr(1), Addr(2)],
                )
                .jitter(SimDuration::from_millis(5));
            sim.set_fault_plan(plan);
            sim.run_for(SimDuration::from_secs(30));
            sim.run_until_idle();
            let fp = fingerprint(&mut sim);
            let s = fp.2;
            (
                fp.0,
                fp.1,
                (
                    s.delivered,
                    s.dropped,
                    s.lost,
                    s.partition_dropped,
                    s.jittered,
                    s.events,
                    s.timers_fired,
                    s.crashes,
                    s.recoveries,
                ),
            )
        };
        let a = run(1);
        for shards in [2, 4, 8] {
            assert_eq!(a, run(shards), "divergence at {shards} shards");
        }
        assert!(a.2 .2 > 0, "loss must have fired to make the test meaningful");
        assert!(a.2 .7 > 0, "churn must have fired");
    }

    #[test]
    fn run_until_processes_events_at_exactly_the_deadline() {
        let topo = UniformTopology::new(4, SimDuration::from_millis(10));
        let mut sim: ShardedSim<Gossip> = ShardedSim::new(Box::new(topo), 1, 2);
        for a in 0..4 {
            sim.add_node(
                Addr(a),
                Gossip {
                    n: 4,
                    pongs: 0,
                    fanout: 0,
                },
            );
        }
        sim.discard_upcalls();
        // One ping sent at t=0 arrives at exactly t=10ms.
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping { ttl: 0 }));
        sim.run_until(SimTime(10_000));
        assert_eq!(sim.now(), SimTime(10_000));
        assert_eq!(sim.stats().delivered, 1, "deadline events must process");
        // The pong (t=20ms) is still queued.
        assert_eq!(sim.queue_len(), 1);
        sim.run_until_idle();
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn matches_uniform_topology_intuition_on_single_shard_vs_legacy() {
        // An RNG-free deterministic workload must produce identical
        // counters on the legacy engine and the sharded engine.
        struct Relay {
            hops: u64,
        }
        #[derive(Clone)]
        struct Token(u8);
        impl Protocol for Relay {
            type Msg = Token;
            type Upcall = u64;
            fn on_message(&mut self, ctx: &mut Ctx<'_, Token, u64>, _from: Addr, msg: Token) {
                self.hops += 1;
                if msg.0 > 0 {
                    let next = Addr((ctx.addr().0 + 1) % 6);
                    ctx.send(next, Token(msg.0 - 1));
                } else {
                    let hops = self.hops;
                    ctx.emit(hops);
                }
            }
        }
        let mut legacy = Simulator::new(Box::new(euclid(6, 5)), 9);
        for a in 0..6 {
            legacy.add_node(Addr(a), Relay { hops: 0 });
        }
        legacy.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Token(20)));
        legacy.run_until_idle();

        for shards in [1usize, 3] {
            let mut sharded: ShardedSim<Relay> =
                ShardedSim::new(Box::new(euclid(6, 5)), 9, shards);
            for a in 0..6 {
                sharded.add_node(Addr(a), Relay { hops: 0 });
            }
            sharded.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Token(20)));
            sharded.run_until_idle();
            assert_eq!(sharded.stats().delivered, legacy.stats().delivered);
            assert_eq!(sharded.stats().events, legacy.stats().events);
            assert_eq!(sharded.now(), legacy.now());
            for a in 0..6 {
                assert_eq!(
                    sharded.node(Addr(a)).unwrap().hops,
                    legacy.node(Addr(a)).unwrap().hops
                );
            }
        }
    }
}
