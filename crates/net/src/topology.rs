//! Proximity and latency models.
//!
//! The paper defines network proximity as "a scalar metric such as the
//! number of IP routing hops, bandwidth, geographic distance, etc.".
//! Pastry uses the metric to prefer nearby nodes in routing tables; the
//! simulator uses it to derive per-message latency. Three models are
//! provided:
//!
//! - [`EuclideanTopology`]: nodes placed uniformly in a unit square,
//!   distance is Euclidean — the model used by the Pastry paper's own
//!   emulations.
//! - [`ClusteredTopology`]: nodes grouped into geographic clusters with
//!   small intra-cluster and large inter-cluster distances; this mirrors
//!   the §5.2 caching experiment, where the eight NLANR proxy sites are
//!   "distributed geographically across the USA" and clients from one
//!   trace issue requests from nearby PAST nodes.
//! - [`UniformTopology`]: constant distance between all pairs (a control
//!   model that removes locality entirely).

use rand::Rng;

use crate::addr::Addr;
use crate::time::SimDuration;

/// A proximity/latency model over node addresses.
///
/// `Send + Sync` because the sharded engine shares one topology across
/// its worker shards; all provided models are plain immutable data.
pub trait Topology: Send + Sync {
    /// Scalar proximity metric between two nodes. Smaller is closer.
    /// Symmetric; zero only for a node and itself.
    fn distance(&self, a: Addr, b: Addr) -> f64;

    /// One-way message latency between two nodes.
    fn latency(&self, a: Addr, b: Addr) -> SimDuration;

    /// Number of addressable slots (addresses `0..capacity` are valid).
    fn capacity(&self) -> usize;

    /// A lower bound on [`Topology::latency`] over all node pairs: the
    /// conservative-lookahead window of the sharded engine. Any message
    /// sent at time `t` arrives no earlier than `t + min_latency()`, so
    /// shards may process a window of that width without synchronizing.
    ///
    /// The default is [`SimDuration::ZERO`] (no lookahead available);
    /// the sharded engine rejects such topologies, so custom models
    /// must override this to opt in.
    fn min_latency(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Nodes at uniformly random points in the unit square; latency is
/// proportional to Euclidean distance plus a fixed per-hop cost.
#[derive(Clone, Debug)]
pub struct EuclideanTopology {
    points: Vec<(f64, f64)>,
    /// Fixed cost added to every message (protocol processing, first/last
    /// mile), in microseconds.
    base_latency_us: u64,
    /// Latency per unit of distance, in microseconds.
    us_per_unit: u64,
}

impl EuclideanTopology {
    /// Places `n` nodes uniformly at random.
    ///
    /// Default latency parameters give a continental-scale spread:
    /// 1 ms base cost plus up to ~40 ms across the unit square diagonal.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let points = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        EuclideanTopology {
            points,
            base_latency_us: 1_000,
            us_per_unit: 30_000,
        }
    }

    /// Overrides the latency parameters.
    pub fn with_latency(mut self, base_us: u64, us_per_unit: u64) -> Self {
        self.base_latency_us = base_us;
        self.us_per_unit = us_per_unit;
        self
    }

    /// Returns the coordinates of a node.
    pub fn point(&self, a: Addr) -> (f64, f64) {
        self.points[a.index()]
    }
}

impl Topology for EuclideanTopology {
    fn distance(&self, a: Addr, b: Addr) -> f64 {
        let (ax, ay) = self.points[a.index()];
        let (bx, by) = self.points[b.index()];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    fn latency(&self, a: Addr, b: Addr) -> SimDuration {
        let d = self.distance(a, b);
        SimDuration::from_micros(self.base_latency_us + (d * self.us_per_unit as f64) as u64)
    }

    fn capacity(&self) -> usize {
        self.points.len()
    }

    fn min_latency(&self) -> SimDuration {
        // Every latency is base + (distance-proportional) ≥ base.
        SimDuration::from_micros(self.base_latency_us)
    }
}

/// Nodes partitioned into geographic clusters.
///
/// Distance is `intra` within a cluster and `inter` between clusters
/// (optionally modulated per cluster pair by their index distance, which
/// gives a crude east–west coast spread).
#[derive(Clone, Debug)]
pub struct ClusteredTopology {
    cluster_of: Vec<u32>,
    clusters: u32,
    intra: f64,
    inter: f64,
    base_latency_us: u64,
    us_per_unit: u64,
}

impl ClusteredTopology {
    /// Assigns `n` nodes round-robin to `clusters` clusters.
    pub fn round_robin(n: usize, clusters: u32) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let cluster_of = (0..n).map(|i| (i as u32) % clusters).collect();
        ClusteredTopology {
            cluster_of,
            clusters,
            intra: 0.05,
            inter: 1.0,
            base_latency_us: 1_000,
            us_per_unit: 30_000,
        }
    }

    /// Builds a topology from an explicit cluster assignment.
    pub fn from_assignment(cluster_of: Vec<u32>, clusters: u32) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(
            cluster_of.iter().all(|&c| c < clusters),
            "cluster index out of range"
        );
        ClusteredTopology {
            cluster_of,
            clusters,
            intra: 0.05,
            inter: 1.0,
            base_latency_us: 1_000,
            us_per_unit: 30_000,
        }
    }

    /// Overrides the intra/inter-cluster distances.
    pub fn with_distances(mut self, intra: f64, inter: f64) -> Self {
        self.intra = intra;
        self.inter = inter;
        self
    }

    /// Returns the cluster a node belongs to.
    pub fn cluster(&self, a: Addr) -> u32 {
        self.cluster_of[a.index()]
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u32 {
        self.clusters
    }
}

impl Topology for ClusteredTopology {
    fn distance(&self, a: Addr, b: Addr) -> f64 {
        if a == b {
            return 0.0;
        }
        let ca = self.cluster_of[a.index()];
        let cb = self.cluster_of[b.index()];
        if ca == cb {
            self.intra
        } else {
            // Spread clusters on a line so that distant clusters cost more.
            let span = (ca as f64 - cb as f64).abs() / self.clusters.max(1) as f64;
            self.inter * (0.5 + span)
        }
    }

    fn latency(&self, a: Addr, b: Addr) -> SimDuration {
        let d = self.distance(a, b);
        SimDuration::from_micros(self.base_latency_us + (d * self.us_per_unit as f64) as u64)
    }

    fn capacity(&self) -> usize {
        self.cluster_of.len()
    }

    fn min_latency(&self) -> SimDuration {
        SimDuration::from_micros(self.base_latency_us)
    }
}

/// All pairs equidistant: the degenerate control model.
#[derive(Clone, Debug)]
pub struct UniformTopology {
    n: usize,
    latency: SimDuration,
}

impl UniformTopology {
    /// Creates a uniform topology over `n` nodes with the given latency.
    pub fn new(n: usize, latency: SimDuration) -> Self {
        UniformTopology { n, latency }
    }
}

impl Topology for UniformTopology {
    fn distance(&self, a: Addr, b: Addr) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }

    fn latency(&self, _a: Addr, _b: Addr) -> SimDuration {
        self.latency
    }

    fn capacity(&self) -> usize {
        self.n
    }

    fn min_latency(&self) -> SimDuration {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn euclidean_distance_symmetric_and_zero_on_self() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = EuclideanTopology::random(10, &mut rng);
        for i in 0..10u32 {
            assert_eq!(t.distance(Addr(i), Addr(i)), 0.0);
            for j in 0..10u32 {
                assert!((t.distance(Addr(i), Addr(j)) - t.distance(Addr(j), Addr(i))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn euclidean_latency_includes_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = EuclideanTopology::random(4, &mut rng).with_latency(500, 10_000);
        assert!(t.latency(Addr(0), Addr(1)).micros() >= 500);
    }

    #[test]
    fn clustered_intra_closer_than_inter() {
        let t = ClusteredTopology::round_robin(16, 4);
        // Addresses 0 and 4 share cluster 0; 0 and 1 do not.
        assert_eq!(t.cluster(Addr(0)), t.cluster(Addr(4)));
        assert_ne!(t.cluster(Addr(0)), t.cluster(Addr(1)));
        assert!(t.distance(Addr(0), Addr(4)) < t.distance(Addr(0), Addr(1)));
    }

    #[test]
    fn clustered_respects_explicit_assignment() {
        let t = ClusteredTopology::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(t.cluster(Addr(1)), 0);
        assert_eq!(t.cluster(Addr(2)), 1);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    #[should_panic]
    fn clustered_rejects_bad_assignment() {
        ClusteredTopology::from_assignment(vec![0, 5], 2);
    }

    #[test]
    fn euclidean_min_latency_is_base_cost() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = EuclideanTopology::random(16, &mut rng);
        assert_eq!(t.min_latency(), SimDuration::from_micros(1_000));
        let t = t.with_latency(250, 10_000);
        assert_eq!(t.min_latency(), SimDuration::from_micros(250));
        // It really is a lower bound over all pairs.
        for i in 0..16u32 {
            for j in 0..16u32 {
                assert!(t.latency(Addr(i), Addr(j)) >= t.min_latency());
            }
        }
    }

    #[test]
    fn clustered_min_latency_is_base_cost() {
        let t = ClusteredTopology::round_robin(16, 4);
        assert_eq!(t.min_latency(), SimDuration::from_micros(1_000));
        for i in 0..16u32 {
            for j in 0..16u32 {
                assert!(t.latency(Addr(i), Addr(j)) >= t.min_latency());
            }
        }
    }

    #[test]
    fn uniform_min_latency_is_its_constant() {
        let t = UniformTopology::new(5, SimDuration::from_millis(2));
        assert_eq!(t.min_latency(), SimDuration::from_millis(2));
        let zero = UniformTopology::new(5, SimDuration::ZERO);
        assert_eq!(zero.min_latency(), SimDuration::ZERO);
    }

    #[test]
    fn default_min_latency_is_zero() {
        // Custom models that don't override min_latency() advertise no
        // lookahead and are rejected by the sharded engine.
        struct Custom;
        impl Topology for Custom {
            fn distance(&self, _: Addr, _: Addr) -> f64 {
                1.0
            }
            fn latency(&self, _: Addr, _: Addr) -> SimDuration {
                SimDuration::from_millis(1)
            }
            fn capacity(&self) -> usize {
                2
            }
        }
        assert_eq!(Custom.min_latency(), SimDuration::ZERO);
    }

    #[test]
    fn uniform_is_flat() {
        let t = UniformTopology::new(5, SimDuration::from_millis(2));
        assert_eq!(t.latency(Addr(0), Addr(1)), SimDuration::from_millis(2));
        assert_eq!(t.distance(Addr(3), Addr(3)), 0.0);
        assert_eq!(t.distance(Addr(3), Addr(4)), 1.0);
    }
}
