//! The protocol-facing surface shared by both simulation engines.
//!
//! [`Protocol`] and [`Ctx`] are what node state machines program
//! against; [`NetStats`] is what harnesses read back. Both the
//! single-threaded [`crate::Simulator`] and the sharded
//! [`crate::ShardedSim`] drive the same trait through the same context,
//! so protocol code is engine-agnostic by construction.

use rand::rngs::StdRng;

use crate::addr::Addr;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// A protocol instance running on one emulated node.
///
/// Handlers receive a [`Ctx`] for sending messages, arming timers,
/// querying the proximity metric and emitting *upcalls* (protocol-level
/// events that the experiment harness collects, e.g. "insert completed").
pub trait Protocol: Sized {
    /// Message type exchanged between nodes.
    type Msg;
    /// Harness-visible event type.
    type Upcall;

    /// Invoked once when the node is added to the network (and again on
    /// recovery unless [`Protocol::on_recover`] is overridden).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        let _ = ctx;
    }

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, from: Addr, msg: Self::Msg);

    /// Invoked when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, token: u64) {
        let _ = (ctx, token);
    }

    /// Invoked when the node crashes (scheduled fault or harness call).
    /// Deliberately context-free: a crashing node cannot send messages,
    /// arm timers, or draw randomness — which also makes the hook
    /// trivially invariant across shard counts. Protocols use it to
    /// capture a "persisted to disk" snapshot for warm restarts.
    fn on_crash(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Invoked when a previously failed node comes back online.
    /// Defaults to [`Protocol::on_start`].
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        self.on_start(ctx);
    }
}

/// Handler context: the API a protocol uses to interact with the network.
pub struct Ctx<'a, M, U> {
    pub(crate) now: SimTime,
    pub(crate) self_addr: Addr,
    pub(crate) topology: &'a dyn Topology,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) out: &'a mut Vec<Output<M, U>>,
}

pub(crate) enum Output<M, U> {
    Send { dst: Addr, msg: M },
    Timer { delay: SimDuration, token: u64 },
    Upcall(U),
}

impl<'a, M, U> Ctx<'a, M, U> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.self_addr
    }

    /// Sends `msg` to `dst`; it arrives after the topology's latency.
    pub fn send(&mut self, dst: Addr, msg: M) {
        self.out.push(Output::Send { dst, msg });
    }

    /// Arms a timer that fires after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.out.push(Output::Timer { delay, token });
    }

    /// Emits a harness-visible event.
    pub fn emit(&mut self, upcall: U) {
        self.out.push(Output::Upcall(upcall));
    }

    /// Scalar proximity between this node and `other` (e.g. an RTT probe).
    pub fn proximity(&self, other: Addr) -> f64 {
        self.topology.distance(self.self_addr, other)
    }

    /// Scalar proximity between two arbitrary nodes. Real deployments
    /// estimate this with probes; the emulation exposes the metric
    /// directly, as the paper's emulation environment does.
    pub fn proximity_between(&self, a: Addr, b: Addr) -> f64 {
        self.topology.distance(a, b)
    }

    /// Deterministic RNG. Under the single-threaded engine this is one
    /// per-simulation stream; under the sharded engine it is a per-node
    /// stream seeded from `(master seed, address)`, which keeps every
    /// draw independent of how nodes are partitioned into shards.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Counters describing network-level activity, including every fault
/// injected by an installed [`crate::FaultPlan`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages dropped for any reason (dead/absent destination,
    /// injected loss, or an active partition).
    pub dropped: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events: u64,
    /// Scheduled node crashes applied.
    pub crashes: u64,
    /// Scheduled node recoveries applied.
    pub recoveries: u64,
    /// Messages dropped by injected loss (global or per-link).
    pub lost: u64,
    /// Messages dropped by an active partition.
    pub partition_dropped: u64,
    /// Messages whose latency received injected jitter.
    pub jittered: u64,
    /// High-water mark of the event queue (sizing diagnostics). Under
    /// the sharded engine this is the sum of per-shard peaks — an
    /// upper bound on the true global peak, and the one stats field
    /// that is *not* invariant across shard counts.
    pub queue_peak: u64,
}

impl NetStats {
    /// Events processed per wall-clock second — the simulator's
    /// throughput figure for perf reporting. Zero when `wall_seconds`
    /// is not positive.
    pub fn events_per_sec(&self, wall_seconds: f64) -> f64 {
        if wall_seconds > 0.0 {
            self.events as f64 / wall_seconds
        } else {
            0.0
        }
    }

    /// Folds another engine shard's counters into this one (all fields
    /// sum; see [`NetStats::queue_peak`] for its caveat).
    pub fn merge_from(&mut self, o: &NetStats) {
        self.delivered += o.delivered;
        self.dropped += o.dropped;
        self.timers_fired += o.timers_fired;
        self.events += o.events;
        self.crashes += o.crashes;
        self.recoveries += o.recoveries;
        self.lost += o.lost;
        self.partition_dropped += o.partition_dropped;
        self.jittered += o.jittered;
        self.queue_peak += o.queue_peak;
    }
}
