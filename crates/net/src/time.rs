//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};


/// A point in simulated time, in microseconds since simulation start.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in the duration.
    pub const fn micros(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.micros(), 3_000);
        assert_eq!((t + SimDuration::from_micros(5)) - t, SimDuration(5));
        assert_eq!(SimDuration::from_secs(1).micros(), 1_000_000);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
        assert_eq!(SimDuration(42).to_string(), "42us");
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(SimTime(5) - SimTime(10), SimDuration::ZERO);
    }
}
