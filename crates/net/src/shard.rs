//! One shard of the multi-core simulation engine: a disjoint subset of
//! nodes with its own event heap, per-node RNG streams, fault
//! sub-schedule and outboxes for cross-shard sends.
//!
//! # The shard-invariant total order
//!
//! The single-threaded engine orders same-timestamp events by a global
//! enqueue sequence number, which cannot be reproduced when shards run
//! concurrently. Shards instead key every event by
//! `(arrival, sent, source, source_seq)` where `source_seq` is a
//! per-*node* output counter. A node's outputs are numbered by its own
//! execution history, which depends only on the events it received —
//! never on how nodes are partitioned — so the key (and with it the
//! entire execution) is identical at any shard count. Uniqueness holds
//! because `(source, source_seq)` is unique per output.
//!
//! Randomness follows the same rule: each node owns an RNG stream
//! seeded from `(master seed, address)`; loss is drawn from the
//! *destination* node's stream (deliveries to a node are totally
//! ordered by the key above), jitter from the *source* node's stream
//! (outputs are ordered by `source_seq`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::fault::{FaultPlan, NodeFault};
use crate::proto::{Ctx, NetStats, Output, Protocol};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Derives a node's RNG seed from the master seed (SplitMix64
/// finalizer over a golden-ratio-spread address, so adjacent addresses
/// land in unrelated streams).
fn node_rng_seed(master: u64, addr: Addr) -> u64 {
    let mut z = master ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(addr.0 as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
pub(crate) enum ShardEventKind<M> {
    Deliver { src: Addr, dst: Addr, msg: M },
    Timer { node: Addr, token: u64 },
}

/// An event keyed by the shard-invariant total order (see module docs).
pub(crate) struct ShardEvent<M> {
    pub(crate) at: SimTime,
    /// When the source emitted it (arrival ties break by send time
    /// first, which also matches the legacy engine's enqueue order
    /// whenever send times differ).
    pub(crate) sent: SimTime,
    pub(crate) src: Addr,
    /// The source node's output sequence number.
    pub(crate) sseq: u64,
    pub(crate) kind: ShardEventKind<M>,
}

impl<M> ShardEvent<M> {
    fn key(&self) -> (SimTime, SimTime, u32, u64) {
        (self.at, self.sent, self.src.0, self.sseq)
    }
}

impl<M> PartialEq for ShardEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for ShardEvent<M> {}
impl<M> PartialOrd for ShardEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ShardEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.key().cmp(&self.key())
    }
}

struct ShardSlot<P> {
    proto: Option<P>,
    up: bool,
    /// This node's private RNG stream.
    rng: StdRng,
    /// Output counter: numbers every send, timer and upcall the node
    /// emits, in emission order.
    oseq: u64,
}

/// One shard: the nodes `addr.index() % shards == shard_id`, their
/// event heap, and the outboxes toward every other shard.
pub(crate) struct ShardCore<P: Protocol> {
    shard_id: usize,
    shards: usize,
    /// Slots indexed by `addr.index() / shards`.
    slots: Vec<Option<ShardSlot<P>>>,
    heap: BinaryHeap<ShardEvent<P::Msg>>,
    topology: Arc<dyn Topology>,
    master_seed: u64,
    time: SimTime,
    loss_probability: f64,
    fault_plan: Arc<FaultPlan>,
    /// This shard's slice of the crash/recover schedule.
    fault_schedule: Vec<(SimTime, NodeFault)>,
    fault_cursor: usize,
    stats: NetStats,
    /// `(at, node, node_oseq, upcall)` — the extra fields order
    /// same-instant upcalls deterministically at the merge.
    upcalls: Vec<(SimTime, Addr, u64, P::Upcall)>,
    /// Cross-shard sends deposited during a window, one box per
    /// destination shard (own-shard sends go straight to the heap).
    pub(crate) outboxes: Vec<Vec<ShardEvent<P::Msg>>>,
    /// Fragment recorder for `past-obs` (present only while the
    /// harness records metrics).
    pub(crate) recorder: Option<past_obs::Recorder>,
    scratch: Vec<Output<P::Msg, P::Upcall>>,
}

impl<P: Protocol> ShardCore<P> {
    pub(crate) fn new(
        shard_id: usize,
        shards: usize,
        topology: Arc<dyn Topology>,
        master_seed: u64,
    ) -> Self {
        ShardCore {
            shard_id,
            shards,
            slots: Vec::new(),
            heap: BinaryHeap::with_capacity(256),
            topology,
            master_seed,
            time: SimTime::ZERO,
            loss_probability: 0.0,
            fault_plan: Arc::new(FaultPlan::default()),
            fault_schedule: Vec::new(),
            fault_cursor: 0,
            stats: NetStats::default(),
            upcalls: Vec::new(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
            recorder: None,
            scratch: Vec::with_capacity(64),
        }
    }

    pub(crate) fn owns(&self, addr: Addr) -> bool {
        addr.index() % self.shards == self.shard_id
    }

    fn local_index(&self, addr: Addr) -> usize {
        debug_assert!(self.owns(addr), "addr {addr} not owned by shard");
        addr.index() / self.shards
    }

    /// The slot for `addr`, created (empty, with its RNG stream) on
    /// first touch. Lazy creation is deterministic because the stream
    /// is a pure function of `(master_seed, addr)`.
    fn slot_mut(&mut self, addr: Addr) -> &mut ShardSlot<P> {
        let li = self.local_index(addr);
        if self.slots.len() <= li {
            self.slots.resize_with(li + 1, || None);
        }
        let seed = node_rng_seed(self.master_seed, addr);
        self.slots[li].get_or_insert_with(|| ShardSlot {
            proto: None,
            up: false,
            rng: StdRng::seed_from_u64(seed),
            oseq: 0,
        })
    }

    fn slot(&self, addr: Addr) -> Option<&ShardSlot<P>> {
        self.slots.get(addr.index() / self.shards)?.as_ref()
    }

    pub(crate) fn add_node(&mut self, addr: Addr, proto: P, at: SimTime) {
        assert!(
            addr.index() < self.topology.capacity(),
            "address {addr} outside topology capacity {}",
            self.topology.capacity()
        );
        let slot = self.slot_mut(addr);
        assert!(slot.proto.is_none(), "address {addr} already occupied");
        slot.proto = Some(proto);
        slot.up = true;
        self.dispatch(addr, at, |p, ctx| p.on_start(ctx));
    }

    pub(crate) fn is_up(&self, addr: Addr) -> bool {
        self.slot(addr)
            .map(|s| s.proto.is_some() && s.up)
            .unwrap_or(false)
    }

    pub(crate) fn node(&self, addr: Addr) -> Option<&P> {
        self.slot(addr).and_then(|s| s.proto.as_ref())
    }

    pub(crate) fn node_mut(&mut self, addr: Addr) -> Option<&mut P> {
        self.slots
            .get_mut(addr.index() / self.shards)?
            .as_mut()
            .and_then(|s| s.proto.as_mut())
    }

    /// Live addresses owned by this shard, in address order.
    pub(crate) fn live_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.slots.iter().enumerate().filter_map(|(li, s)| {
            let s = s.as_ref()?;
            (s.proto.is_some() && s.up)
                .then(|| Addr((li * self.shards + self.shard_id) as u32))
        })
    }

    pub(crate) fn fail_node(&mut self, addr: Addr) {
        let now = self.time;
        if let Some(s) = self
            .slots
            .get_mut(addr.index() / self.shards)
            .and_then(|s| s.as_mut())
        {
            if s.up {
                if let Some(proto) = s.proto.as_mut() {
                    // Context-free by design, so the hook cannot observe
                    // shard boundaries (no sends, timers, or RNG draws).
                    proto.on_crash(now);
                }
            }
            s.up = false;
        }
    }

    pub(crate) fn recover_node(&mut self, addr: Addr, at: SimTime) {
        let slot = self.slot_mut(addr);
        assert!(slot.proto.is_some(), "no node state at {addr}");
        slot.up = true;
        self.dispatch(addr, at, |p, ctx| p.on_recover(ctx));
    }

    pub(crate) fn remove_node(&mut self, addr: Addr) -> Option<P> {
        let s = self
            .slots
            .get_mut(addr.index() / self.shards)?
            .as_mut()?;
        s.up = false;
        s.proto.take()
    }

    pub(crate) fn set_loss_probability(&mut self, p: f64) {
        self.loss_probability = p;
    }

    pub(crate) fn set_fault_inputs(
        &mut self,
        schedule: Vec<(SimTime, NodeFault)>,
        plan: Arc<FaultPlan>,
    ) {
        self.fault_schedule = schedule;
        self.fault_cursor = 0;
        self.fault_plan = plan;
    }

    pub(crate) fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Pending events: the local heap plus anything awaiting the next
    /// barrier exchange in the outboxes.
    pub(crate) fn queue_len(&self) -> usize {
        self.heap.len() + self.outboxes.iter().map(Vec::len).sum::<usize>()
    }

    pub(crate) fn reserve(&mut self, events: usize, upcalls: usize) {
        self.heap.reserve(events.saturating_sub(self.heap.len()));
        self.upcalls
            .reserve(upcalls.saturating_sub(self.upcalls.len()));
    }

    pub(crate) fn set_time(&mut self, t: SimTime) {
        debug_assert!(t >= self.time, "shard time must be monotonic");
        self.time = t;
    }

    pub(crate) fn time(&self) -> SimTime {
        self.time
    }

    pub(crate) fn take_upcalls(&mut self, buf: &mut Vec<(SimTime, Addr, u64, P::Upcall)>) {
        buf.append(&mut self.upcalls);
    }

    pub(crate) fn discard_upcalls(&mut self) {
        self.upcalls.clear();
    }

    /// Accepts a batch of cross-shard arrivals (the barrier exchange).
    pub(crate) fn receive(&mut self, events: Vec<ShardEvent<P::Msg>>) {
        for e in events {
            debug_assert!(self.owns(match &e.kind {
                ShardEventKind::Deliver { dst, .. } => *dst,
                ShardEventKind::Timer { node, .. } => *node,
            }));
            self.heap.push(e);
        }
        self.stats.queue_peak = self.stats.queue_peak.max(self.heap.len() as u64);
    }

    /// The earliest pending timestamp on this shard (event or fault).
    pub(crate) fn next_ts(&self) -> Option<SimTime> {
        let e = self.heap.peek().map(|e| e.at);
        let f = self.next_fault_at();
        match (e, f) {
            (Some(e), Some(f)) => Some(e.min(f)),
            (Some(e), None) => Some(e),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    fn next_fault_at(&self) -> Option<SimTime> {
        self.fault_schedule
            .get(self.fault_cursor)
            .map(|(t, _)| *t)
    }

    /// Processes every event and fault with timestamp `< end`,
    /// swapping this shard's fragment recorder into the thread-local
    /// slot for the duration (protocol instrumentation reaches the
    /// right recorder on any thread).
    pub(crate) fn run_window(&mut self, end: SimTime) {
        if self.recorder.is_some() {
            let prev = past_obs::install(self.recorder.take().expect("checked"));
            self.run_window_inner(end);
            self.recorder = past_obs::uninstall();
            if let Some(p) = prev {
                past_obs::install(p);
            }
        } else {
            self.run_window_inner(end);
        }
    }

    fn run_window_inner(&mut self, end: SimTime) {
        loop {
            let next_event = self.heap.peek().map(|e| e.at);
            let next_fault = self.next_fault_at();
            // Fault-before-event on ties, exactly like the legacy engine.
            let fault_first = match (next_fault, next_event) {
                (Some(f), Some(e)) => f <= e,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if fault_first {
                let f = next_fault.expect("fault_first");
                if f >= end {
                    break;
                }
                self.apply_next_fault();
            } else {
                match next_event {
                    Some(e) if e < end => self.step_event(),
                    _ => break,
                }
            }
        }
    }

    fn apply_next_fault(&mut self) {
        let (t, fault) = self.fault_schedule[self.fault_cursor];
        self.fault_cursor += 1;
        if t > self.time {
            self.time = t;
        }
        match fault {
            NodeFault::Crash(addr) => {
                if self.is_up(addr) {
                    self.fail_node(addr);
                    self.stats.crashes += 1;
                }
            }
            NodeFault::Recover(addr) => {
                let down = self
                    .slot(addr)
                    .map(|s| s.proto.is_some() && !s.up)
                    .unwrap_or(false);
                if down {
                    let at = self.time;
                    self.recover_node(addr, at);
                    self.stats.recoveries += 1;
                }
            }
        }
    }

    fn step_event(&mut self) {
        let event = match self.heap.pop() {
            Some(e) => e,
            None => return,
        };
        debug_assert!(event.at >= self.time, "time must be monotonic");
        self.time = event.at;
        self.stats.events += 1;
        match event.kind {
            ShardEventKind::Deliver { src, dst, msg } => {
                if self.fault_plan.severed(self.time, src, dst) {
                    self.stats.dropped += 1;
                    self.stats.partition_dropped += 1;
                    past_obs::counter("net.partition_dropped", 1);
                } else {
                    let p = self.loss_probability.max(self.fault_plan.loss_on(src, dst));
                    // Loss draws come from the destination's stream so
                    // their order is pinned by the delivery order.
                    let lose = p > 0.0 && self.slot_mut(dst).rng.gen::<f64>() < p;
                    if lose {
                        self.stats.dropped += 1;
                        self.stats.lost += 1;
                        past_obs::counter("net.lost", 1);
                    } else if !self.is_up(dst) {
                        self.stats.dropped += 1;
                        past_obs::counter("net.dropped_dead", 1);
                    } else {
                        self.stats.delivered += 1;
                        past_obs::counter("net.delivered", 1);
                        let at = self.time;
                        self.dispatch(dst, at, |p, ctx| p.on_message(ctx, src, msg));
                    }
                }
            }
            ShardEventKind::Timer { node, token } => {
                if self.is_up(node) {
                    self.stats.timers_fired += 1;
                    past_obs::counter("net.timers_fired", 1);
                    let at = self.time;
                    self.dispatch(node, at, |p, ctx| p.on_timer(ctx, token));
                }
            }
        }
    }

    /// Like [`ShardCore::dispatch`], but with this shard's fragment
    /// recorder swapped into the thread-local slot — the coordinator
    /// uses this for injection (`invoke`, recoveries) so spans and
    /// counters land in the same mergeable registry as window
    /// processing does, at any shard count.
    pub(crate) fn dispatch_obs<F>(&mut self, addr: Addr, at: SimTime, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        if self.recorder.is_some() {
            let prev = past_obs::install(self.recorder.take().expect("checked"));
            self.dispatch(addr, at, f);
            self.recorder = past_obs::uninstall();
            if let Some(p) = prev {
                past_obs::install(p);
            }
        } else {
            self.dispatch(addr, at, f);
        }
    }

    /// Runs a handler against a node and flushes its outputs; own-shard
    /// arrivals go to the heap, cross-shard arrivals to the outboxes.
    pub(crate) fn dispatch<F>(&mut self, addr: Addr, at: SimTime, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        let li = self.local_index(addr);
        // Materialize the slot so its RNG exists even for a first-ever
        // touch, then run the handler against the taken-out protocol.
        self.slot_mut(addr);
        let slot = self.slots[li].as_mut().expect("slot just materialized");
        let mut proto = match slot.proto.take() {
            Some(p) => p,
            None => return,
        };
        let mut out = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: at,
                self_addr: addr,
                topology: &*self.topology,
                rng: &mut slot.rng,
                out: &mut out,
            };
            f(&mut proto, &mut ctx);
        }
        slot.proto = Some(proto);
        let jitter_max = self.fault_plan.jitter_max().micros();
        for output in out.drain(..) {
            let slot = self.slots[li].as_mut().expect("slot exists");
            match output {
                Output::Send { dst, msg } => {
                    let mut latency = self.topology.latency(addr, dst);
                    if jitter_max > 0 {
                        // Jitter comes from the sender's stream, in
                        // output order.
                        let j = slot.rng.gen_range(0..jitter_max + 1);
                        latency = latency + SimDuration::from_micros(j);
                        self.stats.jittered += 1;
                    }
                    if past_obs::is_enabled() {
                        past_obs::counter("net.sent", 1);
                        past_obs::observe("net.transit_us", latency.micros());
                    }
                    slot.oseq += 1;
                    let ev = ShardEvent {
                        at: at + latency,
                        sent: at,
                        src: addr,
                        sseq: slot.oseq,
                        kind: ShardEventKind::Deliver {
                            src: addr,
                            dst,
                            msg,
                        },
                    };
                    let dst_shard = dst.index() % self.shards;
                    if dst_shard == self.shard_id {
                        self.heap.push(ev);
                    } else {
                        self.outboxes[dst_shard].push(ev);
                    }
                }
                Output::Timer { delay, token } => {
                    slot.oseq += 1;
                    self.heap.push(ShardEvent {
                        at: at + delay,
                        sent: at,
                        src: addr,
                        sseq: slot.oseq,
                        kind: ShardEventKind::Timer { node: addr, token },
                    });
                }
                Output::Upcall(u) => {
                    slot.oseq += 1;
                    self.upcalls.push((at, addr, slot.oseq, u));
                }
            }
        }
        self.scratch = out;
        self.stats.queue_peak = self.stats.queue_peak.max(self.heap.len() as u64);
    }
}
