//! Deterministic discrete-event network emulation for the PAST
//! reproduction.
//!
//! The PAST prototype (§5 of the paper) ran its experiments with up to
//! 2250 nodes inside a single process, communicating through a network
//! emulation environment. This crate provides that substrate:
//!
//! - [`Simulator`]: the single-threaded event-queue simulator driving
//!   per-node [`Protocol`] state machines with messages and timers,
//!   fully deterministic for a given seed.
//! - [`ShardedSim`]: the sharded multi-core engine — nodes are
//!   partitioned across shards that advance in parallel under
//!   conservative lookahead (window = the topology's
//!   [`Topology::min_latency`]), with the *same seed producing the same
//!   execution at any shard count*.
//! - [`Topology`] implementations supplying the scalar *proximity metric*
//!   that Pastry's locality heuristics depend on, and per-message latency:
//!   [`EuclideanTopology`], [`ClusteredTopology`] (the eight-site NLANR
//!   layout of §5.2) and [`UniformTopology`].
//! - [`FaultPlan`]: deterministic, seeded fault injection — crash and
//!   recovery schedules (including Poisson churn), per-link message
//!   loss, latency jitter, two-sided network partitions, and seeded
//!   per-node Byzantine strategy assignment ([`ByzantineBehavior`]).
//! - [`SimTime`]/[`SimDuration`] and [`Addr`] vocabulary types.

mod addr;
mod fault;
mod proto;
mod shard;
mod sharded;
mod sim;
mod time;
mod topology;

pub use addr::Addr;
pub use fault::{ByzantineBehavior, FaultPlan, NodeFault, Partition};
pub use proto::{Ctx, NetStats, Protocol};
pub use sharded::ShardedSim;
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};
pub use topology::{ClusteredTopology, EuclideanTopology, Topology, UniformTopology};
