//! Deterministic discrete-event network emulation for the PAST
//! reproduction.
//!
//! The PAST prototype (§5 of the paper) ran its experiments with up to
//! 2250 nodes inside a single process, communicating through a network
//! emulation environment. This crate provides that substrate:
//!
//! - [`Simulator`]: an event-queue simulator driving per-node
//!   [`Protocol`] state machines with messages and timers, fully
//!   deterministic for a given seed.
//! - [`Topology`] implementations supplying the scalar *proximity metric*
//!   that Pastry's locality heuristics depend on, and per-message latency:
//!   [`EuclideanTopology`], [`ClusteredTopology`] (the eight-site NLANR
//!   layout of §5.2) and [`UniformTopology`].
//! - [`FaultPlan`]: deterministic, seeded fault injection — crash and
//!   recovery schedules (including Poisson churn), per-link message
//!   loss, latency jitter, and two-sided network partitions.
//! - [`SimTime`]/[`SimDuration`] and [`Addr`] vocabulary types.

mod addr;
mod fault;
mod sim;
mod time;
mod topology;

pub use addr::Addr;
pub use fault::{FaultPlan, NodeFault, Partition};
pub use sim::{Ctx, NetStats, Protocol, Simulator};
pub use time::{SimDuration, SimTime};
pub use topology::{ClusteredTopology, EuclideanTopology, Topology, UniformTopology};
