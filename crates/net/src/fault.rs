//! Deterministic fault injection for the simulator.
//!
//! The paper's availability argument (§2.3, §3.5) rests on PAST healing
//! itself through node failures: "the system must adapt to maintain the
//! invariant that k copies of each file exist". A [`FaultPlan`] is a
//! seeded, fully deterministic schedule of the faults such an argument
//! has to survive:
//!
//! - node **crash/recover** events, either placed explicitly or drawn
//!   from a Poisson churn process ([`FaultPlan::poisson_churn`]);
//! - **per-link message loss** probabilities;
//! - **two-sided network partitions** — during an active partition no
//!   message crosses the cut, in either direction;
//! - **latency jitter**, a uniform per-message addition to the
//!   topology's base latency.
//!
//! Install a plan with [`crate::Simulator::set_fault_plan`]. Crash and
//! recover entries are interleaved with the event queue in timestamp
//! order; loss, partitions and jitter act on individual messages. Every
//! injected fault is counted in [`crate::NetStats`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::time::{SimDuration, SimTime};

/// A scheduled node-level fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// The node goes down (state retained, messages/timers dropped).
    Crash(Addr),
    /// The node comes back up (its `on_recover` handler runs).
    Recover(Addr),
}

/// A two-sided network partition: while active, messages between
/// `group` and its complement are dropped in both directions.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive).
    pub to: SimTime,
    /// One side of the cut; every other address is on the other side.
    pub group: Vec<Addr>,
}

impl Partition {
    /// Whether a message from `src` to `dst` at time `t` crosses an
    /// active cut.
    pub fn severs(&self, t: SimTime, src: Addr, dst: Addr) -> bool {
        if t < self.from || t >= self.to {
            return false;
        }
        self.group.contains(&src) != self.group.contains(&dst)
    }
}

#[derive(Clone, Copy, Debug)]
struct LinkLoss {
    a: Addr,
    b: Addr,
    p: f64,
}

/// The misbehavior strategy of one Byzantine node.
///
/// The network layer only *assigns* strategies (seeded, per node, as
/// part of a [`FaultPlan`]); the storage protocol acts them out. All
/// flags default to `false` — an all-default behavior is an honest
/// node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzantineBehavior {
    /// Silently drop every replica the node currently stores (and
    /// refuse to hand replicas to maintenance fetches).
    pub drop_replicas: bool,
    /// Acknowledge new stores with a receipt, then discard the bytes.
    pub ack_then_discard: bool,
    /// Answer lookups and audits from a corrupted copy of the content.
    pub corrupt_content: bool,
    /// Advertise the full disk capacity as free space, attracting
    /// replica diversions it then mishandles.
    pub inflate_free: bool,
}

impl ByzantineBehavior {
    /// The full adversary: every strategy at once.
    pub fn full() -> Self {
        ByzantineBehavior {
            drop_replicas: true,
            ack_then_discard: true,
            corrupt_content: true,
            inflate_free: true,
        }
    }

    /// Whether any misbehavior is enabled.
    pub fn is_malicious(&self) -> bool {
        self.drop_replicas || self.ack_then_discard || self.corrupt_content || self.inflate_free
    }
}

/// A deterministic schedule of injected faults.
///
/// Built with chained constructors; all randomness used while *building*
/// a plan (Poisson churn) comes from an explicit seed, and all
/// randomness used while *applying* it (loss, jitter) comes from the
/// simulator's own seeded RNG, so a (plan, simulator-seed) pair replays
/// identically.
///
/// # Examples
///
/// ```
/// use past_net::{Addr, FaultPlan, SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .crash_at(SimTime(5_000_000), Addr(3))
///     .recover_at(SimTime(9_000_000), Addr(3))
///     .partition(SimTime(2_000_000), SimTime(4_000_000), vec![Addr(0), Addr(1)])
///     .link_loss(Addr(0), Addr(2), 0.5)
///     .jitter(SimDuration::from_millis(20));
/// assert_eq!(plan.schedule().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    schedule: Vec<(SimTime, NodeFault)>,
    partitions: Vec<Partition>,
    link_loss: Vec<LinkLoss>,
    jitter: SimDuration,
    /// Downtime duration of every crash→recover pair the plan contains
    /// (restart_at and poisson_churn record them; manually paired
    /// crash_at/recover_at calls do not). Harnesses read these to
    /// report downtime distributions.
    downtimes: Vec<(Addr, SimDuration)>,
    /// Per-node Byzantine strategies. The network layer carries the
    /// assignment; the harness installs it into the protocol nodes.
    byzantine: Vec<(Addr, ByzantineBehavior)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a crash of `addr` at `t`. A crash with no later
    /// recovery is a permanent kill.
    pub fn crash_at(mut self, t: SimTime, addr: Addr) -> Self {
        self.schedule.push((t, NodeFault::Crash(addr)));
        self
    }

    /// Schedules a recovery of `addr` at `t`.
    pub fn recover_at(mut self, t: SimTime, addr: Addr) -> Self {
        self.schedule.push((t, NodeFault::Recover(addr)));
        self
    }

    /// Schedules a restart: a crash of `addr` at `t` paired with a
    /// recovery `down_for` later, recorded in the plan's downtime
    /// distribution. With `down_for` zero both faults land on the same
    /// timestamp; the crash still applies first (ties keep insertion
    /// order), so the node bounces.
    pub fn restart_at(mut self, t: SimTime, addr: Addr, down_for: SimDuration) -> Self {
        self.schedule.push((t, NodeFault::Crash(addr)));
        self.schedule.push((t + down_for, NodeFault::Recover(addr)));
        self.downtimes.push((addr, down_for));
        self
    }

    /// Adds a two-sided partition of `group` against the rest of the
    /// network over `[from, to)`.
    pub fn partition(mut self, from: SimTime, to: SimTime, group: Vec<Addr>) -> Self {
        self.partitions.push(Partition { from, to, group });
        self
    }

    /// Sets an i.i.d. loss probability on the (symmetric) link between
    /// `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn link_loss(mut self, a: Addr, b: Addr, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.link_loss.push(LinkLoss { a, b, p });
        self
    }

    /// Adds uniform per-message latency jitter in `[0, max]`.
    pub fn jitter(mut self, max: SimDuration) -> Self {
        self.jitter = max;
        self
    }

    /// Overlays a Poisson churn process: each node in `nodes`
    /// alternates exponentially distributed up-times (mean `mtbf`) and
    /// down-times (mean `mean_downtime`); crashes are generated from
    /// `start` until `horizon`, and every crash is paired with a
    /// recovery (which may land past the horizon). Deterministic in
    /// `seed`.
    pub fn poisson_churn(
        mut self,
        seed: u64,
        nodes: &[Addr],
        mtbf: SimDuration,
        mean_downtime: SimDuration,
        start: SimTime,
        horizon: SimTime,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        for &addr in nodes {
            let mut t = start + exp_sample(&mut rng, mtbf);
            while t < horizon {
                self.schedule.push((t, NodeFault::Crash(addr)));
                let down = exp_sample(&mut rng, mean_downtime);
                let up_at = t + down;
                self.schedule.push((up_at, NodeFault::Recover(addr)));
                self.downtimes.push((addr, down));
                t = up_at + exp_sample(&mut rng, mtbf);
            }
        }
        self
    }

    /// Marks one node Byzantine with an explicit strategy. A later
    /// mark for the same address replaces the earlier one.
    pub fn mark_byzantine(mut self, addr: Addr, behavior: ByzantineBehavior) -> Self {
        self.byzantine.retain(|(a, _)| *a != addr);
        self.byzantine.push((addr, behavior));
        self
    }

    /// Overlays a seeded Byzantine-node assignment: a `fraction` of
    /// `nodes` (rounded to the nearest count) is selected uniformly
    /// without replacement and given the full adversary strategy
    /// ([`ByzantineBehavior::full`]). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn byzantine(mut self, seed: u64, nodes: &[Addr], fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "byzantine fraction out of range"
        );
        let count = ((nodes.len() as f64) * fraction).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `count` slots end up holding
        // a uniform sample without replacement.
        let mut pool: Vec<Addr> = nodes.to_vec();
        for i in 0..count.min(pool.len()) {
            let j = i + rng.gen_range(0..pool.len() - i);
            pool.swap(i, j);
            self = self.mark_byzantine(pool[i], ByzantineBehavior::full());
        }
        self
    }

    /// The Byzantine assignment, sorted by address.
    pub fn byzantine_nodes(&self) -> Vec<(Addr, ByzantineBehavior)> {
        let mut b = self.byzantine.clone();
        b.sort_by_key(|(a, _)| *a);
        b
    }

    /// The crash/recover schedule in timestamp order (ties keep
    /// insertion order, so a crash scheduled before a recovery at the
    /// same instant applies first).
    pub fn schedule(&self) -> Vec<(SimTime, NodeFault)> {
        let mut s = self.schedule.clone();
        s.sort_by_key(|(t, _)| *t);
        s
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Downtime durations of the plan's recorded crash→recover pairs,
    /// in generation order.
    pub fn downtimes(&self) -> &[(Addr, SimDuration)] {
        &self.downtimes
    }

    /// Maximum per-message jitter.
    pub fn jitter_max(&self) -> SimDuration {
        self.jitter
    }

    /// Whether an active partition severs `src`→`dst` at `t`.
    pub(crate) fn severed(&self, t: SimTime, src: Addr, dst: Addr) -> bool {
        self.partitions.iter().any(|p| p.severs(t, src, dst))
    }

    /// Loss probability injected on the `src`→`dst` link (0 when no
    /// rule matches; the largest matching rule wins).
    pub(crate) fn loss_on(&self, src: Addr, dst: Addr) -> f64 {
        self.link_loss
            .iter()
            .filter(|l| (l.a == src && l.b == dst) || (l.a == dst && l.b == src))
            .map(|l| l.p)
            .fold(0.0, f64::max)
    }
}

/// Exponentially distributed sample with the given mean.
fn exp_sample(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1], so the log is finite.
    let x = -(1.0 - u).ln() * mean.micros() as f64;
    SimDuration::from_micros(x as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorted_by_time() {
        let plan = FaultPlan::new()
            .recover_at(SimTime(30), Addr(1))
            .crash_at(SimTime(10), Addr(1))
            .crash_at(SimTime(20), Addr(2));
        let s = plan.schedule();
        assert_eq!(
            s,
            vec![
                (SimTime(10), NodeFault::Crash(Addr(1))),
                (SimTime(20), NodeFault::Crash(Addr(2))),
                (SimTime(30), NodeFault::Recover(Addr(1))),
            ]
        );
    }

    #[test]
    fn partition_severs_only_across_cut_during_window() {
        let p = Partition {
            from: SimTime(100),
            to: SimTime(200),
            group: vec![Addr(0), Addr(1)],
        };
        // Across the cut, inside the window, both directions.
        assert!(p.severs(SimTime(100), Addr(0), Addr(2)));
        assert!(p.severs(SimTime(150), Addr(2), Addr(1)));
        // Same side.
        assert!(!p.severs(SimTime(150), Addr(0), Addr(1)));
        assert!(!p.severs(SimTime(150), Addr(2), Addr(3)));
        // Outside the window (end exclusive).
        assert!(!p.severs(SimTime(99), Addr(0), Addr(2)));
        assert!(!p.severs(SimTime(200), Addr(0), Addr(2)));
    }

    #[test]
    fn link_loss_symmetric_and_max_wins() {
        let plan = FaultPlan::new()
            .link_loss(Addr(0), Addr(1), 0.2)
            .link_loss(Addr(1), Addr(0), 0.7);
        assert_eq!(plan.loss_on(Addr(0), Addr(1)), 0.7);
        assert_eq!(plan.loss_on(Addr(1), Addr(0)), 0.7);
        assert_eq!(plan.loss_on(Addr(0), Addr(2)), 0.0);
    }

    #[test]
    fn poisson_churn_deterministic_and_paired() {
        let nodes: Vec<Addr> = (0..8).map(Addr).collect();
        let mk = || {
            FaultPlan::new().poisson_churn(
                7,
                &nodes,
                SimDuration::from_secs(100),
                SimDuration::from_secs(10),
                SimTime::ZERO,
                SimTime(600_000_000),
            )
        };
        let a = mk().schedule();
        let b = mk().schedule();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(!a.is_empty(), "600 s at 100 s MTBF should produce churn");
        let crashes = a
            .iter()
            .filter(|(_, f)| matches!(f, NodeFault::Crash(_)))
            .count();
        let recoveries = a.len() - crashes;
        assert_eq!(crashes, recoveries, "every crash pairs with a recovery");
    }

    #[test]
    fn restart_at_pairs_and_records_downtime() {
        let plan = FaultPlan::new()
            .restart_at(SimTime(100), Addr(4), SimDuration::from_secs(3))
            .restart_at(SimTime(50), Addr(2), SimDuration::ZERO);
        assert_eq!(
            plan.schedule(),
            vec![
                (SimTime(50), NodeFault::Crash(Addr(2))),
                (SimTime(50), NodeFault::Recover(Addr(2))),
                (SimTime(100), NodeFault::Crash(Addr(4))),
                (SimTime(3_000_100), NodeFault::Recover(Addr(4))),
            ]
        );
        assert_eq!(
            plan.downtimes(),
            &[
                (Addr(4), SimDuration::from_secs(3)),
                (Addr(2), SimDuration::ZERO),
            ]
        );
    }

    #[test]
    fn crash_recover_tie_keeps_crash_first() {
        // Same timestamp, opposite insertion orders: the sort is stable,
        // so whichever fault was *scheduled* first applies first. A
        // restart_at always schedules crash before recover, so a
        // zero-downtime restart bounces rather than no-ops.
        let bounce = FaultPlan::new().restart_at(SimTime(7), Addr(1), SimDuration::ZERO);
        assert_eq!(
            bounce.schedule(),
            vec![
                (SimTime(7), NodeFault::Crash(Addr(1))),
                (SimTime(7), NodeFault::Recover(Addr(1))),
            ]
        );
        let reversed = FaultPlan::new()
            .recover_at(SimTime(7), Addr(1))
            .crash_at(SimTime(7), Addr(1));
        assert_eq!(
            reversed.schedule(),
            vec![
                (SimTime(7), NodeFault::Recover(Addr(1))),
                (SimTime(7), NodeFault::Crash(Addr(1))),
            ]
        );
    }

    #[test]
    fn poisson_churn_records_downtimes() {
        let nodes: Vec<Addr> = (0..8).map(Addr).collect();
        let plan = FaultPlan::new().poisson_churn(
            7,
            &nodes,
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            SimTime::ZERO,
            SimTime(600_000_000),
        );
        let crashes = plan
            .schedule()
            .iter()
            .filter(|(_, f)| matches!(f, NodeFault::Crash(_)))
            .count();
        assert_eq!(
            plan.downtimes().len(),
            crashes,
            "every generated crash records its downtime"
        );
    }

    #[test]
    fn byzantine_assignment_deterministic_and_sized() {
        let nodes: Vec<Addr> = (1..=20).map(Addr).collect();
        let mk = |seed| FaultPlan::new().byzantine(seed, &nodes, 0.2).byzantine_nodes();
        let a = mk(3);
        assert_eq!(a, mk(3), "same seed must give the same assignment");
        assert_eq!(a.len(), 4, "20% of 20 nodes");
        // Distinct addresses drawn from the pool, full adversary each.
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (addr, b) in &a {
            assert!(nodes.contains(addr));
            assert_eq!(*b, ByzantineBehavior::full());
        }
        assert_ne!(mk(3), mk(4), "seed changes the selection");
    }

    #[test]
    fn byzantine_fraction_bounds() {
        let nodes: Vec<Addr> = (1..=10).map(Addr).collect();
        assert!(FaultPlan::new()
            .byzantine(1, &nodes, 0.0)
            .byzantine_nodes()
            .is_empty());
        assert_eq!(
            FaultPlan::new()
                .byzantine(1, &nodes, 1.0)
                .byzantine_nodes()
                .len(),
            10
        );
        // Default behavior is honest; mark replaces earlier marks.
        assert!(!ByzantineBehavior::default().is_malicious());
        let plan = FaultPlan::new()
            .mark_byzantine(Addr(3), ByzantineBehavior::full())
            .mark_byzantine(
                Addr(3),
                ByzantineBehavior {
                    corrupt_content: true,
                    ..Default::default()
                },
            );
        let b = plan.byzantine_nodes();
        assert_eq!(b.len(), 1);
        assert!(b[0].1.corrupt_content && !b[0].1.drop_replicas);
    }

    #[test]
    fn poisson_churn_seed_changes_schedule() {
        let nodes: Vec<Addr> = (0..8).map(Addr).collect();
        let mk = |seed| {
            FaultPlan::new()
                .poisson_churn(
                    seed,
                    &nodes,
                    SimDuration::from_secs(50),
                    SimDuration::from_secs(5),
                    SimTime::ZERO,
                    SimTime(600_000_000),
                )
                .schedule()
        };
        assert_ne!(mk(1), mk(2));
    }
}
