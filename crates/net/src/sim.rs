//! The single-threaded discrete-event simulator core.
//!
//! The paper's prototype ran up to 2250 PAST nodes inside a single Java VM
//! communicating through a network emulation layer. This module is the
//! Rust equivalent: every node is a deterministic state machine driven by
//! delivered messages and timers; an event queue orders all activity by
//! simulated time with a strict total order (time, then sequence number),
//! so any experiment is exactly reproducible from its seed.
//!
//! The protocol surface ([`Protocol`], [`Ctx`], [`NetStats`]) lives in
//! [`crate::proto`], shared with the multi-core [`crate::ShardedSim`]
//! engine; this file is the reference engine both are measured against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::fault::{FaultPlan, NodeFault};
use crate::proto::{Ctx, NetStats, Output, Protocol};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

#[derive(Debug)]
enum EventKind<M> {
    Deliver { src: Addr, dst: Addr, msg: M },
    Timer { node: Addr, token: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot<P> {
    proto: Option<P>,
    up: bool,
}

/// The discrete-event network simulator.
///
/// # Examples
///
/// ```
/// use past_net::{Addr, Ctx, Protocol, SimDuration, Simulator, UniformTopology};
///
/// struct Echo;
/// impl Protocol for Echo {
///     type Msg = u32;
///     type Upcall = u32;
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, from: Addr, msg: u32) {
///         if msg > 0 {
///             ctx.send(from, msg - 1);
///         } else {
///             ctx.emit(0);
///         }
///     }
/// }
///
/// let topo = UniformTopology::new(2, SimDuration::from_millis(1));
/// let mut sim = Simulator::new(Box::new(topo), 42);
/// sim.add_node(Addr(0), Echo);
/// sim.add_node(Addr(1), Echo);
/// sim.invoke(Addr(0), |_echo, ctx| ctx.send(Addr(1), 5));
/// sim.run_until_idle();
/// assert_eq!(sim.drain_upcalls().len(), 1);
/// ```
pub struct Simulator<P: Protocol> {
    nodes: Vec<NodeSlot<P>>,
    queue: BinaryHeap<Event<P::Msg>>,
    topology: Box<dyn Topology>,
    time: SimTime,
    seq: u64,
    rng: StdRng,
    loss_probability: f64,
    fault_plan: FaultPlan,
    fault_schedule: Vec<(SimTime, NodeFault)>,
    fault_cursor: usize,
    stats: NetStats,
    upcalls: Vec<(SimTime, Addr, P::Upcall)>,
    scratch: Vec<Output<P::Msg, P::Upcall>>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates an empty simulator over `topology`, seeded for determinism.
    pub fn new(topology: Box<dyn Topology>, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            queue: BinaryHeap::with_capacity(1024),
            topology,
            time: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            loss_probability: 0.0,
            fault_plan: FaultPlan::default(),
            fault_schedule: Vec::new(),
            fault_cursor: 0,
            stats: NetStats::default(),
            upcalls: Vec::with_capacity(64),
            scratch: Vec::with_capacity(64),
        }
    }

    /// Pre-sizes the event queue and upcall buffer. Large experiments
    /// keep hundreds of thousands of in-flight events; reserving up
    /// front avoids the doubling reallocations (and copies of every
    /// queued message) on the way there.
    pub fn reserve_capacity(&mut self, events: usize, upcalls: usize) {
        self.queue.reserve(events.saturating_sub(self.queue.len()));
        self.upcalls
            .reserve(upcalls.saturating_sub(self.upcalls.len()));
    }

    /// Sets an i.i.d. message-loss probability (0 disables loss).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
    }

    /// Installs a fault plan. Crash/recover entries are interleaved
    /// with the event queue by timestamp; partitions, per-link loss and
    /// jitter act on individual messages. Entries scheduled before the
    /// current time apply immediately on the next step (time never
    /// rewinds). Replaces any previously installed plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_schedule = plan.schedule();
        self.fault_plan = plan;
        self.fault_cursor = 0;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topology
    }

    /// Adds a node and runs its `on_start` handler.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the topology capacity or is occupied.
    pub fn add_node(&mut self, addr: Addr, proto: P) {
        assert!(
            addr.index() < self.topology.capacity(),
            "address {addr} outside topology capacity {}",
            self.topology.capacity()
        );
        if self.nodes.len() <= addr.index() {
            self.nodes.resize_with(addr.index() + 1, || NodeSlot {
                proto: None,
                up: false,
            });
        }
        let slot = &mut self.nodes[addr.index()];
        assert!(slot.proto.is_none(), "address {addr} already occupied");
        slot.proto = Some(proto);
        slot.up = true;
        self.dispatch(addr, |p, ctx| p.on_start(ctx));
    }

    /// Returns whether `addr` hosts a live node.
    pub fn is_up(&self, addr: Addr) -> bool {
        self.nodes
            .get(addr.index())
            .map(|s| s.proto.is_some() && s.up)
            .unwrap_or(false)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, addr: Addr) -> Option<&P> {
        self.nodes.get(addr.index()).and_then(|s| s.proto.as_ref())
    }

    /// Mutable access to a node's protocol state (bypasses the network —
    /// intended for harness inspection and test setup).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut P> {
        self.nodes
            .get_mut(addr.index())
            .and_then(|s| s.proto.as_mut())
    }

    /// Iterates over all live node addresses.
    pub fn live_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.proto.is_some() && s.up)
            .map(|(i, _)| Addr(i as u32))
    }

    /// Marks a node as failed: pending and future messages/timers for it
    /// are dropped, but its state (disk contents) is retained. The
    /// protocol's context-free [`Protocol::on_crash`] hook runs once per
    /// up→down transition (e.g. to snapshot state for a warm restart).
    pub fn fail_node(&mut self, addr: Addr) {
        let now = self.time;
        if let Some(slot) = self.nodes.get_mut(addr.index()) {
            if slot.up {
                if let Some(proto) = slot.proto.as_mut() {
                    proto.on_crash(now);
                }
            }
            slot.up = false;
        }
    }

    /// Brings a failed node back online and runs its `on_recover` handler.
    ///
    /// # Panics
    ///
    /// Panics if no node state exists at `addr`.
    pub fn recover_node(&mut self, addr: Addr) {
        let slot = self
            .nodes
            .get_mut(addr.index())
            .expect("no node at address");
        assert!(slot.proto.is_some(), "no node state at {addr}");
        slot.up = true;
        self.dispatch(addr, |p, ctx| p.on_recover(ctx));
    }

    /// Permanently removes a node, dropping its state. Returns the state.
    pub fn remove_node(&mut self, addr: Addr) -> Option<P> {
        self.nodes.get_mut(addr.index()).and_then(|s| {
            s.up = false;
            s.proto.take()
        })
    }

    /// Runs `f` against a live node immediately (at the current simulated
    /// time), flushing any sends/timers/upcalls it produces. This is how a
    /// harness injects client operations.
    ///
    /// # Panics
    ///
    /// Panics if the node is absent or down.
    pub fn invoke<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        assert!(self.is_up(addr), "invoke on absent/down node {addr}");
        self.dispatch(addr, f);
    }

    /// Drains the collected upcalls.
    pub fn drain_upcalls(&mut self) -> Vec<(SimTime, Addr, P::Upcall)> {
        std::mem::take(&mut self.upcalls)
    }

    /// Drains the collected upcalls into `buf`, retaining the internal
    /// buffer's capacity. Harnesses that collect after every operation
    /// should prefer this over [`Self::drain_upcalls`]: neither side
    /// reallocates once the buffers reach steady-state size.
    pub fn drain_upcalls_into(&mut self, buf: &mut Vec<(SimTime, Addr, P::Upcall)>) {
        buf.append(&mut self.upcalls);
    }

    /// Throws away the collected upcalls without surrendering the
    /// buffer (for harness phases that only advance the clock).
    pub fn discard_upcalls(&mut self) {
        self.upcalls.clear();
    }

    /// Processes a single event or scheduled fault. Returns `false`
    /// when both the event queue and the fault schedule are exhausted.
    pub fn step(&mut self) -> bool {
        // Apply scheduled faults due at or before the next event; a
        // fault at the same instant as a delivery applies first, so a
        // message to a node crashing "now" is dropped.
        while let Some(fault_at) = self.next_fault_at() {
            match self.queue.peek() {
                Some(e) if e.at < fault_at => break,
                Some(_) => self.apply_next_fault(),
                None => {
                    self.apply_next_fault();
                    return true;
                }
            }
        }
        self.step_event()
    }

    /// Runs until the event queue and fault schedule are exhausted.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or `deadline` is reached; events
    /// and faults at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let next_event = self.queue.peek().map(|e| e.at);
            let next_fault = self.next_fault_at();
            let fault_first = match (next_fault, next_event) {
                (Some(f), Some(e)) => f <= e,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if fault_first {
                if next_fault.expect("fault_first") > deadline {
                    break;
                }
                self.apply_next_fault();
            } else {
                match next_event {
                    Some(e) if e <= deadline => {
                        self.step_event();
                    }
                    _ => break,
                }
            }
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    fn next_fault_at(&self) -> Option<SimTime> {
        self.fault_schedule
            .get(self.fault_cursor)
            .map(|(t, _)| *t)
    }

    /// Applies the next scheduled fault, advancing simulated time to
    /// its timestamp. Faults against absent nodes, crashes of already
    /// down nodes and recoveries of up (or removed) nodes are no-ops.
    fn apply_next_fault(&mut self) {
        let (t, fault) = self.fault_schedule[self.fault_cursor];
        self.fault_cursor += 1;
        if t > self.time {
            self.time = t;
        }
        match fault {
            NodeFault::Crash(addr) => {
                if self.is_up(addr) {
                    self.fail_node(addr);
                    self.stats.crashes += 1;
                }
            }
            NodeFault::Recover(addr) => {
                let down = self
                    .nodes
                    .get(addr.index())
                    .map(|s| s.proto.is_some() && !s.up)
                    .unwrap_or(false);
                if down {
                    self.recover_node(addr);
                    self.stats.recoveries += 1;
                }
            }
        }
    }

    /// Pops and processes one queued event (no fault handling).
    fn step_event(&mut self) -> bool {
        let event = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(event.at >= self.time, "time must be monotonic");
        self.time = event.at;
        self.stats.events += 1;
        match event.kind {
            EventKind::Deliver { src, dst, msg } => {
                if self.fault_plan.severed(self.time, src, dst) {
                    self.stats.dropped += 1;
                    self.stats.partition_dropped += 1;
                    past_obs::counter("net.partition_dropped", 1);
                } else {
                    let p = self.loss_probability.max(self.fault_plan.loss_on(src, dst));
                    let lose = p > 0.0 && self.rng.gen::<f64>() < p;
                    if lose {
                        self.stats.dropped += 1;
                        self.stats.lost += 1;
                        past_obs::counter("net.lost", 1);
                    } else if !self.is_up(dst) {
                        self.stats.dropped += 1;
                        past_obs::counter("net.dropped_dead", 1);
                    } else {
                        self.stats.delivered += 1;
                        past_obs::counter("net.delivered", 1);
                        self.dispatch(dst, |p, ctx| p.on_message(ctx, src, msg));
                    }
                }
            }
            EventKind::Timer { node, token } => {
                if self.is_up(node) {
                    self.stats.timers_fired += 1;
                    past_obs::counter("net.timers_fired", 1);
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, token));
                }
            }
        }
        true
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// Number of queued events (for harness diagnostics and back-pressure).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn dispatch<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        let mut proto = match self
            .nodes
            .get_mut(addr.index())
            .and_then(|s| s.proto.take())
        {
            Some(p) => p,
            None => return,
        };
        let mut out = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.time,
                self_addr: addr,
                topology: &*self.topology,
                rng: &mut self.rng,
                out: &mut out,
            };
            f(&mut proto, &mut ctx);
        }
        self.nodes[addr.index()].proto = Some(proto);
        for output in out.drain(..) {
            match output {
                Output::Send { dst, msg } => {
                    let mut latency = self.topology.latency(addr, dst);
                    let jitter_max = self.fault_plan.jitter_max().micros();
                    if jitter_max > 0 {
                        let j = self.rng.gen_range(0..jitter_max + 1);
                        latency = latency + SimDuration::from_micros(j);
                        self.stats.jittered += 1;
                    }
                    if past_obs::is_enabled() {
                        past_obs::counter("net.sent", 1);
                        past_obs::observe("net.transit_us", latency.micros());
                    }
                    self.seq += 1;
                    self.queue.push(Event {
                        at: self.time + latency,
                        seq: self.seq,
                        kind: EventKind::Deliver {
                            src: addr,
                            dst,
                            msg,
                        },
                    });
                }
                Output::Timer { delay, token } => {
                    self.seq += 1;
                    self.queue.push(Event {
                        at: self.time + delay,
                        seq: self.seq,
                        kind: EventKind::Timer { node: addr, token },
                    });
                }
                Output::Upcall(u) => {
                    self.upcalls.push((self.time, addr, u));
                }
            }
        }
        self.scratch = out;
        self.stats.queue_peak = self.stats.queue_peak.max(self.queue.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformTopology;

    /// Test protocol: counts pings, echoes pongs, supports timers.
    struct PingPong {
        pings_seen: u32,
        timer_tokens: Vec<u64>,
    }

    impl PingPong {
        fn new() -> Self {
            PingPong {
                pings_seen: 0,
                timer_tokens: Vec::new(),
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = Msg;
        type Upcall = &'static str;

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, &'static str>, from: Addr, msg: Msg) {
            match msg {
                Msg::Ping => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => ctx.emit("pong"),
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, &'static str>, token: u64) {
            self.timer_tokens.push(token);
            ctx.emit("timer");
        }
    }

    fn sim2() -> Simulator<PingPong> {
        let topo = UniformTopology::new(4, SimDuration::from_millis(5));
        let mut sim = Simulator::new(Box::new(topo), 1);
        sim.add_node(Addr(0), PingPong::new());
        sim.add_node(Addr(1), PingPong::new());
        sim
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        let ups = sim.drain_upcalls();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].1, Addr(0));
        // Two 5 ms hops.
        assert_eq!(ups[0].0, SimTime(10_000));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(20), 2);
        });
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1, 2, 3]);
    }

    #[test]
    fn messages_to_dead_nodes_dropped() {
        let mut sim = sim2();
        sim.fail_node(Addr(1));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 0);
    }

    #[test]
    fn failed_node_keeps_state_and_recovers() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        sim.fail_node(Addr(1));
        assert!(!sim.is_up(Addr(1)));
        sim.recover_node(Addr(1));
        assert!(sim.is_up(Addr(1)));
        // Disk state survived the failure.
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
    }

    #[test]
    fn timers_suppressed_while_down() {
        let mut sim = sim2();
        sim.invoke(Addr(1), |_p, ctx| ctx.set_timer(SimDuration::from_millis(1), 9));
        sim.fail_node(Addr(1));
        sim.run_until_idle();
        assert!(sim.node(Addr(1)).unwrap().timer_tokens.is_empty());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(50), 2);
        });
        sim.run_until(SimTime(20_000));
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1]);
        assert_eq!(sim.now(), SimTime(20_000));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let topo = UniformTopology::new(4, SimDuration::from_millis(5));
            let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), seed);
            sim.add_node(Addr(0), PingPong::new());
            sim.add_node(Addr(1), PingPong::new());
            sim.set_loss_probability(0.5);
            for _ in 0..32 {
                sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
            }
            sim.run_until_idle();
            sim.node(Addr(1)).unwrap().pings_seen
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn loss_probability_drops_messages() {
        let topo = UniformTopology::new(2, SimDuration::from_millis(1));
        let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), 11);
        sim.add_node(Addr(0), PingPong::new());
        sim.add_node(Addr(1), PingPong::new());
        sim.set_loss_probability(1.0);
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    #[should_panic]
    fn double_occupancy_panics() {
        let mut sim = sim2();
        sim.add_node(Addr(0), PingPong::new());
    }

    #[test]
    fn remove_node_returns_state() {
        let mut sim = sim2();
        let state = sim.remove_node(Addr(0)).unwrap();
        assert_eq!(state.pings_seen, 0);
        assert!(!sim.is_up(Addr(0)));
        assert!(sim.remove_node(Addr(0)).is_none());
    }

    #[test]
    fn live_addrs_lists_up_nodes() {
        let mut sim = sim2();
        sim.fail_node(Addr(0));
        let live: Vec<Addr> = sim.live_addrs().collect();
        assert_eq!(live, vec![Addr(1)]);
    }

    #[test]
    fn fault_plan_crash_and_recover_applied_in_order() {
        use crate::fault::FaultPlan;
        let mut sim = sim2();
        sim.set_fault_plan(
            FaultPlan::new()
                .crash_at(SimTime(10_000), Addr(1))
                .recover_at(SimTime(40_000), Addr(1)),
        );
        // Sent at t=0, arrives t=5ms: delivered before the crash.
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        // A timer at t=20ms sends another ping, arriving at t=25ms
        // while Addr(1) is down: dropped.
        sim.invoke(Addr(0), |_p, ctx| ctx.set_timer(SimDuration::from_millis(20), 7));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        let stats = sim.stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert!(sim.is_up(Addr(1)), "recovery applied even after queue drained");
    }

    #[test]
    fn fault_plan_partition_drops_both_directions() {
        use crate::fault::FaultPlan;
        let topo = UniformTopology::new(4, SimDuration::from_millis(5));
        let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), 3);
        for i in 0..4 {
            sim.add_node(Addr(i), PingPong::new());
        }
        sim.set_fault_plan(FaultPlan::new().partition(
            SimTime::ZERO,
            SimTime(1_000_000),
            vec![Addr(0), Addr(1)],
        ));
        // Across the cut, both directions: dropped.
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(2), Msg::Ping));
        sim.invoke(Addr(2), |_p, ctx| ctx.send(Addr(0), Msg::Ping));
        // Same side: delivered.
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.stats().partition_dropped, 2);
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        assert_eq!(sim.node(Addr(0)).unwrap().pings_seen, 0);
        assert_eq!(sim.node(Addr(2)).unwrap().pings_seen, 0);
        // After the window, the same send goes through.
        sim.run_until(SimTime(2_000_000));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(2), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(2)).unwrap().pings_seen, 1);
    }

    #[test]
    fn fault_plan_link_loss_is_per_link() {
        use crate::fault::FaultPlan;
        let topo = UniformTopology::new(3, SimDuration::from_millis(1));
        let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), 5);
        for i in 0..3 {
            sim.add_node(Addr(i), PingPong::new());
        }
        sim.set_fault_plan(FaultPlan::new().link_loss(Addr(0), Addr(1), 1.0));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(2), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 0, "lossy link");
        assert_eq!(sim.node(Addr(2)).unwrap().pings_seen, 1, "clean link");
        assert_eq!(sim.stats().lost, 1);
    }

    #[test]
    fn fault_plan_jitter_delays_but_preserves_delivery() {
        use crate::fault::FaultPlan;
        let mut sim = sim2();
        sim.set_fault_plan(FaultPlan::new().jitter(SimDuration::from_millis(50)));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        assert!(sim.stats().jittered >= 1);
        // Base latency 5ms; jittered delivery lands in [5ms, 55ms].
        assert!(sim.now() >= SimTime(5_000));
        assert!(sim.now() <= SimTime(110_000));
    }

    #[test]
    fn fault_plan_runs_deterministically() {
        use crate::fault::FaultPlan;
        let run = |seed| {
            let topo = UniformTopology::new(8, SimDuration::from_millis(5));
            let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), seed);
            let addrs: Vec<Addr> = (0..8).map(Addr).collect();
            for &a in &addrs {
                sim.add_node(a, PingPong::new());
            }
            sim.set_fault_plan(
                FaultPlan::new()
                    .poisson_churn(
                        seed,
                        &addrs,
                        SimDuration::from_secs(30),
                        SimDuration::from_secs(5),
                        SimTime::ZERO,
                        SimTime(120_000_000),
                    )
                    .jitter(SimDuration::from_millis(10))
                    .link_loss(Addr(0), Addr(1), 0.3),
            );
            for i in 0..64u32 {
                let from = Addr(i % 8);
                let to = Addr((i + 1) % 8);
                if sim.is_up(from) {
                    sim.invoke(from, move |_p, ctx| ctx.send(to, Msg::Ping));
                }
                sim.run_for(SimDuration::from_secs(2));
            }
            sim.run_until_idle();
            let s = sim.stats();
            (s.delivered, s.dropped, s.crashes, s.recoveries, s.lost)
        };
        assert_eq!(run(11), run(11));
    }
}
