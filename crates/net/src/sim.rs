//! The discrete-event simulator core.
//!
//! The paper's prototype ran up to 2250 PAST nodes inside a single Java VM
//! communicating through a network emulation layer. This module is the
//! Rust equivalent: every node is a deterministic state machine driven by
//! delivered messages and timers; an event queue orders all activity by
//! simulated time with a strict total order (time, then sequence number),
//! so any experiment is exactly reproducible from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// A protocol instance running on one emulated node.
///
/// Handlers receive a [`Ctx`] for sending messages, arming timers,
/// querying the proximity metric and emitting *upcalls* (protocol-level
/// events that the experiment harness collects, e.g. "insert completed").
pub trait Protocol: Sized {
    /// Message type exchanged between nodes.
    type Msg;
    /// Harness-visible event type.
    type Upcall;

    /// Invoked once when the node is added to the network (and again on
    /// recovery unless [`Protocol::on_recover`] is overridden).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        let _ = ctx;
    }

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, from: Addr, msg: Self::Msg);

    /// Invoked when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, token: u64) {
        let _ = (ctx, token);
    }

    /// Invoked when a previously failed node comes back online.
    /// Defaults to [`Protocol::on_start`].
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        self.on_start(ctx);
    }
}

/// Handler context: the API a protocol uses to interact with the network.
pub struct Ctx<'a, M, U> {
    now: SimTime,
    self_addr: Addr,
    topology: &'a dyn Topology,
    rng: &'a mut StdRng,
    out: &'a mut Vec<Output<M, U>>,
}

enum Output<M, U> {
    Send { dst: Addr, msg: M },
    Timer { delay: SimDuration, token: u64 },
    Upcall(U),
}

impl<'a, M, U> Ctx<'a, M, U> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.self_addr
    }

    /// Sends `msg` to `dst`; it arrives after the topology's latency.
    pub fn send(&mut self, dst: Addr, msg: M) {
        self.out.push(Output::Send { dst, msg });
    }

    /// Arms a timer that fires after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.out.push(Output::Timer { delay, token });
    }

    /// Emits a harness-visible event.
    pub fn emit(&mut self, upcall: U) {
        self.out.push(Output::Upcall(upcall));
    }

    /// Scalar proximity between this node and `other` (e.g. an RTT probe).
    pub fn proximity(&self, other: Addr) -> f64 {
        self.topology.distance(self.self_addr, other)
    }

    /// Scalar proximity between two arbitrary nodes. Real deployments
    /// estimate this with probes; the emulation exposes the metric
    /// directly, as the paper's emulation environment does.
    pub fn proximity_between(&self, a: Addr, b: Addr) -> f64 {
        self.topology.distance(a, b)
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { src: Addr, dst: Addr, msg: M },
    Timer { node: Addr, token: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot<P> {
    proto: Option<P>,
    up: bool,
}

/// Counters describing network-level activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages dropped (dead/absent destination or injected loss).
    pub dropped: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events: u64,
}

/// The discrete-event network simulator.
///
/// # Examples
///
/// ```
/// use past_net::{Addr, Ctx, Protocol, SimDuration, Simulator, UniformTopology};
///
/// struct Echo;
/// impl Protocol for Echo {
///     type Msg = u32;
///     type Upcall = u32;
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, from: Addr, msg: u32) {
///         if msg > 0 {
///             ctx.send(from, msg - 1);
///         } else {
///             ctx.emit(0);
///         }
///     }
/// }
///
/// let topo = UniformTopology::new(2, SimDuration::from_millis(1));
/// let mut sim = Simulator::new(Box::new(topo), 42);
/// sim.add_node(Addr(0), Echo);
/// sim.add_node(Addr(1), Echo);
/// sim.invoke(Addr(0), |_echo, ctx| ctx.send(Addr(1), 5));
/// sim.run_until_idle();
/// assert_eq!(sim.drain_upcalls().len(), 1);
/// ```
pub struct Simulator<P: Protocol> {
    nodes: Vec<NodeSlot<P>>,
    queue: BinaryHeap<Event<P::Msg>>,
    topology: Box<dyn Topology>,
    time: SimTime,
    seq: u64,
    rng: StdRng,
    loss_probability: f64,
    stats: NetStats,
    upcalls: Vec<(SimTime, Addr, P::Upcall)>,
    scratch: Vec<Output<P::Msg, P::Upcall>>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates an empty simulator over `topology`, seeded for determinism.
    pub fn new(topology: Box<dyn Topology>, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            topology,
            time: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            loss_probability: 0.0,
            stats: NetStats::default(),
            upcalls: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Sets an i.i.d. message-loss probability (0 disables loss).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topology
    }

    /// Adds a node and runs its `on_start` handler.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the topology capacity or is occupied.
    pub fn add_node(&mut self, addr: Addr, proto: P) {
        assert!(
            addr.index() < self.topology.capacity(),
            "address {addr} outside topology capacity {}",
            self.topology.capacity()
        );
        if self.nodes.len() <= addr.index() {
            self.nodes.resize_with(addr.index() + 1, || NodeSlot {
                proto: None,
                up: false,
            });
        }
        let slot = &mut self.nodes[addr.index()];
        assert!(slot.proto.is_none(), "address {addr} already occupied");
        slot.proto = Some(proto);
        slot.up = true;
        self.dispatch(addr, |p, ctx| p.on_start(ctx));
    }

    /// Returns whether `addr` hosts a live node.
    pub fn is_up(&self, addr: Addr) -> bool {
        self.nodes
            .get(addr.index())
            .map(|s| s.proto.is_some() && s.up)
            .unwrap_or(false)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, addr: Addr) -> Option<&P> {
        self.nodes.get(addr.index()).and_then(|s| s.proto.as_ref())
    }

    /// Mutable access to a node's protocol state (bypasses the network —
    /// intended for harness inspection and test setup).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut P> {
        self.nodes
            .get_mut(addr.index())
            .and_then(|s| s.proto.as_mut())
    }

    /// Iterates over all live node addresses.
    pub fn live_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.proto.is_some() && s.up)
            .map(|(i, _)| Addr(i as u32))
    }

    /// Marks a node as failed: pending and future messages/timers for it
    /// are dropped, but its state (disk contents) is retained.
    pub fn fail_node(&mut self, addr: Addr) {
        if let Some(slot) = self.nodes.get_mut(addr.index()) {
            slot.up = false;
        }
    }

    /// Brings a failed node back online and runs its `on_recover` handler.
    ///
    /// # Panics
    ///
    /// Panics if no node state exists at `addr`.
    pub fn recover_node(&mut self, addr: Addr) {
        let slot = self
            .nodes
            .get_mut(addr.index())
            .expect("no node at address");
        assert!(slot.proto.is_some(), "no node state at {addr}");
        slot.up = true;
        self.dispatch(addr, |p, ctx| p.on_recover(ctx));
    }

    /// Permanently removes a node, dropping its state. Returns the state.
    pub fn remove_node(&mut self, addr: Addr) -> Option<P> {
        self.nodes.get_mut(addr.index()).and_then(|s| {
            s.up = false;
            s.proto.take()
        })
    }

    /// Runs `f` against a live node immediately (at the current simulated
    /// time), flushing any sends/timers/upcalls it produces. This is how a
    /// harness injects client operations.
    ///
    /// # Panics
    ///
    /// Panics if the node is absent or down.
    pub fn invoke<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        assert!(self.is_up(addr), "invoke on absent/down node {addr}");
        self.dispatch(addr, f);
    }

    /// Drains the collected upcalls.
    pub fn drain_upcalls(&mut self) -> Vec<(SimTime, Addr, P::Upcall)> {
        std::mem::take(&mut self.upcalls)
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let event = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(event.at >= self.time, "time must be monotonic");
        self.time = event.at;
        self.stats.events += 1;
        match event.kind {
            EventKind::Deliver { src, dst, msg } => {
                let lose =
                    self.loss_probability > 0.0 && self.rng.gen::<f64>() < self.loss_probability;
                if !self.is_up(dst) || lose {
                    self.stats.dropped += 1;
                } else {
                    self.stats.delivered += 1;
                    self.dispatch(dst, |p, ctx| p.on_message(ctx, src, msg));
                }
            }
            EventKind::Timer { node, token } => {
                if self.is_up(node) {
                    self.stats.timers_fired += 1;
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, token));
                }
            }
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or `deadline` is reached; events at
    /// exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(event) = self.queue.peek() {
            if event.at > deadline {
                break;
            }
            self.step();
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// Number of queued events (for harness diagnostics and back-pressure).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn dispatch<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Upcall>),
    {
        let mut proto = match self
            .nodes
            .get_mut(addr.index())
            .and_then(|s| s.proto.take())
        {
            Some(p) => p,
            None => return,
        };
        let mut out = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.time,
                self_addr: addr,
                topology: &*self.topology,
                rng: &mut self.rng,
                out: &mut out,
            };
            f(&mut proto, &mut ctx);
        }
        self.nodes[addr.index()].proto = Some(proto);
        for output in out.drain(..) {
            match output {
                Output::Send { dst, msg } => {
                    let latency = self.topology.latency(addr, dst);
                    self.seq += 1;
                    self.queue.push(Event {
                        at: self.time + latency,
                        seq: self.seq,
                        kind: EventKind::Deliver {
                            src: addr,
                            dst,
                            msg,
                        },
                    });
                }
                Output::Timer { delay, token } => {
                    self.seq += 1;
                    self.queue.push(Event {
                        at: self.time + delay,
                        seq: self.seq,
                        kind: EventKind::Timer { node: addr, token },
                    });
                }
                Output::Upcall(u) => {
                    self.upcalls.push((self.time, addr, u));
                }
            }
        }
        self.scratch = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformTopology;

    /// Test protocol: counts pings, echoes pongs, supports timers.
    struct PingPong {
        pings_seen: u32,
        timer_tokens: Vec<u64>,
    }

    impl PingPong {
        fn new() -> Self {
            PingPong {
                pings_seen: 0,
                timer_tokens: Vec::new(),
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = Msg;
        type Upcall = &'static str;

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, &'static str>, from: Addr, msg: Msg) {
            match msg {
                Msg::Ping => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => ctx.emit("pong"),
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, &'static str>, token: u64) {
            self.timer_tokens.push(token);
            ctx.emit("timer");
        }
    }

    fn sim2() -> Simulator<PingPong> {
        let topo = UniformTopology::new(4, SimDuration::from_millis(5));
        let mut sim = Simulator::new(Box::new(topo), 1);
        sim.add_node(Addr(0), PingPong::new());
        sim.add_node(Addr(1), PingPong::new());
        sim
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        let ups = sim.drain_upcalls();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].1, Addr(0));
        // Two 5 ms hops.
        assert_eq!(ups[0].0, SimTime(10_000));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(20), 2);
        });
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1, 2, 3]);
    }

    #[test]
    fn messages_to_dead_nodes_dropped() {
        let mut sim = sim2();
        sim.fail_node(Addr(1));
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 0);
    }

    #[test]
    fn failed_node_keeps_state_and_recovers() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
        sim.fail_node(Addr(1));
        assert!(!sim.is_up(Addr(1)));
        sim.recover_node(Addr(1));
        assert!(sim.is_up(Addr(1)));
        // Disk state survived the failure.
        assert_eq!(sim.node(Addr(1)).unwrap().pings_seen, 1);
    }

    #[test]
    fn timers_suppressed_while_down() {
        let mut sim = sim2();
        sim.invoke(Addr(1), |_p, ctx| ctx.set_timer(SimDuration::from_millis(1), 9));
        sim.fail_node(Addr(1));
        sim.run_until_idle();
        assert!(sim.node(Addr(1)).unwrap().timer_tokens.is_empty());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = sim2();
        sim.invoke(Addr(0), |_p, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(50), 2);
        });
        sim.run_until(SimTime(20_000));
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1]);
        assert_eq!(sim.now(), SimTime(20_000));
        sim.run_until_idle();
        assert_eq!(sim.node(Addr(0)).unwrap().timer_tokens, vec![1, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let topo = UniformTopology::new(4, SimDuration::from_millis(5));
            let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), seed);
            sim.add_node(Addr(0), PingPong::new());
            sim.add_node(Addr(1), PingPong::new());
            sim.set_loss_probability(0.5);
            for _ in 0..32 {
                sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
            }
            sim.run_until_idle();
            sim.node(Addr(1)).unwrap().pings_seen
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn loss_probability_drops_messages() {
        let topo = UniformTopology::new(2, SimDuration::from_millis(1));
        let mut sim: Simulator<PingPong> = Simulator::new(Box::new(topo), 11);
        sim.add_node(Addr(0), PingPong::new());
        sim.add_node(Addr(1), PingPong::new());
        sim.set_loss_probability(1.0);
        sim.invoke(Addr(0), |_p, ctx| ctx.send(Addr(1), Msg::Ping));
        sim.run_until_idle();
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    #[should_panic]
    fn double_occupancy_panics() {
        let mut sim = sim2();
        sim.add_node(Addr(0), PingPong::new());
    }

    #[test]
    fn remove_node_returns_state() {
        let mut sim = sim2();
        let state = sim.remove_node(Addr(0)).unwrap();
        assert_eq!(state.pings_seen, 0);
        assert!(!sim.is_up(Addr(0)));
        assert!(sim.remove_node(Addr(0)).is_none());
    }

    #[test]
    fn live_addrs_lists_up_nodes() {
        let mut sim = sim2();
        sim.fail_node(Addr(0));
        let live: Vec<Addr> = sim.live_addrs().collect();
        assert_eq!(live, vec![Addr(1)]);
    }
}
