//! Arithmetic in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
//! implemented with log/antilog tables built at construction time.

/// The field GF(256).
///
/// # Examples
///
/// ```
/// use past_erasure::Gf256;
///
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// assert_eq!(gf.mul(a, b), 0xc1);
/// assert_eq!(gf.mul(gf.inv(a), a), 1);
/// ```
#[derive(Clone)]
pub struct Gf256 {
    log: [u8; 256],
    exp: [u8; 512],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Builds the log/antilog tables using generator 3 (a primitive
    /// element for 0x11b).
    pub fn new() -> Self {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255u16 {
            exp[i as usize] = x as u8;
            log[x as usize] = i as u8;
            // Multiply x by the generator 3 = x + 1: x*3 = (x<<1) ^ x.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { log, exp }
    }

    /// Addition (and subtraction): XOR.
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero (which has no inverse).
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// Division a/b.
    ///
    /// # Panics
    ///
    /// Panics when `b` is zero.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[255 + self.log[a as usize] as usize - self.log[b as usize] as usize]
        }
    }

    /// a^n for non-negative n.
    pub fn pow(&self, a: u8, n: u32) -> u8 {
        if n == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let e = (self.log[a as usize] as u32 * n) % 255;
        self.exp[e as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_product() {
        // The classic AES example: 0x57 * 0x83 = 0xc1.
        let gf = Gf256::new();
        assert_eq!(gf.mul(0x57, 0x83), 0xc1);
    }

    #[test]
    fn identities() {
        let gf = Gf256::new();
        for a in 0..=255u8 {
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
            assert_eq!(gf.add(a, a), 0);
            if a != 0 {
                assert_eq!(gf.mul(a, gf.inv(a)), 1);
                assert_eq!(gf.div(a, a), 1);
            }
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        let gf = Gf256::new();
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        let gf = Gf256::new();
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(23) {
                    assert_eq!(
                        gf.mul(a, gf.add(b, c)),
                        gf.add(gf.mul(a, b), gf.mul(a, c))
                    );
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf256::new();
        for a in [2u8, 3, 29, 200] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(gf.pow(a, n), acc, "a={a} n={n}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    #[should_panic]
    fn zero_inverse_panics() {
        Gf256::new().inv(0);
    }
}
