//! Dense matrices over GF(256) with Gaussian elimination.

use crate::gf256::Gf256;

/// A row-major matrix over GF(256).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds a Vandermonde matrix whose row `r` is
    /// [1, e_r, e_r², …] for the element e_r = r (as a field element).
    /// Any square submatrix formed from distinct rows is invertible.
    pub fn vandermonde(rows: usize, cols: usize, gf: &Gf256) -> Self {
        assert!(rows <= 256, "at most 256 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf.pow(r as u8, c as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix, gf: &Gf256) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = 0u8;
                for k in 0..self.cols {
                    acc ^= gf.mul(self.get(r, k), rhs.get(k, c));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Builds a matrix from selected rows of `self`.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss–Jordan elimination. Returns
    /// `None` if singular.
    pub fn inverted(&self, gf: &Gf256) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let p_inv = gf.inv(p);
            for c in 0..n {
                a.set(col, c, gf.mul(a.get(col, c), p_inv));
                inv.set(col, c, gf.mul(inv.get(col, c), p_inv));
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f == 0 {
                    continue;
                }
                for c in 0..n {
                    let av = gf.mul(f, a.get(col, c));
                    a.set(r, c, a.get(r, c) ^ av);
                    let iv = gf.mul(f, inv.get(col, c));
                    inv.set(r, c, inv.get(r, c) ^ iv);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let gf = Gf256::new();
        let v = Matrix::vandermonde(4, 4, &gf);
        let i = Matrix::identity(4);
        assert_eq!(v.mul(&i, &gf), v);
        assert_eq!(i.mul(&v, &gf), v);
    }

    #[test]
    fn vandermonde_square_inverts() {
        let gf = Gf256::new();
        for n in [1usize, 2, 3, 5, 8] {
            let v = Matrix::vandermonde(n, n, &gf);
            let inv = v.inverted(&gf).expect("Vandermonde is invertible");
            assert_eq!(v.mul(&inv, &gf), Matrix::identity(n), "n = {n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let gf = Gf256::new();
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 1);
        m.set(0, 1, 2);
        m.set(1, 0, 1);
        m.set(1, 1, 2);
        assert!(m.inverted(&gf).is_none());
    }

    #[test]
    fn select_rows_picks_rows() {
        let gf = Gf256::new();
        let v = Matrix::vandermonde(5, 3, &gf);
        let s = v.select_rows(&[4, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(1));
    }
}
