//! Reed–Solomon erasure coding over GF(256) — the storage-efficiency
//! extension PAST's §3.6 proposes as future work.
//!
//! Storing k complete copies of a file costs k× the file size; a
//! systematic Reed–Solomon code with n data and m checksum shards
//! tolerates the same m losses at only (n+m)/n× ([`ReedSolomon`]).
//! The implementation is built from scratch: [`Gf256`] table-driven
//! field arithmetic and Gauss–Jordan matrix inversion over the field.

mod gf256;
mod matrix;
mod rs;

pub use gf256::Gf256;
pub use matrix::Matrix;
pub use rs::{ReedSolomon, RsError};
