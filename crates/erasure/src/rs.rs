//! Systematic Reed–Solomon erasure coding.
//!
//! PAST §3.6: "With Reed-Solomon encoding, adding m additional checksum
//! blocks to n original data blocks (all of equal size) allows recovery
//! from up to m losses of data or checksum blocks. This reduces the
//! storage overhead required to tolerate m failures from m to (m+n)/n
//! times the file size." The paper leaves exploring this to future work;
//! this module implements it so the tradeoff can be measured.
//!
//! The code is systematic: the first `n` shards are the data itself, and
//! `m` parity shards are derived through an encoding matrix built from a
//! Vandermonde matrix normalized so its top n×n block is the identity.
//! Any `n` surviving shards reconstruct the original data.

use crate::gf256::Gf256;
use crate::matrix::Matrix;

/// Errors from erasure coding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RsError {
    /// Fewer than `n` shards survive: the data is unrecoverable.
    NotEnoughShards {
        /// Shards present.
        have: usize,
        /// Shards needed.
        need: usize,
    },
    /// Shards have inconsistent lengths.
    ShardSizeMismatch,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::NotEnoughShards { have, need } => {
                write!(f, "only {have} shards survive, {need} needed")
            }
            RsError::ShardSizeMismatch => write!(f, "shard sizes differ"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon code with `data` data shards and `parity`
/// checksum shards.
///
/// # Examples
///
/// ```
/// use past_erasure::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2);
/// let shards = rs.encode_bytes(b"hello erasure coded world!");
/// let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
/// received[0] = None; // lose a data shard
/// received[5] = None; // and a parity shard
/// let recovered = rs.decode_bytes(&mut received, 26).unwrap();
/// assert_eq!(recovered, b"hello erasure coded world!");
/// ```
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    gf: Gf256,
    /// (data+parity) × data encoding matrix; top block is the identity.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a code.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= data`, `0 <= parity` and
    /// `data + parity <= 256`.
    pub fn new(data: usize, parity: usize) -> Self {
        assert!(data >= 1, "need at least one data shard");
        assert!(data + parity <= 256, "GF(256) supports at most 256 shards");
        let gf = Gf256::new();
        let vand = Matrix::vandermonde(data + parity, data, &gf);
        let top = vand.select_rows(&(0..data).collect::<Vec<_>>());
        let top_inv = top
            .inverted(&gf)
            .expect("Vandermonde top block is invertible");
        let encode_matrix = vand.mul(&top_inv, &gf);
        ReedSolomon {
            data,
            parity,
            gf,
            encode_matrix,
        }
    }

    /// Number of data shards n.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards m.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total shards n + m.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    /// The §3.6 storage overhead of this code relative to the file size:
    /// (m + n) / n (compare with k-way replication's factor k).
    pub fn storage_overhead(&self) -> f64 {
        (self.data + self.parity) as f64 / self.data as f64
    }

    /// Encodes equal-length data shards, returning all n+m shards
    /// (the first n are the input).
    ///
    /// # Panics
    ///
    /// Panics if the number or lengths of the inputs are inconsistent.
    pub fn encode(&self, data_shards: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data_shards.len(), self.data, "wrong number of data shards");
        let len = data_shards.first().map(|s| s.len()).unwrap_or(0);
        assert!(
            data_shards.iter().all(|s| s.len() == len),
            "data shards must have equal length"
        );
        let mut out: Vec<Vec<u8>> = data_shards.to_vec();
        for p in 0..self.parity {
            let row = self.encode_matrix.row(self.data + p).to_vec();
            let mut shard = vec![0u8; len];
            for (d, input) in data_shards.iter().enumerate() {
                let coef = row[d];
                if coef == 0 {
                    continue;
                }
                for (o, &b) in shard.iter_mut().zip(input.iter()) {
                    *o ^= self.gf.mul(coef, b);
                }
            }
            out.push(shard);
        }
        out
    }

    /// Reconstructs all missing shards in place. `shards[i]` is the
    /// shard with index `i` (`None` when lost).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        assert_eq!(shards.len(), self.total_shards(), "wrong shard count");
        let present: Vec<usize> = (0..shards.len())
            .filter(|&i| shards[i].is_some())
            .collect();
        if present.len() < self.data {
            return Err(RsError::NotEnoughShards {
                have: present.len(),
                need: self.data,
            });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != len)
        {
            return Err(RsError::ShardSizeMismatch);
        }
        if present.iter().take(self.data).copied().eq(0..self.data) {
            // All data shards survive: just re-encode parity if missing.
            let data: Vec<Vec<u8>> = (0..self.data)
                .map(|i| shards[i].clone().expect("present"))
                .collect();
            let all = self.encode(&data);
            for (i, shard) in all.into_iter().enumerate() {
                if shards[i].is_none() {
                    shards[i] = Some(shard);
                }
            }
            return Ok(());
        }
        // Solve for the data from any n surviving shards.
        let rows: Vec<usize> = present.iter().take(self.data).copied().collect();
        let sub = self.encode_matrix.select_rows(&rows);
        let decode = sub
            .inverted(&self.gf)
            .expect("any n rows of the encoding matrix are invertible");
        let mut data: Vec<Vec<u8>> = vec![vec![0u8; len]; self.data];
        for (d, out) in data.iter_mut().enumerate() {
            for (j, &r) in rows.iter().enumerate() {
                let coef = decode.get(d, j);
                if coef == 0 {
                    continue;
                }
                let src = shards[r].as_ref().expect("present");
                for (o, &b) in out.iter_mut().zip(src.iter()) {
                    *o ^= self.gf.mul(coef, b);
                }
            }
        }
        // Fill all gaps from the recovered data.
        let all = self.encode(&data);
        for (i, shard) in all.into_iter().enumerate() {
            if shards[i].is_none() {
                shards[i] = Some(shard);
            }
        }
        Ok(())
    }

    /// Convenience: splits a byte string into n padded data shards and
    /// encodes.
    pub fn encode_bytes(&self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = bytes.len().div_ceil(self.data).max(1);
        let mut data = Vec::with_capacity(self.data);
        for i in 0..self.data {
            let start = (i * shard_len).min(bytes.len());
            let end = ((i + 1) * shard_len).min(bytes.len());
            let mut shard = bytes[start..end].to_vec();
            shard.resize(shard_len, 0);
            data.push(shard);
        }
        self.encode(&data)
    }

    /// Convenience: reconstructs and reassembles `original_len` bytes.
    pub fn decode_bytes(
        &self,
        shards: &mut [Option<Vec<u8>>],
        original_len: usize,
    ) -> Result<Vec<u8>, RsError> {
        self.reconstruct(shards)?;
        let mut out = Vec::with_capacity(original_len);
        for shard in shards.iter().take(self.data) {
            out.extend_from_slice(shard.as_ref().expect("reconstructed"));
        }
        out.truncate(original_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_no_losses() {
        let rs = ReedSolomon::new(4, 2);
        let shards = rs.encode_bytes(b"0123456789abcdef");
        assert_eq!(shards.len(), 6);
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let out = rs.decode_bytes(&mut opt, 16).unwrap();
        assert_eq!(out, b"0123456789abcdef");
    }

    #[test]
    fn recovers_from_m_losses_any_positions() {
        let rs = ReedSolomon::new(4, 2);
        let original = b"the quick brown fox jumps over the lazy dog";
        for a in 0..6 {
            for b in (a + 1)..6 {
                let shards = rs.encode_bytes(original);
                let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
                opt[a] = None;
                opt[b] = None;
                let out = rs.decode_bytes(&mut opt, original.len()).unwrap();
                assert_eq!(out, original, "losses at {a},{b}");
                // Reconstruction also restored the lost shards.
                assert!(opt.iter().all(|s| s.is_some()));
            }
        }
    }

    #[test]
    fn fails_beyond_m_losses() {
        let rs = ReedSolomon::new(4, 2);
        let shards = rs.encode_bytes(b"some data");
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[0] = None;
        opt[1] = None;
        opt[2] = None;
        assert_eq!(
            rs.reconstruct(&mut opt),
            Err(RsError::NotEnoughShards { have: 3, need: 4 })
        );
    }

    #[test]
    fn storage_overhead_beats_replication() {
        // §3.6's point: tolerating m = 4 losses costs 5× with
        // replication (k = 5) but only (4+8)/8 = 1.5× with RS(8, 4).
        let rs = ReedSolomon::new(8, 4);
        assert!((rs.storage_overhead() - 1.5).abs() < 1e-12);
        assert!(rs.storage_overhead() < 5.0);
    }

    #[test]
    fn parity_only_reconstruction() {
        // Lose ALL data shards; recover from parity alone (m >= n).
        let rs = ReedSolomon::new(2, 3);
        let shards = rs.encode_bytes(b"tiny");
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[0] = None;
        opt[1] = None;
        let out = rs.decode_bytes(&mut opt, 4).unwrap();
        assert_eq!(out, b"tiny");
    }

    #[test]
    fn single_data_shard_code() {
        // n = 1, m = 2 degenerates to 3-way replication of one shard.
        let rs = ReedSolomon::new(1, 2);
        let shards = rs.encode_bytes(b"solo");
        assert_eq!(shards.len(), 3);
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[0] = None;
        opt[2] = None;
        assert_eq!(rs.decode_bytes(&mut opt, 4).unwrap(), b"solo");
    }

    #[test]
    fn empty_input() {
        let rs = ReedSolomon::new(3, 2);
        let shards = rs.encode_bytes(b"");
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[1] = None;
        assert_eq!(rs.decode_bytes(&mut opt, 0).unwrap(), b"");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_with_random_losses(
            data in prop::collection::vec(any::<u8>(), 0..512),
            n in 1usize..8,
            m in 0usize..5,
            loss_seed: u64,
        ) {
            let rs = ReedSolomon::new(n, m);
            let shards = rs.encode_bytes(&data);
            let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            // Drop up to m shards pseudo-randomly.
            let mut state = loss_seed;
            let mut dropped = 0;
            while dropped < m {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (state >> 33) as usize % (n + m);
                if opt[idx].is_some() {
                    opt[idx] = None;
                    dropped += 1;
                }
            }
            let out = rs.decode_bytes(&mut opt, data.len()).unwrap();
            prop_assert_eq!(out, data);
        }

        #[test]
        fn prop_parity_shards_detect_any_single_corruption(
            data in prop::collection::vec(any::<u8>(), 16..64),
        ) {
            // Not a decoding feature, but parity must change when data
            // changes: encode two different inputs, parity must differ.
            let rs = ReedSolomon::new(4, 2);
            let a = rs.encode_bytes(&data);
            let mut data2 = data.clone();
            data2[0] ^= 0xff;
            let b = rs.encode_bytes(&data2);
            prop_assert_ne!(&a[4], &b[4]);
        }
    }
}
