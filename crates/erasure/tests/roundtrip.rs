//! Property tests for the Reed-Solomon codec: any k-of-n encode
//! followed by losing up to `n - k` shards must decode byte-exactly,
//! and the GF(256) table arithmetic must satisfy the field axioms.

use past_erasure::{Gf256, ReedSolomon};
use proptest::prelude::*;

proptest! {
    /// Encode, drop up to `parity` shards at arbitrary positions,
    /// reconstruct, and compare against the original payload.
    #[test]
    fn prop_roundtrip_survives_parity_losses(
        data_shards in 1usize..=10,
        parity_shards in 1usize..=6,
        payload in prop::collection::vec(any::<u8>(), 0..600),
        drop_picks in prop::collection::vec(any::<usize>(), 0..6),
    ) {
        let rs = ReedSolomon::new(data_shards, parity_shards);
        let total = data_shards + parity_shards;
        let shards = rs.encode_bytes(&payload);
        prop_assert_eq!(shards.len(), total);

        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut dropped = Vec::new();
        for pick in drop_picks {
            if dropped.len() == parity_shards {
                break;
            }
            let idx = pick % total;
            if opt[idx].is_some() {
                opt[idx] = None;
                dropped.push(idx);
            }
        }

        let out = rs.decode_bytes(&mut opt, payload.len());
        prop_assert_eq!(out.unwrap(), payload);
        // Reconstruction also refills the dropped shards in place.
        for idx in dropped {
            prop_assert!(opt[idx].is_some());
        }
    }

    /// One loss beyond the parity budget must be rejected, not
    /// silently mis-decoded.
    #[test]
    fn prop_too_many_losses_fail(
        data_shards in 1usize..=8,
        parity_shards in 1usize..=4,
        payload in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let rs = ReedSolomon::new(data_shards, parity_shards);
        let mut opt: Vec<Option<Vec<u8>>> =
            rs.encode_bytes(&payload).into_iter().map(Some).collect();
        for slot in opt.iter_mut().take(parity_shards + 1) {
            *slot = None;
        }
        prop_assert!(rs.decode_bytes(&mut opt, payload.len()).is_err());
    }

    /// GF(256) field axioms over the table-driven arithmetic.
    #[test]
    fn prop_gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let gf = Gf256::new();
        // Addition is xor: commutative, associative, self-inverse.
        prop_assert_eq!(gf.add(a, b), gf.add(b, a));
        prop_assert_eq!(gf.add(gf.add(a, b), c), gf.add(a, gf.add(b, c)));
        prop_assert_eq!(gf.add(a, a), 0);
        // Multiplication: commutative, associative, with identity 1.
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        prop_assert_eq!(gf.mul(a, 1), a);
        prop_assert_eq!(gf.mul(a, 0), 0);
        // Distributivity ties the two operations together.
        prop_assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
        // Multiplicative inverses for every non-zero element.
        if a != 0 {
            prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
            prop_assert_eq!(gf.div(gf.mul(b, a), a), b);
        }
        // pow agrees with repeated multiplication.
        prop_assert_eq!(gf.pow(a, 3), gf.mul(gf.mul(a, a), a));
    }
}
