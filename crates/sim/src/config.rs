//! Experiment configuration.

use past_core::PastConfig;
use past_net::SimDuration;
use past_pastry::PastryConfig;
use past_store::{CachePolicyKind, StorePolicy};
use past_workload::CapacityDistribution;

/// Which topology the overlay runs on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyKind {
    /// Uniform random placement in the unit square.
    Euclidean,
    /// Geographic clusters (the §5.2 caching experiment: 8 NLANR sites).
    Clustered {
        /// Number of clusters.
        clusters: u32,
    },
}

/// Full configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of PAST nodes (the paper fixes 2250).
    pub nodes: usize,
    /// Replication factor k (paper: 5).
    pub k: u32,
    /// Pastry digit width b (paper: 4).
    pub b: u32,
    /// Leaf set size l (paper: 16 or 32).
    pub leaf_set_size: usize,
    /// Primary-replica acceptance threshold t_pri.
    pub t_pri: f64,
    /// Diverted-replica acceptance threshold t_div.
    pub t_div: f64,
    /// Cache replacement policy.
    pub cache_policy: CachePolicyKind,
    /// Cache admission fraction c (paper: 1).
    pub cache_fraction: f64,
    /// Maximum re-salting retries (paper: 3; the no-diversion baseline
    /// uses 0).
    pub max_file_diversions: u32,
    /// Node capacity distribution (Table 1 shape).
    pub capacity: CapacityDistribution,
    /// Ratio of (total trace bytes × k) to total node capacity. The
    /// capacity distribution is scaled so the trace sweeps utilization
    /// up to ~`overcommit` × 100%. The paper's d1 + NLANR combination
    /// works out to ≈ 1.5; we default to that.
    pub overcommit: f64,
    /// Whether to replay repeated references as lookups (caching
    /// experiments) or only first appearances as inserts (storage
    /// experiments).
    pub replay_lookups: bool,
    /// Topology.
    pub topology: TopologyKind,
    /// Master seed.
    pub seed: u64,
    /// Simulation shards: 0 runs the single-threaded legacy engine,
    /// `n ≥ 1` runs the sharded engine with `n` shards (same seed ⇒
    /// same execution at any shard count; see `past_net::ShardedSim`).
    pub shards: usize,
    /// Warm restarts: crashed nodes snapshot their state and recover
    /// from it (validated, probe-bounded) instead of rejoining cold,
    /// and replica maintenance switches to advertise-then-fetch. Off by
    /// default — legacy runs stay byte-identical.
    pub warm_restart: bool,
    /// Peer-reliability tracking: score peers on acks/timeouts and
    /// weight diversion-target choice by free space × reliability. Off
    /// by default.
    pub track_reliability: bool,
    /// Width of the windowed time-series buckets ([`PastConfig::obs_window`]):
    /// when nonzero (and metrics recording is on), lookup completions,
    /// cache hits, hop counts and per-node served load are additionally
    /// bucketed by fixed sim-time windows, and the runner extracts them
    /// into [`crate::ExperimentResult::windows`]. Zero — the default —
    /// disables the windows and keeps metrics reports byte-identical to
    /// earlier revisions.
    pub obs_window: SimDuration,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            nodes: 2250,
            k: 5,
            b: 4,
            leaf_set_size: 32,
            t_pri: 0.1,
            t_div: 0.05,
            cache_policy: CachePolicyKind::None,
            cache_fraction: 1.0,
            max_file_diversions: 3,
            capacity: CapacityDistribution::d1(),
            overcommit: 1.5,
            replay_lookups: false,
            topology: TopologyKind::Euclidean,
            seed: 2001,
            shards: 0,
            warm_restart: false,
            track_reliability: false,
            obs_window: SimDuration::ZERO,
        }
    }
}

impl ExperimentConfig {
    /// The §5.1 baseline: no replica diversion (t_pri = 1 accepts
    /// anything that fits), no diverted replicas (t_div = 0), no
    /// re-salting.
    pub fn no_diversion(mut self) -> Self {
        self.t_pri = 1.0;
        self.t_div = 0.0;
        self.max_file_diversions = 0;
        self
    }

    /// Derives the per-node PAST configuration.
    pub fn past_config(&self) -> PastConfig {
        PastConfig {
            k: self.k,
            policy: StorePolicy {
                t_pri: self.t_pri,
                t_div: self.t_div,
                cache_fraction: self.cache_fraction,
            },
            cache_policy: self.cache_policy,
            max_file_diversions: self.max_file_diversions,
            verify_certificates: false,
            verify_memo_capacity: 1024,
            client_timeout: SimDuration::ZERO,
            migration_period: SimDuration::ZERO,
            migration_batch: 4,
            maint_ack_timeout: SimDuration::from_secs(2),
            maint_retry_budget: 5,
            anti_entropy_period: SimDuration::ZERO,
            anti_entropy_batch: 8,
            warm_restart: self.warm_restart,
            // Byzantine defenses stay off in the paper-replay setup.
            audit_period: SimDuration::ZERO,
            audit_batch: 4,
            audit_fanout: 1,
            audit_timeout: SimDuration::from_secs(2),
            verify_lookup_content: false,
            obs_window: self.obs_window,
        }
    }

    /// Derives the Pastry configuration (keep-alives off: the trace
    /// replay runs on a static overlay, exactly like the paper's
    /// experiments).
    pub fn pastry_config(&self) -> PastryConfig {
        PastryConfig {
            b: self.b,
            leaf_set_size: self.leaf_set_size,
            neighborhood_size: self.leaf_set_size,
            keep_alive_period: SimDuration::ZERO,
            failure_timeout: SimDuration::from_secs(90),
            randomized_routing: false,
            best_hop_bias: 0.9,
            per_hop_acks: false,
            forward_ack_timeout: past_net::SimDuration::from_millis(500),
            warm_restart: self.warm_restart,
            track_reliability: self.track_reliability,
            // Score half-life and probe fanout keep the library defaults.
            ..PastryConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = ExperimentConfig::default();
        assert_eq!(c.nodes, 2250);
        assert_eq!(c.k, 5);
        assert_eq!(c.b, 4);
        assert_eq!(c.leaf_set_size, 32);
        assert!((c.t_pri - 0.1).abs() < 1e-12);
    }

    #[test]
    fn no_diversion_baseline() {
        let c = ExperimentConfig::default().no_diversion();
        assert_eq!(c.t_pri, 1.0);
        assert_eq!(c.t_div, 0.0);
        assert_eq!(c.max_file_diversions, 0);
        let pc = c.past_config();
        assert_eq!(pc.max_file_diversions, 0);
    }
}
