//! Metrics report emission: `results/metrics_<label>.json`.

use std::io::Write;
use std::path::PathBuf;

/// Writes a metrics report document under `results/` (or
/// `$PAST_OUT_DIR` when set, so scratch runs don't overwrite tracked
/// artifacts), creating the directory if needed. The label is
/// sanitized to a filename-safe subset. Returns the path written.
pub fn write_metrics_file(label: &str, json: &str) -> std::io::Result<PathBuf> {
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = std::env::var_os("PAST_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("metrics_{safe}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_label() {
        let path = write_metrics_file("unit/../test label", "{}").unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "metrics_unit_.._test_label.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{}\n");
        let _ = std::fs::remove_file(path);
    }
}
