//! The experiment runner: builds a PAST overlay and replays a workload
//! trace against it, collecting the paper's metrics.

use past_core::{PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::{FileId, IdHashMap};
use past_net::{Addr, ClusteredTopology, EuclideanTopology, SimTime, Simulator, Topology};

use crate::engine::Engine;
use past_pastry::{NodeEntry, PastryNode};
use past_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{ExperimentConfig, TopologyKind};
use crate::metrics::{
    is_cache_hit, ExperimentResult, InsertRecord, LookupRecord, NodeWindowStat, ReplicaSample,
    WindowSeries,
};

/// A built overlay plus replay state.
pub struct Runner {
    cfg: ExperimentConfig,
    sim: Engine,
    entries: Vec<NodeEntry>,
    total_capacity: u64,
    stored_bytes: u64,
    replicas_now: u64,
    diverted_now: u64,
    /// fileId assigned to each successfully inserted trace file.
    /// Populated only when `cfg.replay_lookups` is set — insert-only
    /// replays (the XL/XL2 rows) never read it, and at 10M files the
    /// map alone would cost hundreds of MB.
    file_ids: IdHashMap<u32, FileId>,
    /// Keep 1-in-N per-event records (`inserts`, `lookups`,
    /// `replica_samples`); 1 = keep everything (the default).
    record_every: usize,
    /// Insert/lookup completions seen, for the sampling phase.
    inserts_seen: u64,
    lookups_seen: u64,
    /// Reused upcall drain buffer (one allocation for the whole replay
    /// instead of one per trace operation).
    upcall_buf: Vec<(SimTime, Addr, PastEvent)>,
    result: ExperimentResult,
    /// Progress callback (trace ops completed, total).
    progress: Option<Box<dyn FnMut(usize, usize)>>,
    /// Metrics recording (label, snapshot interval in trace ops).
    metrics: Option<(String, usize)>,
    /// Whether the metrics report is also written to
    /// `results/metrics_<label>.json` (true for [`Self::with_metrics`];
    /// [`Self::with_metrics_quiet`] keeps it in-memory only, so sweeps
    /// over dozens of configurations don't litter the results dir).
    metrics_write: bool,
}

impl Runner {
    /// Builds the overlay for `cfg`, scaling node capacities so that the
    /// trace's total replica bytes overcommit the system by
    /// `cfg.overcommit`. Accepts any [`Workload`] — a materialized
    /// [`past_workload::Trace`] or a lazy [`past_workload::StreamTrace`].
    pub fn build<W: Workload + ?Sized>(cfg: ExperimentConfig, trace: &W) -> Self {
        let mut seeder = StdRng::seed_from_u64(cfg.seed);
        // Scale capacities to the trace (preserving the Table 1 shape).
        let trace_replica_bytes = trace.total_bytes() as f64 * cfg.k as f64;
        let target_total = trace_replica_bytes / cfg.overcommit;
        let scale = cfg.capacity.scale_for_total(cfg.nodes, target_total);
        let capacity_dist = cfg.capacity.scaled(scale);
        let capacities = capacity_dist.sample_nodes(cfg.nodes, &mut seeder);
        let total_capacity: u64 = capacities.iter().sum();

        let topo: Box<dyn Topology> = match cfg.topology {
            TopologyKind::Euclidean => Box::new(EuclideanTopology::random(cfg.nodes, &mut seeder)),
            TopologyKind::Clustered { clusters } => {
                Box::new(ClusteredTopology::round_robin(cfg.nodes, clusters))
            }
        };
        let mut sim = Engine::build(topo, cfg.seed ^ 0x517, cfg.shards);
        // One insert fans out to ~k replicate/receipt exchanges per hop;
        // sizing the queue to the overlay keeps the binary heap from
        // repeatedly doubling (and copying every in-flight message)
        // while the first operations warm it up.
        sim.reserve_capacity(cfg.nodes.saturating_mul(8).min(1 << 20), 256);
        let past_cfg = cfg.past_config();
        let pastry_cfg = cfg.pastry_config();
        let mut entries = Vec::with_capacity(cfg.nodes);
        for (i, &capacity) in capacities.iter().enumerate() {
            let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
            let id = past_crypto::derive_node_id(&keys.public());
            let addr = Addr(i as u32);
            let entry = NodeEntry::new(id, addr);
            let app = PastNode::new(past_cfg.clone(), keys, capacity, u64::MAX / 2);
            let bootstrap = if i == 0 {
                None
            } else {
                Some(Addr(seeder.gen_range(0..i) as u32))
            };
            sim.add_node(
                addr,
                PastryNode::new(pastry_cfg.clone(), entry, app, bootstrap),
            );
            sim.run_until_idle();
            entries.push(entry);
        }
        Runner {
            cfg,
            sim,
            entries,
            total_capacity,
            stored_bytes: 0,
            replicas_now: 0,
            diverted_now: 0,
            file_ids: IdHashMap::default(),
            record_every: 1,
            inserts_seen: 0,
            lookups_seen: 0,
            upcall_buf: Vec::with_capacity(64),
            result: ExperimentResult {
                total_capacity,
                ..Default::default()
            },
            progress: None,
            metrics: None,
            metrics_write: true,
        }
    }

    /// Thins the per-event record vectors (`inserts`, `lookups`,
    /// `replica_samples`) to 1-in-`every` entries. The exact aggregate
    /// counters ([`ExperimentResult::inserts_total`] and friends) are
    /// unaffected — only the utilization-curve resolution drops. The
    /// default (`every = 1`) records everything; XL-scale replays pass
    /// a larger stride so 10M completions do not materialize hundreds
    /// of MB of records.
    pub fn with_record_sampling(mut self, every: usize) -> Self {
        self.record_every = every.max(1);
        self
    }

    /// Installs a progress callback invoked every 1000 trace operations.
    pub fn with_progress(mut self, f: impl FnMut(usize, usize) + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Enables `past-obs` metrics recording over the replay: a registry
    /// snapshot is taken every `snapshot_every` trace operations (plus a
    /// final one), and the full report is written to
    /// `results/metrics_<label>.json` and returned in
    /// [`ExperimentResult::metrics_json`]. Recording starts at replay
    /// time, so overlay-construction traffic is excluded.
    pub fn with_metrics(mut self, label: &str, snapshot_every: usize) -> Self {
        self.metrics = Some((label.to_string(), snapshot_every.max(1)));
        self.metrics_write = true;
        self
    }

    /// Like [`Self::with_metrics`], but the report stays in
    /// [`ExperimentResult::metrics_json`] only — nothing is written to
    /// the results directory. Parameter sweeps that run the same
    /// experiment dozens of times use this to avoid one file per cell.
    pub fn with_metrics_quiet(mut self, label: &str, snapshot_every: usize) -> Self {
        self.metrics = Some((label.to_string(), snapshot_every.max(1)));
        self.metrics_write = false;
        self
    }

    /// Current global storage utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.stored_bytes as f64 / self.total_capacity as f64
    }

    /// Access to the built overlay (for tests and custom experiments).
    ///
    /// # Panics
    ///
    /// Panics under the sharded engine (`cfg.shards >= 1`); scenario
    /// surgery against raw simulator internals is a legacy-engine
    /// affordance. Use [`Runner::engine`] for engine-agnostic access.
    pub fn sim(&self) -> &Simulator<PastOverlayNode> {
        self.sim
            .as_single()
            .expect("Runner::sim() requires the single-threaded engine (cfg.shards == 0)")
    }

    /// Engine-agnostic access to the simulation backend.
    pub fn engine(&self) -> &Engine {
        &self.sim
    }

    /// The overlay's node identities.
    pub fn entries(&self) -> &[NodeEntry] {
        &self.entries
    }

    /// Maps a trace client to its access-point node, respecting cluster
    /// co-location for clustered topologies (requests from one NLANR
    /// site issue from PAST nodes in that site's cluster).
    fn node_of_client<W: Workload + ?Sized>(&self, client: u32, trace: &W) -> Addr {
        let n = self.cfg.nodes;
        let base = (client as usize * n) / trace.client_count().max(1) as usize;
        match self.cfg.topology {
            TopologyKind::Euclidean => Addr(base.min(n - 1) as u32),
            TopologyKind::Clustered { clusters } => {
                let want = trace.cluster_of_client(client);
                // Node i's cluster is i % clusters (round-robin layout).
                let aligned = base - (base % clusters as usize) + want as usize;
                Addr(aligned.min(n - 1) as u32)
            }
        }
    }

    /// Replays the trace: first references insert, repeated references
    /// look up (when `replay_lookups` is set). Returns the collected
    /// metrics.
    pub fn run<W: Workload + ?Sized>(mut self, trace: &W) -> ExperimentResult {
        let started = std::time::Instant::now();
        if self.metrics.is_some() {
            past_obs::install(past_obs::Recorder::new());
        }
        self.result.replay_start_us = self.sim.now().micros();
        let total_ops = trace.op_count();
        for (i, op) in trace.ops_iter().enumerate() {
            let addr = self.node_of_client(op.client, trace);
            if op.is_insert {
                self.do_insert(addr, op.file, &trace.file_name(op.file), trace.file_size(op.file));
            } else if self.cfg.replay_lookups {
                if let Some(fid) = self.file_ids.get(&op.file).copied() {
                    self.do_lookup(addr, fid);
                }
            }
            if let Some((_, every)) = &self.metrics {
                if (i + 1) % every == 0 {
                    self.snapshot_metrics();
                }
            }
            if i % 1000 == 0 {
                if let Some(cb) = self.progress.as_mut() {
                    cb(i, total_ops);
                }
            }
        }
        self.finish_metrics();
        self.result.stored_bytes = self.stored_bytes;
        self.result.wall_seconds = started.elapsed().as_secs_f64();
        self.result.net = self.sim.stats();
        self.result
    }

    /// Final metrics snapshot + report extraction, shared by both replay
    /// modes: uninstalls the recorder, renders the JSON report (written
    /// to the results dir unless the quiet variant was used) and pulls
    /// the windowed time series out of the registry when
    /// [`ExperimentConfig::obs_window`] is nonzero.
    fn finish_metrics(&mut self) {
        if let Some((label, _)) = self.metrics.take() {
            self.snapshot_metrics();
            if let Some(rec) = past_obs::uninstall() {
                let json = rec.report_json(&label, self.cfg.seed);
                if self.metrics_write {
                    let _ = crate::report::write_metrics_file(&label, &json);
                }
                self.result.metrics_json = Some(json);
                self.result.windows = self.extract_windows(&rec);
            }
        }
    }

    /// Builds the [`WindowSeries`] from the final (shard-merged)
    /// registry state. Per-node series are collapsed to per-bucket
    /// total / distinct-node / max — the load-spread statistics the
    /// flash-crowd study charts.
    fn extract_windows(&self, rec: &past_obs::Recorder) -> Option<WindowSeries> {
        let width_us = self.cfg.obs_window.micros();
        if width_us == 0 {
            return None;
        }
        let m = rec.metrics();
        let mut series = WindowSeries {
            width_us,
            ..Default::default()
        };
        for (name, buckets) in m.windows() {
            series.counters.insert(name.clone(), buckets.clone());
        }
        for (name, cells) in m.node_windows() {
            let mut per: std::collections::BTreeMap<u64, NodeWindowStat> =
                std::collections::BTreeMap::new();
            for (&(bucket, _node), &count) in cells {
                let s = per.entry(bucket).or_default();
                s.total += count;
                s.nodes += 1;
                s.max = s.max.max(count);
            }
            series.node_stats.insert(name.clone(), per);
        }
        Some(series)
    }

    /// Records harness-level gauges and appends a registry snapshot
    /// stamped with the current sim time.
    fn snapshot_metrics(&mut self) {
        self.sim.sync_obs();
        past_obs::gauge("net.queue_len", self.sim.queue_len() as i64);
        past_obs::gauge("sim.stored_bytes", self.stored_bytes as i64);
        past_obs::gauge("sim.replicas_now", self.replicas_now as i64);
        let at = self.sim.now().micros();
        past_obs::with_recorder(|r| r.take_snapshot(at));
    }

    /// Replays the trace **open-loop**: operation `i` is injected at
    /// simulated time `start + i × gap` without waiting for earlier
    /// operations to finish, so many inserts are in flight at once.
    /// This is the throughput mode the sharded engine is built for —
    /// per-op replay (`run`) drains the network between operations,
    /// which leaves too few concurrent events to spread across shards.
    ///
    /// Completed operations are attributed to their trace entry by the
    /// `(client node, client-local seq)` pair that `PastNode` stamps on
    /// every `InsertDone`/`LookupDone` upcall. Lookups of files whose
    /// insert has not yet completed are skipped (the per-op replay
    /// cannot hit that case; an open-loop replay can).
    pub fn run_pipelined<W: Workload + ?Sized>(
        mut self,
        trace: &W,
        gap: past_net::SimDuration,
    ) -> ExperimentResult {
        let started = std::time::Instant::now();
        if self.metrics.is_some() {
            past_obs::install(past_obs::Recorder::new());
        }
        self.result.replay_start_us = self.sim.now().micros();
        let total_ops = trace.op_count();
        let t0 = self.sim.now();
        // (client addr, client-local seq) → trace file index.
        let mut pending: std::collections::HashMap<(u32, u64), u32> =
            std::collections::HashMap::new();
        for (i, op) in trace.ops_iter().enumerate() {
            let at = t0 + past_net::SimDuration(gap.0.saturating_mul(i as u64));
            self.sim.run_until(at);
            self.collect_pipelined(&mut pending);
            let addr = self.node_of_client(op.client, trace);
            if op.is_insert {
                let name = trace.file_name(op.file);
                let size = trace.file_size(op.file);
                let mut seq = 0u64;
                self.sim.invoke(addr, |node, ctx| {
                    node.invoke_app(ctx, |app, actx| {
                        seq = app.insert(actx, &name, size);
                    });
                });
                pending.insert((addr.0, seq), op.file);
            } else if self.cfg.replay_lookups {
                if let Some(fid) = self.file_ids.get(&op.file).copied() {
                    self.sim.invoke(addr, move |node, ctx| {
                        node.invoke_app(ctx, |app, actx| {
                            app.lookup(actx, fid);
                        });
                    });
                }
            }
            if let Some((_, every)) = &self.metrics {
                if (i + 1) % every == 0 {
                    self.snapshot_metrics();
                }
            }
            if i % 1000 == 0 {
                if let Some(cb) = self.progress.as_mut() {
                    cb(i, total_ops);
                }
            }
        }
        self.sim.run_until_idle();
        self.collect_pipelined(&mut pending);
        self.finish_metrics();
        self.result.stored_bytes = self.stored_bytes;
        self.result.wall_seconds = started.elapsed().as_secs_f64();
        self.result.net = self.sim.stats();
        self.result
    }

    fn do_insert(&mut self, addr: Addr, file_index: u32, name: &str, size: u64) {
        let name = name.to_string();
        self.sim.invoke(addr, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, size);
            });
        });
        self.sim.run_until_idle();
        self.collect(Some(file_index));
    }

    fn do_lookup(&mut self, addr: Addr, fid: FileId) {
        self.sim.invoke(addr, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.lookup(actx, fid);
            });
        });
        self.sim.run_until_idle();
        self.collect(None);
    }

    fn collect(&mut self, file_index: Option<u32>) {
        let mut buf = std::mem::take(&mut self.upcall_buf);
        buf.clear();
        self.sim.drain_upcalls_into(&mut buf);
        for (_, _, event) in buf.drain(..) {
            self.absorb_event(event, file_index);
        }
        self.upcall_buf = buf;
    }

    /// Open-loop drain: attributes each `InsertDone` to its trace file
    /// via the issuing node's `(addr, seq)` recorded at injection time.
    fn collect_pipelined(&mut self, pending: &mut std::collections::HashMap<(u32, u64), u32>) {
        let mut buf = std::mem::take(&mut self.upcall_buf);
        buf.clear();
        self.sim.drain_upcalls_into(&mut buf);
        for (_, addr, event) in buf.drain(..) {
            let file_index = if let PastEvent::InsertDone { seq, .. } = &event {
                pending.remove(&(addr.0, *seq))
            } else {
                None
            };
            self.absorb_event(event, file_index);
        }
        self.upcall_buf = buf;
    }

    fn absorb_event(&mut self, event: PastEvent, file_index: Option<u32>) {
        match event {
            PastEvent::ReplicaStored { size, diverted, .. } => {
                self.stored_bytes += size;
                self.replicas_now += 1;
                self.result.replicas_stored += 1;
                if diverted {
                    self.diverted_now += 1;
                    self.result.replicas_diverted += 1;
                }
            }
            PastEvent::ReplicaDropped { size, diverted, .. } => {
                self.stored_bytes = self.stored_bytes.saturating_sub(size);
                self.replicas_now = self.replicas_now.saturating_sub(1);
                self.result.replicas_stored = self.result.replicas_stored.saturating_sub(1);
                if diverted {
                    self.diverted_now = self.diverted_now.saturating_sub(1);
                    self.result.replicas_diverted = self.result.replicas_diverted.saturating_sub(1);
                }
            }
            PastEvent::InsertDone {
                file_id,
                size,
                attempts,
                success,
                ..
            } => {
                if success {
                    self.result.inserts_ok += 1;
                    if let Some(idx) = file_index {
                        if self.cfg.replay_lookups {
                            self.file_ids.insert(idx, file_id);
                        }
                    }
                }
                self.result.inserts_total += 1;
                self.inserts_seen += 1;
                if (self.inserts_seen - 1).is_multiple_of(self.record_every as u64) {
                    let utilization = self.utilization();
                    self.result.inserts.push(InsertRecord {
                        utilization,
                        size,
                        attempts,
                        success,
                    });
                    self.result.replica_samples.push(ReplicaSample {
                        utilization,
                        replicas: self.replicas_now,
                        diverted: self.diverted_now,
                    });
                }
            }
            PastEvent::LookupDone {
                found, hops, kind, ..
            } => {
                self.result.lookups_total += 1;
                if found {
                    self.result.lookups_ok += 1;
                }
                self.lookups_seen += 1;
                if (self.lookups_seen - 1).is_multiple_of(self.record_every as u64) {
                    let utilization = self.utilization();
                    self.result.lookups.push(LookupRecord {
                        utilization,
                        found,
                        hops,
                        cache_hit: is_cache_hit(kind),
                    });
                }
            }
            PastEvent::ReclaimDone { .. }
            | PastEvent::InsertAttemptAborted { .. }
            | PastEvent::MaintSkipped { .. }
            | PastEvent::MaintExhausted { .. } => {}
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_experiment<W: Workload + ?Sized>(cfg: ExperimentConfig, trace: &W) -> ExperimentResult {
    Runner::build(cfg, trace).run(trace)
}
