//! Engine selection: one overlay, two simulation backends.
//!
//! [`Engine`] dispatches the harness-facing simulator API to either the
//! single-threaded legacy `past_net::Simulator` (the default,
//! `shards = 0` — bit-for-bit the behavior every golden test pins) or
//! the sharded multi-core `past_net::ShardedSim` (`shards ≥ 1`, whose
//! results are invariant across shard counts but keyed by a different
//! event order than the legacy engine).

use past_core::{PastEvent, PastOverlayNode};
use past_net::{Addr, FaultPlan, NetStats, ShardedSim, SimDuration, SimTime, Simulator, Topology};

/// A simulation backend driving the PAST overlay.
// One Engine exists per harness and it never moves after construction,
// so the size asymmetry between the variants costs nothing; boxing the
// large one would add an indirection to every dispatched call instead.
#[allow(clippy::large_enum_variant)]
pub enum Engine {
    /// The single-threaded event-queue engine.
    Single(Simulator<PastOverlayNode>),
    /// The sharded conservative-lookahead engine.
    Sharded(ShardedSim<PastOverlayNode>),
}

impl Engine {
    /// Builds the engine selected by `shards` (0 = legacy single).
    pub fn build(topology: Box<dyn Topology>, seed: u64, shards: usize) -> Self {
        if shards == 0 {
            Engine::Single(Simulator::new(topology, seed))
        } else {
            Engine::Sharded(ShardedSim::new(topology, seed, shards))
        }
    }

    /// The legacy simulator, when that engine is active (tests doing
    /// scenario surgery pin `shards = 0` and go through this).
    pub fn as_single(&self) -> Option<&Simulator<PastOverlayNode>> {
        match self {
            Engine::Single(s) => Some(s),
            Engine::Sharded(_) => None,
        }
    }

    /// Mutable counterpart of [`Engine::as_single`].
    pub fn as_single_mut(&mut self) -> Option<&mut Simulator<PastOverlayNode>> {
        match self {
            Engine::Single(s) => Some(s),
            Engine::Sharded(_) => None,
        }
    }

    pub fn reserve_capacity(&mut self, events: usize, upcalls: usize) {
        match self {
            Engine::Single(s) => s.reserve_capacity(events, upcalls),
            Engine::Sharded(s) => s.reserve_capacity(events, upcalls),
        }
    }

    pub fn add_node(&mut self, addr: Addr, proto: PastOverlayNode) {
        match self {
            Engine::Single(s) => s.add_node(addr, proto),
            Engine::Sharded(s) => s.add_node(addr, proto),
        }
    }

    pub fn invoke<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(
            &mut PastOverlayNode,
            &mut past_net::Ctx<
                '_,
                <PastOverlayNode as past_net::Protocol>::Msg,
                <PastOverlayNode as past_net::Protocol>::Upcall,
            >,
        ),
    {
        match self {
            Engine::Single(s) => s.invoke(addr, f),
            Engine::Sharded(s) => s.invoke(addr, f),
        }
    }

    pub fn run_until_idle(&mut self) {
        match self {
            Engine::Single(s) => s.run_until_idle(),
            Engine::Sharded(s) => s.run_until_idle(),
        }
    }

    pub fn run_for(&mut self, span: SimDuration) {
        match self {
            Engine::Single(s) => s.run_for(span),
            Engine::Sharded(s) => s.run_for(span),
        }
    }

    pub fn run_until(&mut self, deadline: SimTime) {
        match self {
            Engine::Single(s) => s.run_until(deadline),
            Engine::Sharded(s) => s.run_until(deadline),
        }
    }

    pub fn now(&self) -> SimTime {
        match self {
            Engine::Single(s) => s.now(),
            Engine::Sharded(s) => s.now(),
        }
    }

    pub fn stats(&self) -> NetStats {
        match self {
            Engine::Single(s) => s.stats(),
            Engine::Sharded(s) => s.stats(),
        }
    }

    pub fn queue_len(&self) -> usize {
        match self {
            Engine::Single(s) => s.queue_len(),
            Engine::Sharded(s) => s.queue_len(),
        }
    }

    pub fn drain_upcalls_into(&mut self, buf: &mut Vec<(SimTime, Addr, PastEvent)>) {
        match self {
            Engine::Single(s) => s.drain_upcalls_into(buf),
            Engine::Sharded(s) => s.drain_upcalls_into(buf),
        }
    }

    pub fn discard_upcalls(&mut self) {
        match self {
            Engine::Single(s) => s.discard_upcalls(),
            Engine::Sharded(s) => s.discard_upcalls(),
        }
    }

    pub fn node(&self, addr: Addr) -> Option<&PastOverlayNode> {
        match self {
            Engine::Single(s) => s.node(addr),
            Engine::Sharded(s) => s.node(addr),
        }
    }

    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut PastOverlayNode> {
        match self {
            Engine::Single(s) => s.node_mut(addr),
            Engine::Sharded(s) => s.node_mut(addr),
        }
    }

    pub fn is_up(&self, addr: Addr) -> bool {
        match self {
            Engine::Single(s) => s.is_up(addr),
            Engine::Sharded(s) => s.is_up(addr),
        }
    }

    /// Live addresses, in address order under both engines.
    pub fn live_addrs(&self) -> Vec<Addr> {
        match self {
            Engine::Single(s) => s.live_addrs().collect(),
            Engine::Sharded(s) => s.live_addrs(),
        }
    }

    pub fn fail_node(&mut self, addr: Addr) {
        match self {
            Engine::Single(s) => s.fail_node(addr),
            Engine::Sharded(s) => s.fail_node(addr),
        }
    }

    pub fn recover_node(&mut self, addr: Addr) {
        match self {
            Engine::Single(s) => s.recover_node(addr),
            Engine::Sharded(s) => s.recover_node(addr),
        }
    }

    pub fn remove_node(&mut self, addr: Addr) -> Option<PastOverlayNode> {
        match self {
            Engine::Single(s) => s.remove_node(addr),
            Engine::Sharded(s) => s.remove_node(addr),
        }
    }

    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        match self {
            Engine::Single(s) => s.set_fault_plan(plan),
            Engine::Sharded(s) => s.set_fault_plan(plan),
        }
    }

    pub fn set_loss_probability(&mut self, p: f64) {
        match self {
            Engine::Single(s) => s.set_loss_probability(p),
            Engine::Sharded(s) => s.set_loss_probability(p),
        }
    }

    /// Folds per-shard observability fragments into the recorder
    /// installed on this thread. Must run before every metrics snapshot
    /// under the sharded engine; a no-op under the legacy engine (which
    /// records straight into the installed recorder).
    pub fn sync_obs(&mut self) {
        match self {
            Engine::Single(_) => {}
            Engine::Sharded(s) => s.sync_obs(),
        }
    }
}
