//! Experiment harness for the PAST reproduction.
//!
//! [`ExperimentConfig`] captures one run of the paper's evaluation
//! (§5): a 2250-node overlay, Table 1 node capacities scaled to the
//! trace, the `t_pri`/`t_div` policies under test, and the workload
//! replay mode (insert-only for the storage experiments, full replay
//! with lookups for the caching experiment). [`Runner`] builds the
//! overlay and replays a `past-workload` trace; [`ExperimentResult`]
//! exposes exactly the aggregates each table and figure needs.

//!
//! [`ChurnRunner`] drives the robustness experiments instead: it
//! subjects a smaller overlay to fault-plan churn (crashes, partitions,
//! message loss) and audits the §3.5 storage invariants globally,
//! reporting violations as a structured [`InvariantReport`].

mod churn;
mod config;
mod engine;
mod metrics;
mod report;
mod runner;

pub use churn::{ChurnConfig, ChurnRunner, InvariantReport, UnderReplicated, CLIENT};
pub use config::{ExperimentConfig, TopologyKind};
pub use engine::Engine;
pub use metrics::{ExperimentResult, InsertRecord, LookupRecord, NodeWindowStat, WindowSeries};
pub use report::write_metrics_file;
pub use runner::{run_experiment, Runner};
