//! Churn experiment driver and global invariant auditor.
//!
//! [`ChurnRunner`] builds a PAST overlay with failure detection armed
//! (keep-alives + per-hop acks), inserts a working set from a protected
//! client node, subjects the overlay to a [`FaultPlan`] (crash/recover
//! schedules, partitions, message loss), and — after the network has
//! quiesced — walks every live node to check the paper's global
//! invariants (§3.5):
//!
//! - **replication**: every inserted, unreclaimed file is backed by
//!   `min(k, live nodes)` reachable copies, where a copy is either a
//!   primary replica or a valid A→B pointer to a live diverted holder;
//! - **pointer integrity**: no dangling pointers (targets dead or no
//!   longer holding the bytes) and no orphan certificates (a pointer
//!   and its certificate must pair 1:1, for backups too);
//! - **quota conservation**: the client's ledger charges exactly
//!   `k × size` for each successful, unreclaimed insert.
//!
//! The result is a structured [`InvariantReport`], so tests and the
//! `churn_availability` benchmark can assert on individual violations
//! instead of a boolean.

use std::collections::{BTreeSet, HashMap};

use past_core::{AuditStats, MaintStats, PastConfig, PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::FileId;
use past_net::{
    Addr, ByzantineBehavior, EuclideanTopology, FaultPlan, NetStats, SimDuration, SimTime,
    Simulator,
};

use crate::engine::Engine;
use past_pastry::{NodeEntry, PastryConfig, PastryNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a churn experiment.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Overlay size.
    pub nodes: usize,
    /// Master seed (topology, keys, bootstrap choices, workload).
    pub seed: u64,
    /// Per-node PAST configuration (k, acceptance policies, the
    /// reliable-maintenance knobs under test).
    pub past: PastConfig,
    /// Pastry configuration; must arm keep-alives so failures are
    /// detected and repaired.
    pub pastry: PastryConfig,
    /// Per-node disk capacity.
    pub capacity: u64,
    /// Number of files the client inserts before churn starts.
    pub files: usize,
    /// Size of each inserted file.
    pub file_size: u64,
    /// Simulation shards: 0 = single-threaded legacy engine, `n ≥ 1` =
    /// sharded engine with `n` shards (shard-count invariant results).
    pub shards: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            nodes: 30,
            seed: 1,
            past: PastConfig {
                cache_policy: past_store::CachePolicyKind::None,
                ..Default::default()
            },
            pastry: PastryConfig {
                leaf_set_size: 16,
                neighborhood_size: 16,
                keep_alive_period: SimDuration::from_secs(5),
                failure_timeout: SimDuration::from_secs(15),
                per_hop_acks: true,
                ..Default::default()
            },
            capacity: 40_000_000,
            files: 8,
            file_size: 20_000,
            shards: 0,
        }
    }
}

/// One replication-invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnderReplicated {
    /// The file concerned.
    pub file_id: FileId,
    /// Reachable copies found (primaries + valid pointers).
    pub found: usize,
    /// Copies the invariant requires (`min(k, live nodes)`).
    pub required: usize,
}

/// Outcome of one global invariant audit (see the module docs for the
/// invariants themselves).
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    /// Files audited (successful, unreclaimed inserts).
    pub files: usize,
    /// Live nodes walked.
    pub live_nodes: usize,
    /// Files with fewer than `min(k, live)` reachable copies.
    pub under_replicated: Vec<UnderReplicated>,
    /// Pointers whose target is dead or no longer holds the bytes.
    pub dangling_pointers: usize,
    /// Pointers (regular or backup) without a matching certificate.
    pub pointers_missing_cert: usize,
    /// Certificates (regular or backup) without a matching pointer.
    pub orphan_certs: usize,
    /// Bytes the client's quota ledger should be charged.
    pub quota_expected: u64,
    /// Bytes the ledger actually charges.
    pub quota_used: u64,
    /// Nodes running a Byzantine strategy at audit time.
    pub byzantine_nodes: usize,
    /// Copies counted above that sit on a malicious holder
    /// (informational: such copies are liabilities, not assets).
    pub replicas_on_malicious: usize,
}

impl InvariantReport {
    /// Whether every audited invariant holds.
    pub fn is_clean(&self) -> bool {
        self.under_replicated.is_empty()
            && self.dangling_pointers == 0
            && self.pointers_missing_cert == 0
            && self.orphan_certs == 0
            && self.quota_expected == self.quota_used
    }

    /// Human-readable one-line summary (for assertions and logs).
    pub fn summary(&self) -> String {
        format!(
            "files={} live={} under_replicated={} dangling={} missing_cert={} orphan_cert={} quota={}/{}",
            self.files,
            self.live_nodes,
            self.under_replicated.len(),
            self.dangling_pointers,
            self.pointers_missing_cert,
            self.orphan_certs,
            self.quota_used,
            self.quota_expected,
        )
    }
}

/// Drives one churn experiment: build → insert → churn → heal → audit.
pub struct ChurnRunner {
    cfg: ChurnConfig,
    sim: Engine,
    entries: Vec<NodeEntry>,
    /// Successful, unreclaimed inserts (the audited working set).
    files: Vec<(FileId, u64)>,
    inserts_attempted: usize,
    lookups_attempted: usize,
    lookups_ok: usize,
    workload_rng: StdRng,
    /// Label for `past-obs` recording (None = recording off).
    metrics_label: Option<String>,
    /// Downtime durations of every crash/recover pair installed through
    /// [`Self::run_with_faults`] (from `FaultPlan::downtimes`), so runs
    /// can report downtime distributions alongside availability.
    downtimes: Vec<(Addr, SimDuration)>,
    /// Nodes currently running a Byzantine strategy (installed through
    /// [`Self::apply_byzantine`]).
    malicious: BTreeSet<Addr>,
    /// When the Byzantine strategies were switched on (detection
    /// latency is measured from here).
    malice_start: Option<SimTime>,
    /// Lookups whose final answer was corrupted content.
    corrupted_lookups: u64,
}

/// The client access point; excluded from churn plans built by
/// [`ChurnRunner::poisson_plan`] so quota accounting stays auditable.
pub const CLIENT: Addr = Addr(0);

impl ChurnRunner {
    /// Builds the overlay (no churn yet).
    pub fn build(cfg: ChurnConfig) -> Self {
        let mut seeder = StdRng::seed_from_u64(cfg.seed);
        let topo = EuclideanTopology::random(cfg.nodes, &mut seeder);
        let mut sim = Engine::build(Box::new(topo), cfg.seed ^ 0xc4a2, cfg.shards);
        let mut entries = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
            let id = past_crypto::derive_node_id(&keys.public());
            let addr = Addr(i as u32);
            let entry = NodeEntry::new(id, addr);
            let app = PastNode::new(cfg.past.clone(), keys, cfg.capacity, u64::MAX / 2);
            let bootstrap = if i == 0 {
                None
            } else {
                Some(Addr(seeder.gen_range(0..i) as u32))
            };
            sim.add_node(
                addr,
                PastryNode::new(cfg.pastry.clone(), entry, app, bootstrap),
            );
            // Keep-alives are armed, so the queue never drains: settle
            // each join with a bounded window instead.
            sim.run_for(SimDuration::from_secs(1));
            entries.push(entry);
        }
        sim.run_for(SimDuration::from_secs(10));
        sim.discard_upcalls();
        let workload_rng = StdRng::seed_from_u64(cfg.seed ^ 0x90ad);
        ChurnRunner {
            cfg,
            sim,
            entries,
            files: Vec::new(),
            inserts_attempted: 0,
            lookups_attempted: 0,
            lookups_ok: 0,
            workload_rng,
            metrics_label: None,
            downtimes: Vec::new(),
            malicious: BTreeSet::new(),
            malice_start: None,
            corrupted_lookups: 0,
        }
    }

    /// Enables `past-obs` recording for the phases that follow. The
    /// caller drives snapshots ([`Self::snapshot_metrics`]) at phase
    /// boundaries and closes the run with [`Self::finish_metrics`],
    /// which writes `results/metrics_<label>.json`.
    pub fn enable_metrics(&mut self, label: &str) {
        self.metrics_label = Some(label.to_string());
        past_obs::install(past_obs::Recorder::new());
    }

    /// Appends a registry snapshot stamped with the current sim time
    /// (no-op unless [`Self::enable_metrics`] was called).
    pub fn snapshot_metrics(&mut self) {
        self.sim.sync_obs();
        past_obs::gauge("net.queue_len", self.sim.queue_len() as i64);
        past_obs::gauge("sim.files_live", self.files.len() as i64);
        let at = self.sim.now().micros();
        past_obs::with_recorder(|r| r.take_snapshot(at));
    }

    /// Takes a final snapshot, writes `results/metrics_<label>.json`,
    /// and returns the report JSON (None if recording was off).
    pub fn finish_metrics(&mut self) -> Option<String> {
        let label = self.metrics_label.take()?;
        self.snapshot_metrics();
        let rec = past_obs::uninstall()?;
        let json = rec.report_json(&label, self.cfg.seed);
        let _ = crate::report::write_metrics_file(&label, &json);
        Some(json)
    }

    /// The legacy simulator (for custom fault plans and inspection).
    ///
    /// # Panics
    ///
    /// Panics under the sharded engine (`cfg.shards >= 1`); use the
    /// engine-agnostic wrappers ([`Self::run_for`],
    /// [`Self::set_loss_probability`], …) or [`Self::engine`] instead.
    pub fn sim(&self) -> &Simulator<PastOverlayNode> {
        self.sim
            .as_single()
            .expect("ChurnRunner::sim() requires the single-threaded engine (cfg.shards == 0)")
    }

    /// Mutable legacy simulator access (for scenario surgery in tests:
    /// direct kills, recoveries, extra invocations). Same engine
    /// restriction as [`Self::sim`].
    pub fn sim_mut(&mut self) -> &mut Simulator<PastOverlayNode> {
        self.sim
            .as_single_mut()
            .expect("ChurnRunner::sim_mut() requires the single-threaded engine (cfg.shards == 0)")
    }

    /// Engine-agnostic access to the simulation backend.
    pub fn engine(&self) -> &Engine {
        &self.sim
    }

    /// Advances simulated time by `span` on whichever engine is active.
    pub fn run_for(&mut self, span: SimDuration) {
        self.sim.run_for(span);
    }

    /// Sets the global i.i.d. message-loss probability on whichever
    /// engine is active.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.sim.set_loss_probability(p);
    }

    /// Discards pending upcalls on whichever engine is active.
    pub fn discard_upcalls(&mut self) {
        self.sim.discard_upcalls();
    }

    /// Removes a node on whichever engine is active, returning its
    /// protocol state.
    pub fn remove_node(&mut self, addr: Addr) -> Option<PastOverlayNode> {
        self.sim.remove_node(addr)
    }

    /// The overlay's node identities.
    pub fn entries(&self) -> &[NodeEntry] {
        &self.entries
    }

    /// Live nodes currently holding a replica (primary or diverted) of
    /// `fid`.
    pub fn holders_of(&self, fid: FileId) -> Vec<Addr> {
        self.entries
            .iter()
            .filter(|e| self.sim.is_up(e.addr))
            .filter(|e| {
                self.sim
                    .node(e.addr)
                    .map(|n| n.app().store().holds_replica(fid))
                    .unwrap_or(false)
            })
            .map(|e| e.addr)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> past_net::SimTime {
        self.sim.now()
    }

    /// The audited working set: (fileId, size) of successful inserts.
    pub fn files(&self) -> &[(FileId, u64)] {
        &self.files
    }

    /// Inserts the configured working set from the client node and
    /// records the successful fileIds. Returns how many succeeded.
    pub fn insert_files(&mut self) -> usize {
        let mut buf = Vec::new();
        for i in 0..self.cfg.files {
            let name = format!("churn{i}");
            let size = self.cfg.file_size;
            self.inserts_attempted += 1;
            self.sim.invoke(CLIENT, move |node, ctx| {
                node.invoke_app(ctx, |app, actx| {
                    app.insert(actx, &name, size);
                });
            });
            self.sim.run_for(SimDuration::from_secs(2));
            self.sim.drain_upcalls_into(&mut buf);
            for (_, _, ev) in buf.drain(..) {
                if let PastEvent::InsertDone {
                    file_id,
                    size,
                    success: true,
                    ..
                } = ev
                {
                    self.files.push((file_id, size));
                }
            }
        }
        self.files.len()
    }

    /// Builds a Poisson churn plan over every node except the client,
    /// covering the next `span` of simulated time.
    pub fn poisson_plan(
        &self,
        mtbf: SimDuration,
        mean_downtime: SimDuration,
        span: SimDuration,
    ) -> FaultPlan {
        let victims: Vec<Addr> = (1..self.cfg.nodes).map(|i| Addr(i as u32)).collect();
        let start = self.sim.now();
        FaultPlan::new().poisson_churn(
            self.cfg.seed ^ 0xfa11,
            &victims,
            mtbf,
            mean_downtime,
            start,
            start + span,
        )
    }

    /// Installs a fault plan and runs the overlay for `span`. Downtime
    /// durations the plan recorded (Poisson churn, `restart_at`) are
    /// accumulated for [`Self::downtime_summary`].
    pub fn run_with_faults(&mut self, plan: FaultPlan, span: SimDuration) {
        self.downtimes.extend_from_slice(plan.downtimes());
        self.sim.set_fault_plan(plan);
        self.sim.run_for(span);
    }

    /// Downtime durations of every crash/recover pair run so far.
    pub fn downtimes(&self) -> &[(Addr, SimDuration)] {
        &self.downtimes
    }

    /// Builds a Byzantine plan converting `fraction` of the non-client
    /// nodes to adversarial strategies (deterministic in the seed).
    ///
    /// Node *selection* uses [`FaultPlan::byzantine`]'s uniform sample;
    /// the uniform `full()` strategy it assigns is then replaced with a
    /// deterministic mix cycling through the four behaviors (in sorted
    /// address order) so every adversary class is represented: a full
    /// adversary drops its copies and therefore never serves corrupted
    /// content, which would make residual-corruption measurements
    /// vacuous.
    pub fn byzantine_plan(&self, fraction: f64) -> FaultPlan {
        let victims: Vec<Addr> = (1..self.cfg.nodes).map(|i| Addr(i as u32)).collect();
        let selected = FaultPlan::new().byzantine(self.cfg.seed ^ 0xb42, &victims, fraction);
        let mut plan = FaultPlan::new();
        for (i, (addr, _)) in selected.byzantine_nodes().into_iter().enumerate() {
            let behavior = match i % 4 {
                0 => ByzantineBehavior {
                    corrupt_content: true,
                    ..Default::default()
                },
                1 => ByzantineBehavior {
                    drop_replicas: true,
                    ..Default::default()
                },
                2 => ByzantineBehavior {
                    ack_then_discard: true,
                    inflate_free: true,
                    ..Default::default()
                },
                _ => ByzantineBehavior::full(),
            };
            plan = plan.mark_byzantine(addr, behavior);
        }
        plan
    }

    /// Flips the plan's Byzantine nodes to their assigned strategies.
    /// Nodes with `drop_replicas` discard their stored primaries on the
    /// spot (the "silently lose data" adversary); the other behaviors
    /// take effect on future message handling.
    pub fn apply_byzantine(&mut self, plan: &FaultPlan) {
        for (addr, behavior) in plan.byzantine_nodes() {
            if let Some(node) = self.sim.node_mut(addr) {
                node.app_mut().set_malice(behavior);
                if behavior.drop_replicas {
                    node.app_mut().malice_drop_replicas();
                }
                self.malicious.insert(addr);
            }
        }
        if !self.malicious.is_empty() && self.malice_start.is_none() {
            self.malice_start = Some(self.sim.now());
        }
    }

    /// Nodes currently running a Byzantine strategy.
    pub fn malicious(&self) -> &BTreeSet<Addr> {
        &self.malicious
    }

    /// Lookups whose *final* answer was corrupted content (after any
    /// verify-and-retry rounds) — the residual corruption the defense
    /// failed to filter.
    pub fn corrupted_lookups(&self) -> u64 {
        self.corrupted_lookups
    }

    /// Audit counters `(challenges, passed, failed, timeouts)` summed
    /// over every node.
    pub fn audit_totals(&self) -> (u64, u64, u64, u64) {
        let mut total = AuditStats::default();
        for e in &self.entries {
            if let Some(n) = self.sim.node(e.addr) {
                let s = n.app().audit_stats();
                total.challenges += s.challenges;
                total.passed += s.passed;
                total.failed += s.failed;
                total.timeouts += s.timeouts;
            }
        }
        (total.challenges, total.passed, total.failed, total.timeouts)
    }

    /// Same-file audit verdicts that differed (audit fanout ≥ 2: one
    /// holder proved possession while another failed or timed out),
    /// summed over every node. Always 0 at the default fanout of 1.
    pub fn audit_disagreements(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| self.sim.node(e.addr))
            .map(|n| n.app().audit_stats().disagreements)
            .sum()
    }

    /// The earliest moment any auditor convicted a holder (first failed
    /// or timed-out audit anywhere in the overlay).
    pub fn first_detection(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .filter_map(|e| self.sim.node(e.addr))
            .filter_map(|n| n.app().audit_stats().first_detection)
            .min()
    }

    /// Time from switching the adversary on to the first audit
    /// conviction anywhere (None if nothing was detected yet, or no
    /// adversary was installed).
    pub fn detection_latency(&self) -> Option<SimDuration> {
        Some(self.first_detection()? - self.malice_start?)
    }

    /// `(count, mean, max)` of the downtimes run so far (micros), or
    /// `None` if no timed outage was installed.
    pub fn downtime_summary(&self) -> Option<(usize, u64, u64)> {
        if self.downtimes.is_empty() {
            return None;
        }
        let micros: Vec<u64> = self.downtimes.iter().map(|(_, d)| d.micros()).collect();
        let sum: u64 = micros.iter().sum();
        let max = *micros.iter().max().expect("non-empty");
        Some((micros.len(), sum / micros.len() as u64, max))
    }

    /// Issues `count` lookups of the working set from random *live*
    /// nodes, advancing the clock by `gap` after each. Returns how many
    /// of them found the file.
    pub fn lookup_round(&mut self, count: usize, gap: SimDuration) -> usize {
        if self.files.is_empty() {
            return 0;
        }
        let mut ok = 0;
        let mut buf = Vec::new();
        for i in 0..count {
            let (fid, _) = self.files[i % self.files.len()];
            let mut live: Vec<Addr> = self.sim.live_addrs();
            // Honest clients only: a malicious issuer would "lose" its
            // own request. The filter is gated on the set being
            // non-empty so default (adversary-free) runs draw the exact
            // same workload_rng sequence as before.
            if !self.malicious.is_empty() {
                live.retain(|a| !self.malicious.contains(a));
            }
            if live.is_empty() {
                break;
            }
            let from = live[self.workload_rng.gen_range(0..live.len())];
            self.sim.invoke(from, move |node, ctx| {
                node.invoke_app(ctx, |app, actx| {
                    app.lookup(actx, fid);
                });
            });
            self.sim.run_for(gap);
            self.lookups_attempted += 1;
            self.sim.drain_upcalls_into(&mut buf);
            for (_, _, ev) in buf.drain(..) {
                if let PastEvent::LookupDone {
                    found, corrupted, ..
                } = ev
                {
                    if corrupted {
                        self.corrupted_lookups += 1;
                    }
                    if found {
                        ok += 1;
                        self.lookups_ok += 1;
                    }
                }
            }
        }
        ok
    }

    /// Recovers every crashed node, clears the fault plan, and lets the
    /// network settle for `settle`.
    pub fn heal(&mut self, settle: SimDuration) {
        self.sim.set_fault_plan(FaultPlan::new());
        for i in 0..self.cfg.nodes {
            let addr = Addr(i as u32);
            if self.sim.node(addr).is_some() && !self.sim.is_up(addr) {
                self.sim.recover_node(addr);
            }
        }
        self.sim.run_for(settle);
        self.sim.discard_upcalls();
    }

    /// Runs in `step` increments until the replication invariant holds
    /// for every file or `max` elapses. Returns the time it took, or
    /// `None` on timeout. This is the benchmark's time-to-rereplication.
    pub fn time_to_full_replication(
        &mut self,
        step: SimDuration,
        max: SimDuration,
    ) -> Option<SimDuration> {
        let start = self.sim.now();
        loop {
            if self.audit().under_replicated.is_empty() {
                return Some(self.sim.now() - start);
            }
            if self.sim.now() - start >= max {
                return None;
            }
            self.sim.run_for(step);
            self.sim.discard_upcalls();
        }
    }

    /// Total lookups issued / found so far.
    pub fn lookup_totals(&self) -> (usize, usize) {
        (self.lookups_attempted, self.lookups_ok)
    }

    /// Network-level fault counters.
    pub fn net_stats(&self) -> NetStats {
        self.sim.stats()
    }

    /// Reliable-maintenance counters summed over every node (including
    /// currently crashed ones — their counters survive the crash).
    pub fn maint_totals(&self) -> MaintStats {
        let mut total = MaintStats::default();
        for e in &self.entries {
            if let Some(n) = self.sim.node(e.addr) {
                let s = n.app().maint_stats();
                total.sent += s.sent;
                total.retries += s.retries;
                total.acked += s.acked;
                total.exhausted += s.exhausted;
                total.bytes_rereplication += s.bytes_rereplication;
                total.bytes_refresh += s.bytes_refresh;
            }
        }
        total
    }

    /// `(warm, cold)` restart counts summed over every node.
    pub fn restart_totals(&self) -> (u64, u64) {
        let mut warm = 0;
        let mut cold = 0;
        for e in &self.entries {
            if let Some(n) = self.sim.node(e.addr) {
                let (w, c) = n.restart_counts();
                warm += w;
                cold += c;
            }
        }
        (warm, cold)
    }

    /// Walks every live node and checks the global invariants. See the
    /// module docs for what each counter means.
    pub fn audit(&self) -> InvariantReport {
        let mut report = InvariantReport {
            files: self.files.len(),
            ..Default::default()
        };
        let live: Vec<&PastOverlayNode> = self
            .entries
            .iter()
            .filter(|e| self.sim.is_up(e.addr))
            .filter_map(|e| self.sim.node(e.addr))
            .collect();
        report.live_nodes = live.len();

        // Is `holder` alive and holding the bytes of `fid`?
        let holds_live = |holder: &NodeEntry, fid: FileId| -> bool {
            self.sim.is_up(holder.addr)
                && self
                    .sim
                    .node(holder.addr)
                    .map(|n| n.app().store().holds_replica(fid))
                    .unwrap_or(false)
        };

        // Reachable copies per audited file: a primary replica counts
        // directly; a diverted replica counts through the A→B pointer
        // that owns it (never directly, to avoid double counting).
        let mut copies: HashMap<FileId, usize> = HashMap::new();
        for node in &live {
            let app = node.app();
            for (fid, _cert) in app.store().primaries() {
                *copies.entry(*fid).or_insert(0) += 1;
            }
            for (fid, holder) in app.store().pointers() {
                if holds_live(holder, *fid) {
                    *copies.entry(*fid).or_insert(0) += 1;
                } else {
                    report.dangling_pointers += 1;
                }
            }
        }
        for &(fid, _) in &self.files {
            let found = copies.get(&fid).copied().unwrap_or(0);
            let required = (self.cfg.past.k as usize).min(report.live_nodes);
            if found < required {
                report.under_replicated.push(UnderReplicated {
                    file_id: fid,
                    found,
                    required,
                });
            }
        }

        // Pointer ↔ certificate pairing, both roles and both directions.
        for node in &live {
            let app = node.app();
            let pointer_certs: Vec<FileId> = app.pointer_cert_ids().collect();
            let backup_certs: Vec<FileId> = app.backup_cert_ids().collect();
            for (fid, _) in app.store().pointers() {
                if !pointer_certs.contains(fid) {
                    report.pointers_missing_cert += 1;
                }
            }
            for fid in &pointer_certs {
                if app.store().pointer(*fid).is_none() {
                    report.orphan_certs += 1;
                }
            }
            for (fid, _) in app.store().backup_pointers() {
                if !backup_certs.contains(fid) {
                    report.pointers_missing_cert += 1;
                }
            }
            for fid in &backup_certs {
                if app.store().backup_pointer(*fid).is_none() {
                    report.orphan_certs += 1;
                }
            }
        }

        // Informational adversary accounting (never flips is_clean():
        // a copy on a malicious holder still satisfies replication by
        // count; the defense layer's job is to migrate it away, and the
        // benchmarks watch this counter trend to zero).
        for e in &self.entries {
            if !self.malicious.contains(&e.addr) || !self.sim.is_up(e.addr) {
                continue;
            }
            report.byzantine_nodes += 1;
            if let Some(n) = self.sim.node(e.addr) {
                report.replicas_on_malicious += n
                    .app()
                    .store()
                    .primaries()
                    .filter(|(fid, _)| self.files.iter().any(|&(f, _)| f == **fid))
                    .count();
            }
        }

        // Quota conservation at the (churn-protected) client.
        report.quota_expected = self
            .files
            .iter()
            .map(|&(_, size)| size.saturating_mul(self.cfg.past.k as u64))
            .sum();
        report.quota_used = self
            .sim
            .node(CLIENT)
            .map(|n| n.app().quota().used())
            .unwrap_or(0);
        report
    }
}
