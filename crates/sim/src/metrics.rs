//! Metric collection: everything needed to regenerate the paper's
//! tables and figures from one experiment run.

use past_core::HitKind;

/// A running-total sample taken at each insert completion, giving the
/// exact Figure 5 curve (cumulative diverted / stored replicas).
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSample {
    /// Global storage utilization at the sample.
    pub utilization: f64,
    /// Replicas currently stored.
    pub replicas: u64,
    /// Diverted replicas currently stored.
    pub diverted: u64,
}

/// One insert's outcome, recorded at completion time.
#[derive(Clone, Copy, Debug)]
pub struct InsertRecord {
    /// Global storage utilization (0..=1) when the insert completed.
    pub utilization: f64,
    /// File size in bytes.
    pub size: u64,
    /// Attempts made (1 = stored at the first fileId; 2–4 = file
    /// diversions; the paper aborts after 4).
    pub attempts: u32,
    /// Whether the insert succeeded.
    pub success: bool,
}

/// One lookup's outcome.
#[derive(Clone, Copy, Debug)]
pub struct LookupRecord {
    /// Global storage utilization when the lookup completed.
    pub utilization: f64,
    /// Whether the file was found.
    pub found: bool,
    /// Routing hops until the file was found.
    pub hops: u32,
    /// Whether a cached copy answered.
    pub cache_hit: bool,
}

/// Per-window aggregate of a per-node windowed counter: how one
/// window's served load spreads over the nodes that served anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeWindowStat {
    /// Sum over all nodes in the window.
    pub total: u64,
    /// Distinct nodes that contributed.
    pub nodes: u64,
    /// Largest single node's contribution (the hot node).
    pub max: u64,
}

/// The windowed time series extracted from the obs registry after a run
/// with [`crate::ExperimentConfig::obs_window`] set: counters and
/// per-node load spread per fixed sim-time bucket. Buckets are
/// `sim_time / width_us`; multiply by `width_us` to recover time.
#[derive(Clone, Debug, Default)]
pub struct WindowSeries {
    /// Bucket width in simulated microseconds.
    pub width_us: u64,
    /// Plain windowed counters (`past.win.lookup`, `.cached`, `.hops`),
    /// name → bucket → count.
    pub counters: std::collections::BTreeMap<String, std::collections::BTreeMap<u64, u64>>,
    /// Per-node windowed counters (`past.win.served`), aggregated per
    /// bucket into total / distinct-node / max statistics.
    pub node_stats:
        std::collections::BTreeMap<String, std::collections::BTreeMap<u64, NodeWindowStat>>,
}

/// Aggregated result of one experiment run.
#[derive(Clone, Debug, Default)]
pub struct ExperimentResult {
    /// Per-insert records in completion order.
    pub inserts: Vec<InsertRecord>,
    /// Per-lookup records in completion order (empty for storage-only
    /// runs).
    pub lookups: Vec<LookupRecord>,
    /// Running replica totals sampled at each insert completion.
    pub replica_samples: Vec<ReplicaSample>,
    /// Exact insert completions over the run. Always maintained, even
    /// when per-record vectors are thinned with
    /// [`crate::Runner::with_record_sampling`] — XL-scale replays use
    /// these for counters instead of `inserts.len()`.
    pub inserts_total: u64,
    /// Exact successful inserts (see [`Self::inserts_total`]).
    pub inserts_ok: u64,
    /// Exact lookup completions (see [`Self::inserts_total`]).
    pub lookups_total: u64,
    /// Exact found lookups (see [`Self::inserts_total`]).
    pub lookups_ok: u64,
    /// Total replicas stored over the run (primary + diverted).
    pub replicas_stored: u64,
    /// Diverted replicas stored over the run.
    pub replicas_diverted: u64,
    /// Total advertised capacity (bytes).
    pub total_capacity: u64,
    /// Replica bytes stored at the end of the run.
    pub stored_bytes: u64,
    /// Wall-clock seconds the run took (for the harness log).
    pub wall_seconds: f64,
    /// The `past-obs` metrics report (present when the run was built
    /// with [`crate::Runner::with_metrics`]). Deterministic for a
    /// given seed — byte-identical across same-seed reruns.
    pub metrics_json: Option<String>,
    /// Windowed time series (present when the run was built with
    /// metrics recording and a nonzero
    /// [`crate::ExperimentConfig::obs_window`]).
    pub windows: Option<WindowSeries>,
    /// Simulated time (µs) at which the trace replay started — overlay
    /// construction runs before this. Subtract from window-bucket times
    /// to get replay-relative time.
    pub replay_start_us: u64,
    /// Network-level event totals for the whole run (overlay
    /// construction included), for throughput reporting.
    pub net: past_net::NetStats,
}

impl ExperimentResult {
    /// Final global storage utilization in [0, 1].
    pub fn final_utilization(&self) -> f64 {
        if self.total_capacity == 0 {
            return 0.0;
        }
        self.stored_bytes as f64 / self.total_capacity as f64
    }

    /// Fraction of inserts that succeeded.
    pub fn success_ratio(&self) -> f64 {
        if self.inserts.is_empty() {
            return 0.0;
        }
        self.inserts.iter().filter(|r| r.success).count() as f64 / self.inserts.len() as f64
    }

    /// Fraction of successful inserts that needed at least one file
    /// diversion (Table 2's "File diversion" column).
    pub fn file_diversion_ratio(&self) -> f64 {
        let succeeded: Vec<&InsertRecord> = self.inserts.iter().filter(|r| r.success).collect();
        if succeeded.is_empty() {
            return 0.0;
        }
        succeeded.iter().filter(|r| r.attempts > 1).count() as f64 / succeeded.len() as f64
    }

    /// Fraction of stored replicas that are diverted replicas (Table 2's
    /// "Replica diversion" column, Figure 5's y-axis).
    pub fn replica_diversion_ratio(&self) -> f64 {
        if self.replicas_stored == 0 {
            return 0.0;
        }
        self.replicas_diverted as f64 / self.replicas_stored as f64
    }

    /// Cumulative failure ratio at each utilization grid point
    /// (Figures 2 and 3): failed inserts so far / inserts so far, at the
    /// last insert not exceeding each utilization level.
    pub fn cumulative_failure_curve(&self, grid_points: usize) -> Vec<(f64, f64)> {
        let mut curve = Vec::with_capacity(grid_points + 1);
        let mut failed = 0u64;
        let mut total = 0u64;
        let mut iter = self.inserts.iter().peekable();
        for g in 0..=grid_points {
            let u = g as f64 / grid_points as f64;
            while let Some(r) = iter.peek() {
                if r.utilization <= u {
                    total += 1;
                    if !r.success {
                        failed += 1;
                    }
                    iter.next();
                } else {
                    break;
                }
            }
            let ratio = if total == 0 {
                0.0
            } else {
                failed as f64 / total as f64
            };
            curve.push((u, ratio));
        }
        curve
    }

    /// Cumulative ratios of files diverted exactly 1, 2 and 3 times, and
    /// of insert failures, versus utilization (Figure 4).
    pub fn diversion_histogram_curve(&self, grid_points: usize) -> Vec<(f64, [f64; 4])> {
        let mut curve = Vec::with_capacity(grid_points + 1);
        let mut counts = [0u64; 4]; // 1, 2, 3 diversions, failures
        let mut total = 0u64;
        let mut iter = self.inserts.iter().peekable();
        for g in 0..=grid_points {
            let u = g as f64 / grid_points as f64;
            while let Some(r) = iter.peek() {
                if r.utilization <= u {
                    total += 1;
                    if !r.success {
                        counts[3] += 1;
                    } else if r.attempts >= 2 {
                        counts[(r.attempts as usize - 2).min(2)] += 1;
                    }
                    iter.next();
                } else {
                    break;
                }
            }
            let ratios = if total == 0 {
                [0.0; 4]
            } else {
                [
                    counts[0] as f64 / total as f64,
                    counts[1] as f64 / total as f64,
                    counts[2] as f64 / total as f64,
                    counts[3] as f64 / total as f64,
                ]
            };
            curve.push((u, ratios));
        }
        curve
    }

    /// The exact Figure 5 curve: cumulative ratio of diverted replicas to
    /// stored replicas at each utilization grid point.
    pub fn replica_diversion_curve(&self, grid_points: usize) -> Vec<(f64, f64)> {
        let mut curve = Vec::with_capacity(grid_points + 1);
        let mut last = (0u64, 0u64);
        let mut iter = self.replica_samples.iter().peekable();
        for g in 0..=grid_points {
            let u = g as f64 / grid_points as f64;
            while let Some(s) = iter.peek() {
                if s.utilization <= u {
                    last = (s.replicas, s.diverted);
                    iter.next();
                } else {
                    break;
                }
            }
            let ratio = if last.0 == 0 {
                0.0
            } else {
                last.1 as f64 / last.0 as f64
            };
            curve.push((u, ratio));
        }
        curve
    }

    /// Failed insertions as (utilization, file size) points (the Figure
    /// 6/7 scatter).
    pub fn failure_scatter(&self) -> Vec<(f64, u64)> {
        self.inserts
            .iter()
            .filter(|r| !r.success)
            .map(|r| (r.utilization, r.size))
            .collect()
    }

    /// Global cache hit ratio and mean lookup hops per utilization
    /// bucket (Figure 8). Returns (bucket center, hit ratio, mean hops,
    /// lookups in bucket).
    pub fn cache_curve(&self, buckets: usize) -> Vec<(f64, f64, f64, u64)> {
        let mut hit = vec![0u64; buckets];
        let mut hops = vec![0u64; buckets];
        let mut count = vec![0u64; buckets];
        for r in self.lookups.iter().filter(|r| r.found) {
            let b = ((r.utilization * buckets as f64) as usize).min(buckets - 1);
            count[b] += 1;
            hops[b] += r.hops as u64;
            if r.cache_hit {
                hit[b] += 1;
            }
        }
        (0..buckets)
            .filter(|&b| count[b] > 0)
            .map(|b| {
                (
                    (b as f64 + 0.5) / buckets as f64,
                    hit[b] as f64 / count[b] as f64,
                    hops[b] as f64 / count[b] as f64,
                    count[b],
                )
            })
            .collect()
    }
}

/// Per-record helpers used by both the runner and tests.
impl ExperimentResult {
    /// First utilization at which a file of at least `size` bytes failed
    /// to insert.
    pub fn first_failure_at_or_above(&self, size: u64) -> Option<f64> {
        self.inserts
            .iter()
            .filter(|r| !r.success && r.size >= size)
            .map(|r| r.utilization)
            .min_by(f64::total_cmp)
    }

    /// Interpolated hit kind summary over found lookups.
    pub fn lookup_hit_ratio(&self) -> f64 {
        let found = self.lookups.iter().filter(|r| r.found).count();
        if found == 0 {
            return 0.0;
        }
        self.lookups
            .iter()
            .filter(|r| r.found && r.cache_hit)
            .count() as f64
            / found as f64
    }
}

/// Converts a completion hit kind into the cache-hit flag used in the
/// Figure 8 accounting.
pub fn is_cache_hit(kind: Option<HitKind>) -> bool {
    matches!(kind, Some(HitKind::Cached))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(u: f64, success: bool, attempts: u32, size: u64) -> InsertRecord {
        InsertRecord {
            utilization: u,
            size,
            attempts,
            success,
        }
    }

    #[test]
    fn ratios() {
        let r = ExperimentResult {
            inserts: vec![
                rec(0.1, true, 1, 10),
                rec(0.5, true, 2, 10),
                rec(0.9, false, 4, 10),
                rec(0.95, true, 1, 10),
            ],
            replicas_stored: 100,
            replicas_diverted: 15,
            total_capacity: 1000,
            stored_bytes: 950,
            ..Default::default()
        };
        assert!((r.success_ratio() - 0.75).abs() < 1e-12);
        assert!((r.file_diversion_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.replica_diversion_ratio() - 0.15).abs() < 1e-12);
        assert!((r.final_utilization() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn cumulative_failure_curve_monotone_inputs() {
        let r = ExperimentResult {
            inserts: vec![
                rec(0.2, true, 1, 1),
                rec(0.4, true, 1, 1),
                rec(0.6, false, 4, 1),
                rec(0.8, false, 4, 1),
            ],
            ..Default::default()
        };
        let curve = r.cumulative_failure_curve(10);
        assert_eq!(curve.len(), 11);
        // At u = 0.5, one of two inserts so far... both succeeded.
        let at = |u: f64| curve.iter().find(|(g, _)| (*g - u).abs() < 1e-9).unwrap().1;
        assert_eq!(at(0.5), 0.0);
        assert!((at(0.6) - 1.0 / 3.0).abs() < 1e-12);
        assert!((at(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diversion_histogram_counts_by_attempts() {
        let r = ExperimentResult {
            inserts: vec![
                rec(0.1, true, 1, 1),
                rec(0.2, true, 2, 1), // diverted once
                rec(0.3, true, 3, 1), // diverted twice
                rec(0.4, true, 4, 1), // diverted three times
                rec(0.5, false, 4, 1),
            ],
            ..Default::default()
        };
        let curve = r.diversion_histogram_curve(2);
        let last = curve.last().unwrap().1;
        assert!((last[0] - 0.2).abs() < 1e-12);
        assert!((last[1] - 0.2).abs() < 1e-12);
        assert!((last[2] - 0.2).abs() < 1e-12);
        assert!((last[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn failure_scatter_filters_failures() {
        let r = ExperimentResult {
            inserts: vec![rec(0.1, true, 1, 5), rec(0.9, false, 4, 77)],
            ..Default::default()
        };
        assert_eq!(r.failure_scatter(), vec![(0.9, 77)]);
        assert_eq!(r.first_failure_at_or_above(50), Some(0.9));
        assert_eq!(r.first_failure_at_or_above(100), None);
    }

    #[test]
    fn cache_curve_buckets() {
        let mk = |u: f64, hops: u32, hit: bool| LookupRecord {
            utilization: u,
            found: true,
            hops,
            cache_hit: hit,
        };
        let r = ExperimentResult {
            lookups: vec![mk(0.05, 1, true), mk(0.08, 3, false), mk(0.95, 2, false)],
            ..Default::default()
        };
        let curve = r.cache_curve(10);
        assert_eq!(curve.len(), 2);
        let (c0, hit0, hops0, n0) = curve[0];
        assert!((c0 - 0.05).abs() < 1e-9);
        assert!((hit0 - 0.5).abs() < 1e-12);
        assert!((hops0 - 2.0).abs() < 1e-12);
        assert_eq!(n0, 2);
    }
}
