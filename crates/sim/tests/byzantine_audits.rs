//! End-to-end Byzantine defense: sampled audits detect misbehaving
//! replica holders, demote and shun them, and the maintenance plane
//! re-replicates the working set onto honest nodes.
//!
//! The adversary mix comes from `ChurnRunner::byzantine_plan`: content
//! corrupters, replica droppers, ack-then-discarders and free-space
//! liars, all switched on mid-run against an overlay built with the
//! full defense stack (periodic audits, lookup content verification,
//! reliability tracking, routing-table demotion).

use past_net::SimDuration;
use past_sim::{ChurnConfig, ChurnRunner};

fn defended_cfg(seed: u64, nodes: usize, audits: bool) -> ChurnConfig {
    let mut cfg = ChurnConfig {
        nodes,
        seed,
        files: 6,
        ..Default::default()
    };
    if audits {
        cfg.past.audit_period = SimDuration::from_secs(10);
        cfg.past.audit_timeout = SimDuration::from_secs(2);
        cfg.past.verify_lookup_content = true;
        cfg.pastry.track_reliability = true;
        cfg.pastry.demote_unreliable = true;
    }
    cfg
}

/// The full defense loop: a 20% adversary is detected by the sampled
/// audits, convicted holders get shunned, and the working set is
/// re-replicated back to full strength on honest nodes.
#[test]
fn audits_detect_demote_and_rereplicate() {
    let mut r = ChurnRunner::build(defended_cfg(9, 20, true));
    let inserted = r.insert_files();
    assert!(inserted >= 4, "only {inserted} inserts succeeded");
    assert!(r.audit().is_clean(), "pre-adversary audit must be clean");

    let plan = r.byzantine_plan(0.2);
    r.apply_byzantine(&plan);
    assert!(
        r.malicious().len() >= 3,
        "20% of 19 nodes must convert several adversaries"
    );
    // The droppers discarded their copies on the spot: the working set
    // is under-replicated until the defense notices and repairs.
    assert!(
        !r.audit().under_replicated.is_empty(),
        "replica droppers must leave a visible hole"
    );

    r.run_for(SimDuration::from_secs(120));
    r.discard_upcalls();

    let (challenges, _passed, failed, timeouts) = r.audit_totals();
    assert!(challenges > 0, "audit sweeps must issue challenges");
    // Default fanout challenges one holder per sampled file, so no file
    // ever has two outstanding challenges to disagree about.
    assert_eq!(
        r.audit_disagreements(),
        0,
        "fanout-1 sweeps cannot produce split verdicts"
    );
    assert!(
        failed + timeouts > 0,
        "the adversary must be convicted by at least one audit"
    );
    let latency = r
        .detection_latency()
        .expect("a conviction implies a detection timestamp");
    assert!(
        latency <= SimDuration::from_secs(120),
        "detection must happen inside the run window"
    );
    let shunned: usize = r
        .entries()
        .iter()
        .filter_map(|e| r.engine().node(e.addr))
        .map(|n| n.shunned().len())
        .sum();
    assert!(shunned > 0, "convictions must shun the guilty holders");

    // Re-replication: the audit-triggered repairs restore min(k, live)
    // reachable copies for every file.
    let healed = r.time_to_full_replication(SimDuration::from_secs(10), SimDuration::from_secs(300));
    assert!(
        healed.is_some(),
        "working set never returned to full replication: {}",
        r.audit().summary()
    );
}

/// Cross-examination: with `audit_fanout = 2` a sweep challenges two
/// holders of the same file, so a partially corrupted replica set —
/// one honest holder proving possession while a corrupter fails or a
/// dropper times out — surfaces as a recorded *disagreement*, the
/// signal a single sample per file can never produce.
#[test]
fn fanout_two_surfaces_split_verdicts() {
    let mut cfg = defended_cfg(9, 20, true);
    cfg.past.audit_fanout = 2;
    let mut r = ChurnRunner::build(cfg);
    let inserted = r.insert_files();
    assert!(inserted >= 4, "only {inserted} inserts succeeded");
    let plan = r.byzantine_plan(0.2);
    r.apply_byzantine(&plan);
    r.run_for(SimDuration::from_secs(120));
    r.discard_upcalls();

    let (challenges, _passed, failed, timeouts) = r.audit_totals();
    assert!(
        failed + timeouts > 0,
        "the adversary must be convicted by at least one audit"
    );
    assert!(
        r.audit_disagreements() > 0,
        "two-holder sweeps over a partially corrupted set must record \
         at least one split verdict ({challenges} challenges issued)"
    );
}

/// Acceptance: at 10% malicious, the defended overlay answers lookups
/// with strictly less residual corruption than the undefended one on
/// the same seed — and (small overlay, leaf-set routing) with none.
#[test]
fn audits_reduce_residual_corruption() {
    let run = |audits: bool| {
        let mut r = ChurnRunner::build(defended_cfg(39, 16, audits));
        let inserted = r.insert_files();
        assert!(inserted >= 4, "only {inserted} inserts succeeded");
        let plan = r.byzantine_plan(0.10);
        r.apply_byzantine(&plan);
        assert!(!r.malicious().is_empty(), "10% must convert someone");
        r.run_for(SimDuration::from_secs(60));
        r.discard_upcalls();
        r.lookup_round(24, SimDuration::from_secs(1));
        r.corrupted_lookups()
    };
    let undefended = run(false);
    let defended = run(true);
    assert!(
        undefended > 0,
        "the corrupter must fool at least one undefended lookup"
    );
    assert_eq!(
        defended, 0,
        "verify-and-retry plus shunning must filter every corrupted answer"
    );
}

/// RNG-stream neutrality: audit scheduling, nonce derivation and holder
/// sampling are all hash-derived, so switching audits on in an honest
/// overlay must not shift any per-node RNG stream. Randomized routing
/// makes the streams observable — every routing decision draws from
/// them — so identical placements and lookup outcomes across the two
/// runs prove the audits consumed nothing.
#[test]
fn audits_never_perturb_the_rng_stream() {
    let fingerprint = |audit_period: SimDuration| {
        let mut cfg = defended_cfg(21, 18, false);
        cfg.past.audit_period = audit_period;
        cfg.past.audit_timeout = SimDuration::from_secs(2);
        cfg.pastry.randomized_routing = true;
        let mut r = ChurnRunner::build(cfg);
        let inserted = r.insert_files();
        r.run_for(SimDuration::from_secs(60));
        r.discard_upcalls();
        let found = r.lookup_round(12, SimDuration::from_secs(1));
        let holders: Vec<Vec<past_net::Addr>> =
            r.files().iter().map(|&(f, _)| r.holders_of(f)).collect();
        let report = r.audit();
        (
            inserted,
            found,
            holders,
            report.quota_used,
            report.under_replicated.len(),
        )
    };
    let audits_off = fingerprint(SimDuration::ZERO);
    let audits_on = fingerprint(SimDuration::from_secs(10));
    assert_eq!(
        audits_off, audits_on,
        "audits must be invisible to the randomized-routing RNG streams"
    );
}
