//! The streaming-workload contract: a lazy [`StreamTrace`] must be
//! indistinguishable from the materialized [`Trace`] it replaces —
//! op-for-op at the workload layer (across random seeds and scales),
//! and metric-for-metric through a full `run_pipelined` replay on both
//! the legacy and the sharded engine.

use past_net::SimDuration;
use past_sim::{ExperimentConfig, ExperimentResult, Runner};
use past_workload::{FsTraceConfig, WebTraceConfig, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flattens any workload into a comparable op/size fingerprint.
fn fingerprint(w: &dyn Workload) -> (u64, Vec<u64>, Vec<(u32, u32, bool)>) {
    let sizes = (0..w.unique_files() as u32).map(|i| w.file_size(i)).collect();
    let ops = w
        .ops_iter()
        .map(|o| (o.client, o.file, o.is_insert))
        .collect();
    (w.total_bytes(), sizes, ops)
}

/// Property sweep: for randomly drawn seeds, scales, cluster layouts
/// and affinities, the stream reproduces the materialized trace
/// byte-for-byte. (The fixed-config cases live in `past-workload`'s
/// unit tests; this guards the whole parameter space.)
#[test]
fn stream_matches_materialized_across_random_seeds_and_scales() {
    let mut meta = StdRng::seed_from_u64(0x57_4e_a4);
    for round in 0..8 {
        let clusters = meta.gen_range(1..=12u32);
        let cfg = WebTraceConfig {
            seed: meta.gen(),
            clusters,
            clients: meta.gen_range(clusters..=200),
            cluster_affinity: meta.gen_range(0.0..1.0),
            zero_fraction: if round % 2 == 0 { 0.0 } else { 0.01 },
            ..Default::default()
        }
        .with_unique_files(meta.gen_range(50..1_500));
        assert_eq!(
            fingerprint(&cfg.generate()),
            fingerprint(&cfg.stream()),
            "web stream diverged for {cfg:?}"
        );
        let fs = FsTraceConfig {
            seed: meta.gen(),
            files: meta.gen_range(50..1_500),
            clients: meta.gen_range(1..100),
            ..Default::default()
        };
        assert_eq!(
            fingerprint(&fs.generate()),
            fingerprint(&fs.stream()),
            "fs stream diverged for {fs:?}"
        );
    }
}

/// The deterministic metric surface of a replay (everything except
/// wall-clock time and the obs report).
fn metric_surface(r: &ExperimentResult) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.inserts_total,
        r.inserts_ok,
        r.lookups_total,
        r.lookups_ok,
        r.replicas_stored,
        r.replicas_diverted,
        r.stored_bytes,
        r.net.events,
        r.net.delivered,
    )
}

fn run_replay(w: &dyn Workload, shards: usize, record_every: usize) -> ExperimentResult {
    let cfg = ExperimentConfig {
        nodes: 30,
        seed: 4242,
        shards,
        replay_lookups: true,
        ..Default::default()
    };
    Runner::build(cfg, w)
        .with_record_sampling(record_every)
        .run_pipelined(w, SimDuration::from_millis(2))
}

/// Tentpole acceptance: `run_pipelined` produces byte-identical
/// metrics whether fed the materialized trace or the stream — on the
/// legacy engine and on the sharded engine.
#[test]
fn pipelined_replay_identical_for_stream_and_materialized() {
    let cfg = WebTraceConfig::default().with_unique_files(1_000);
    let trace = cfg.generate();
    let stream = cfg.stream();
    for shards in [0usize, 2] {
        let m = run_replay(&trace, shards, 1);
        let s = run_replay(&stream, shards, 1);
        assert_eq!(
            metric_surface(&m),
            metric_surface(&s),
            "stream replay diverged at shards={shards}"
        );
        // The per-record vectors agree too (same completion order).
        assert_eq!(m.inserts.len(), s.inserts.len());
        assert_eq!(m.lookups.len(), s.lookups.len());
    }
}

/// Record sampling thins the per-event vectors without touching the
/// exact aggregate counters the XL rows report.
#[test]
fn record_sampling_preserves_exact_counters() {
    let cfg = WebTraceConfig::default().with_unique_files(800);
    let stream = cfg.stream();
    let full = run_replay(&stream, 0, 1);
    let thinned = run_replay(&stream, 0, 16);
    assert_eq!(metric_surface(&full), metric_surface(&thinned));
    assert!(
        thinned.inserts.len() < full.inserts.len() / 8,
        "sampling must thin the insert records ({} vs {})",
        thinned.inserts.len(),
        full.inserts.len()
    );
    assert!(thinned.lookups.len() < full.lookups.len());
    assert_eq!(
        full.inserts.len() as u64,
        full.inserts_total,
        "unsampled runs record every completion"
    );
}
