//! Shard-count determinism: the same seed must produce byte-identical
//! metrics reports and identical perf counters at any shard count.
//!
//! This is the contract the sharded engine is built around (per-node
//! RNG streams, shard-invariant event keys, deterministic merge at the
//! barrier) — and the gate that lets perf numbers from `--shards 8` be
//! compared against `--shards 1` at all.

use past_net::SimDuration;
use past_sim::{ChurnConfig, ChurnRunner, ExperimentConfig, Runner, TopologyKind};
use past_workload::{Trace, WebTraceConfig};

fn trace() -> Trace {
    WebTraceConfig::default().with_unique_files(300).generate()
}

fn runner_cfg(shards: usize) -> ExperimentConfig {
    ExperimentConfig {
        nodes: 25,
        leaf_set_size: 16,
        topology: TopologyKind::Euclidean,
        seed: 2001,
        replay_lookups: true,
        shards,
        ..Default::default()
    }
}

/// Every observable a perf comparison would read: the paper-facing
/// aggregates plus the network counters (all shard-invariant by design;
/// `queue_peak` is excluded — it is documented as per-shard-summed).
fn runner_fingerprint(shards: usize) -> (String, Vec<u64>) {
    let t = trace();
    let result = Runner::build(runner_cfg(shards), &t)
        .with_metrics(&format!("sharded_det_{shards}"), 100)
        .run(&t);
    let net = result.net;
    let counters = vec![
        net.events,
        net.delivered,
        net.dropped,
        net.timers_fired,
        result.inserts.len() as u64,
        result.inserts.iter().filter(|i| i.success).count() as u64,
        result.lookups.len() as u64,
        result.lookups.iter().filter(|l| l.found).count() as u64,
        result.replicas_stored,
        result.replicas_diverted,
        result.stored_bytes,
    ];
    let mut json = result.metrics_json.expect("metrics enabled");
    // The report header embeds the label (which encodes the shard
    // count, so files don't collide); normalize it before comparing.
    json = json.replace(&format!("sharded_det_{shards}"), "sharded_det");
    (json, counters)
}

#[test]
fn trace_replay_is_shard_count_invariant() {
    let (json1, counters1) = runner_fingerprint(1);
    assert!(counters1[1] > 0, "workload must deliver messages");
    assert!(counters1[5] > 0, "workload must complete inserts");
    for shards in [2usize, 4, 8] {
        let (json, counters) = runner_fingerprint(shards);
        assert_eq!(
            counters1, counters,
            "perf counters diverged at {shards} shards"
        );
        assert_eq!(
            json1, json,
            "metrics report not byte-identical at {shards} shards"
        );
    }
}

/// The open-loop replay (the mode the perf sweep measures) must be as
/// shard-invariant as the per-op replay: injection times are absolute
/// sim times, and completions are attributed by `(client, seq)`.
#[test]
fn pipelined_replay_is_shard_count_invariant() {
    let t = trace();
    let fingerprint = |shards: usize| {
        let result =
            Runner::build(runner_cfg(shards), &t).run_pipelined(&t, SimDuration::from_millis(2));
        (
            result.net.events,
            result.net.delivered,
            result.inserts.len() as u64,
            result.inserts.iter().filter(|i| i.success).count() as u64,
            result.lookups.len() as u64,
            result.lookups.iter().filter(|l| l.found).count() as u64,
            result.replicas_stored,
            result.stored_bytes,
        )
    };
    let base = fingerprint(1);
    assert!(base.3 > 0, "pipelined replay must complete inserts");
    assert!(base.5 > 0, "pipelined replay must complete lookups");
    for shards in [2usize, 4, 8] {
        assert_eq!(
            base,
            fingerprint(shards),
            "pipelined counters diverged at {shards} shards"
        );
    }
}

fn churn_fingerprint(shards: usize) -> (String, Vec<u64>) {
    let cfg = ChurnConfig {
        nodes: 20,
        seed: 11,
        files: 5,
        shards,
        ..Default::default()
    };
    let mut r = ChurnRunner::build(cfg);
    r.enable_metrics(&format!("sharded_churn_det_{shards}"));
    let inserted = r.insert_files();
    r.snapshot_metrics();
    let plan = r.poisson_plan(
        SimDuration::from_secs(60),
        SimDuration::from_secs(20),
        SimDuration::from_secs(120),
    );
    r.run_with_faults(plan, SimDuration::from_secs(120));
    r.lookup_round(10, SimDuration::from_secs(1));
    r.heal(SimDuration::from_secs(30));
    let audit = r.audit();
    let (attempted, ok) = r.lookup_totals();
    let net = r.net_stats();
    let mut json = r.finish_metrics().expect("metrics enabled");
    json = json.replace(&format!("sharded_churn_det_{shards}"), "sharded_churn_det");
    let counters = vec![
        inserted as u64,
        attempted as u64,
        ok as u64,
        net.events,
        net.delivered,
        net.dropped,
        net.timers_fired,
        net.crashes,
        net.recoveries,
        audit.live_nodes as u64,
        audit.under_replicated.len() as u64,
        audit.quota_used,
    ];
    (json, counters)
}

#[test]
fn churn_run_is_shard_count_invariant() {
    let (json1, counters1) = churn_fingerprint(1);
    assert!(counters1[7] > 0, "churn must crash nodes");
    for shards in [2usize, 4, 8] {
        let (json, counters) = churn_fingerprint(shards);
        assert_eq!(
            counters1, counters,
            "churn counters diverged at {shards} shards"
        );
        assert_eq!(
            json1, json,
            "churn metrics report not byte-identical at {shards} shards"
        );
    }
}

/// One adversarial churn run with the full defense stack armed:
/// sampled audits, lookup content verification, reliability tracking,
/// and routing-table demotion. Every observable the byzantine bench
/// reads goes into the fingerprint.
fn byz_fingerprint(shards: usize, fraction: f64, audits: bool) -> Vec<u64> {
    let mut cfg = ChurnConfig {
        nodes: 20,
        seed: 7,
        files: 6,
        shards,
        ..Default::default()
    };
    if audits {
        cfg.past.audit_period = SimDuration::from_secs(10);
        cfg.past.audit_timeout = SimDuration::from_secs(2);
        cfg.past.verify_lookup_content = true;
        cfg.pastry.track_reliability = true;
        cfg.pastry.demote_unreliable = true;
    }
    let mut r = ChurnRunner::build(cfg);
    let inserted = r.insert_files() as u64;
    let plan = r.byzantine_plan(fraction);
    r.apply_byzantine(&plan);
    r.run_for(SimDuration::from_secs(90));
    r.discard_upcalls();
    let found = r.lookup_round(12, SimDuration::from_secs(1)) as u64;
    let audit = r.audit();
    let (challenges, passed, failed, timeouts) = r.audit_totals();
    let shunned: u64 = r
        .entries()
        .iter()
        .filter_map(|e| r.engine().node(e.addr))
        .map(|n| n.shunned().len() as u64)
        .sum();
    let detection = r.detection_latency().map(|d| d.micros()).unwrap_or(0);
    let net = r.net_stats();
    vec![
        inserted,
        found,
        r.corrupted_lookups(),
        challenges,
        passed,
        failed,
        timeouts,
        detection,
        shunned,
        net.events,
        net.delivered,
        net.timers_fired,
        audit.live_nodes as u64,
        audit.byzantine_nodes as u64,
        audit.replicas_on_malicious as u64,
    ]
}

/// Adversarial regression: a fixed-seed byzantine run (20% malicious,
/// audits + verification + demotion all armed) must produce identical
/// observables on the legacy engine and at every shard count. The
/// defense layer draws no engine randomness (audit nonces and holder
/// sampling are hash-derived), so this must hold exactly.
#[test]
fn byzantine_run_is_shard_count_invariant() {
    let base = byz_fingerprint(0, 0.2, true);
    assert!(base[3] > 0, "audits must issue challenges");
    assert!(base[5] + base[6] > 0, "the adversary must be detected");
    for shards in [1usize, 2, 4] {
        assert_eq!(
            base,
            byz_fingerprint(shards, 0.2, true),
            "byzantine run diverged at {shards} shards"
        );
    }
}

/// With the adversary fraction at zero and every defense knob off, the
/// byzantine plumbing must be completely inert: the sharded run stays
/// byte-identical to the legacy engine.
#[test]
fn byzantine_off_run_matches_legacy_engine() {
    let base = byz_fingerprint(0, 0.0, false);
    assert_eq!(base[2], 0, "no adversary, no corrupted lookups");
    assert_eq!(base[3], 0, "audits off, no challenges");
    for shards in [1usize, 2] {
        assert_eq!(
            base,
            byz_fingerprint(shards, 0.0, false),
            "defense-off run diverged from legacy at {shards} shards"
        );
    }
}

/// The gated trace workloads (certificate verification off, randomized
/// routing off, no loss/jitter) consume no simulator randomness, so the
/// sharded engine's per-node RNG streams are behaviorally inert there —
/// and its results must agree with the legacy engine's paper-facing
/// aggregates exactly.
#[test]
fn sharded_engine_matches_legacy_on_gated_trace_workload() {
    let t = trace();
    let legacy = Runner::build(runner_cfg(0), &t).run(&t);
    let sharded = Runner::build(runner_cfg(1), &t).run(&t);
    assert_eq!(legacy.inserts.len(), sharded.inserts.len());
    assert_eq!(
        legacy.inserts.iter().filter(|i| i.success).count(),
        sharded.inserts.iter().filter(|i| i.success).count()
    );
    assert_eq!(legacy.lookups.len(), sharded.lookups.len());
    assert_eq!(
        legacy.lookups.iter().filter(|l| l.found).count(),
        sharded.lookups.iter().filter(|l| l.found).count()
    );
    assert_eq!(legacy.replicas_stored, sharded.replicas_stored);
    assert_eq!(legacy.stored_bytes, sharded.stored_bytes);
    assert_eq!(legacy.net.delivered, sharded.net.delivered);
    assert_eq!(legacy.net.events, sharded.net.events);
}
