//! Shard-count determinism: the same seed must produce byte-identical
//! metrics reports and identical perf counters at any shard count.
//!
//! This is the contract the sharded engine is built around (per-node
//! RNG streams, shard-invariant event keys, deterministic merge at the
//! barrier) — and the gate that lets perf numbers from `--shards 8` be
//! compared against `--shards 1` at all.

use past_net::SimDuration;
use past_sim::{ChurnConfig, ChurnRunner, ExperimentConfig, Runner, TopologyKind};
use past_workload::{Trace, WebTraceConfig};

fn trace() -> Trace {
    WebTraceConfig::default().with_unique_files(300).generate()
}

fn runner_cfg(shards: usize) -> ExperimentConfig {
    ExperimentConfig {
        nodes: 25,
        leaf_set_size: 16,
        topology: TopologyKind::Euclidean,
        seed: 2001,
        replay_lookups: true,
        shards,
        ..Default::default()
    }
}

/// Every observable a perf comparison would read: the paper-facing
/// aggregates plus the network counters (all shard-invariant by design;
/// `queue_peak` is excluded — it is documented as per-shard-summed).
fn runner_fingerprint(shards: usize) -> (String, Vec<u64>) {
    let t = trace();
    let result = Runner::build(runner_cfg(shards), &t)
        .with_metrics(&format!("sharded_det_{shards}"), 100)
        .run(&t);
    let net = result.net;
    let counters = vec![
        net.events,
        net.delivered,
        net.dropped,
        net.timers_fired,
        result.inserts.len() as u64,
        result.inserts.iter().filter(|i| i.success).count() as u64,
        result.lookups.len() as u64,
        result.lookups.iter().filter(|l| l.found).count() as u64,
        result.replicas_stored,
        result.replicas_diverted,
        result.stored_bytes,
    ];
    let mut json = result.metrics_json.expect("metrics enabled");
    // The report header embeds the label (which encodes the shard
    // count, so files don't collide); normalize it before comparing.
    json = json.replace(&format!("sharded_det_{shards}"), "sharded_det");
    (json, counters)
}

#[test]
fn trace_replay_is_shard_count_invariant() {
    let (json1, counters1) = runner_fingerprint(1);
    assert!(counters1[1] > 0, "workload must deliver messages");
    assert!(counters1[5] > 0, "workload must complete inserts");
    for shards in [2usize, 4, 8] {
        let (json, counters) = runner_fingerprint(shards);
        assert_eq!(
            counters1, counters,
            "perf counters diverged at {shards} shards"
        );
        assert_eq!(
            json1, json,
            "metrics report not byte-identical at {shards} shards"
        );
    }
}

/// The open-loop replay (the mode the perf sweep measures) must be as
/// shard-invariant as the per-op replay: injection times are absolute
/// sim times, and completions are attributed by `(client, seq)`.
#[test]
fn pipelined_replay_is_shard_count_invariant() {
    let t = trace();
    let fingerprint = |shards: usize| {
        let result =
            Runner::build(runner_cfg(shards), &t).run_pipelined(&t, SimDuration::from_millis(2));
        (
            result.net.events,
            result.net.delivered,
            result.inserts.len() as u64,
            result.inserts.iter().filter(|i| i.success).count() as u64,
            result.lookups.len() as u64,
            result.lookups.iter().filter(|l| l.found).count() as u64,
            result.replicas_stored,
            result.stored_bytes,
        )
    };
    let base = fingerprint(1);
    assert!(base.3 > 0, "pipelined replay must complete inserts");
    assert!(base.5 > 0, "pipelined replay must complete lookups");
    for shards in [2usize, 4, 8] {
        assert_eq!(
            base,
            fingerprint(shards),
            "pipelined counters diverged at {shards} shards"
        );
    }
}

fn churn_fingerprint(shards: usize) -> (String, Vec<u64>) {
    let cfg = ChurnConfig {
        nodes: 20,
        seed: 11,
        files: 5,
        shards,
        ..Default::default()
    };
    let mut r = ChurnRunner::build(cfg);
    r.enable_metrics(&format!("sharded_churn_det_{shards}"));
    let inserted = r.insert_files();
    r.snapshot_metrics();
    let plan = r.poisson_plan(
        SimDuration::from_secs(60),
        SimDuration::from_secs(20),
        SimDuration::from_secs(120),
    );
    r.run_with_faults(plan, SimDuration::from_secs(120));
    r.lookup_round(10, SimDuration::from_secs(1));
    r.heal(SimDuration::from_secs(30));
    let audit = r.audit();
    let (attempted, ok) = r.lookup_totals();
    let net = r.net_stats();
    let mut json = r.finish_metrics().expect("metrics enabled");
    json = json.replace(&format!("sharded_churn_det_{shards}"), "sharded_churn_det");
    let counters = vec![
        inserted as u64,
        attempted as u64,
        ok as u64,
        net.events,
        net.delivered,
        net.dropped,
        net.timers_fired,
        net.crashes,
        net.recoveries,
        audit.live_nodes as u64,
        audit.under_replicated.len() as u64,
        audit.quota_used,
    ];
    (json, counters)
}

#[test]
fn churn_run_is_shard_count_invariant() {
    let (json1, counters1) = churn_fingerprint(1);
    assert!(counters1[7] > 0, "churn must crash nodes");
    for shards in [2usize, 4, 8] {
        let (json, counters) = churn_fingerprint(shards);
        assert_eq!(
            counters1, counters,
            "churn counters diverged at {shards} shards"
        );
        assert_eq!(
            json1, json,
            "churn metrics report not byte-identical at {shards} shards"
        );
    }
}

/// The gated trace workloads (certificate verification off, randomized
/// routing off, no loss/jitter) consume no simulator randomness, so the
/// sharded engine's per-node RNG streams are behaviorally inert there —
/// and its results must agree with the legacy engine's paper-facing
/// aggregates exactly.
#[test]
fn sharded_engine_matches_legacy_on_gated_trace_workload() {
    let t = trace();
    let legacy = Runner::build(runner_cfg(0), &t).run(&t);
    let sharded = Runner::build(runner_cfg(1), &t).run(&t);
    assert_eq!(legacy.inserts.len(), sharded.inserts.len());
    assert_eq!(
        legacy.inserts.iter().filter(|i| i.success).count(),
        sharded.inserts.iter().filter(|i| i.success).count()
    );
    assert_eq!(legacy.lookups.len(), sharded.lookups.len());
    assert_eq!(
        legacy.lookups.iter().filter(|l| l.found).count(),
        sharded.lookups.iter().filter(|l| l.found).count()
    );
    assert_eq!(legacy.replicas_stored, sharded.replicas_stored);
    assert_eq!(legacy.stored_bytes, sharded.stored_bytes);
    assert_eq!(legacy.net.delivered, sharded.net.delivered);
    assert_eq!(legacy.net.events, sharded.net.events);
}
