//! Determinism regression for the observability layer: the metrics
//! report a run emits must be a pure function of the seed. Two runs of
//! the same configuration must produce byte-identical JSON (the file on
//! disk included); changing the seed must change the recorded behaviour.

use past_net::SimDuration;
use past_sim::{ChurnConfig, ChurnRunner, ExperimentConfig, Runner};
use past_workload::WebTraceConfig;

fn run_small_experiment(seed: u64, label: &str) -> String {
    let trace = WebTraceConfig::default().with_unique_files(500).generate();
    let cfg = ExperimentConfig {
        nodes: 25,
        leaf_set_size: 16,
        seed,
        ..Default::default()
    };
    let result = Runner::build(cfg, &trace)
        .with_metrics(label, 100)
        .run(&trace);
    result.metrics_json.expect("with_metrics was enabled")
}

/// Removes the `"seed":N` field so cross-seed comparisons check the
/// recorded behaviour, not the trivially-different run identity.
fn without_seed_field(json: &str, seed: u64) -> String {
    let needle = format!("\"seed\":{seed},");
    assert!(json.contains(&needle), "report must carry its seed");
    json.replacen(&needle, "", 1)
}

#[test]
fn experiment_metrics_byte_identical_for_same_seed() {
    let a = run_small_experiment(2001, "det_same");
    let b = run_small_experiment(2001, "det_same");
    assert_eq!(a, b, "same seed must reproduce the metrics byte-for-byte");

    // The emitted file is the same document plus a trailing newline.
    let on_disk = std::fs::read_to_string("results/metrics_det_same.json")
        .expect("runner wrote results/metrics_det_same.json");
    assert_eq!(on_disk, format!("{a}\n"));
    let _ = std::fs::remove_file("results/metrics_det_same.json");
}

#[test]
fn experiment_metrics_differ_across_seeds() {
    let a = run_small_experiment(2001, "det_seed");
    let b = run_small_experiment(2002, "det_seed");
    assert_ne!(
        without_seed_field(&a, 2001),
        without_seed_field(&b, 2002),
        "different seeds must change the recorded behaviour, not just the seed field"
    );
    let _ = std::fs::remove_file("results/metrics_det_seed.json");
}

fn run_churn_scenario(seed: u64, label: &str) -> String {
    let cfg = ChurnConfig {
        nodes: 20,
        files: 5,
        seed,
        ..Default::default()
    };
    let mut r = ChurnRunner::build(cfg);
    r.enable_metrics(label);
    let inserted = r.insert_files();
    assert!(inserted > 0, "no insert succeeded");
    let plan = r.poisson_plan(
        SimDuration::from_secs(60),
        SimDuration::from_secs(15),
        SimDuration::from_secs(30),
    );
    r.run_with_faults(plan, SimDuration::from_secs(10));
    r.lookup_round(5, SimDuration::from_secs(2));
    r.snapshot_metrics();
    r.heal(SimDuration::from_secs(10));
    r.finish_metrics().expect("metrics were enabled")
}

#[test]
fn churn_metrics_byte_identical_for_same_seed() {
    let a = run_churn_scenario(11, "det_churn");
    let b = run_churn_scenario(11, "det_churn");
    assert_eq!(
        a, b,
        "same-seed churn runs must reproduce the metrics byte-for-byte"
    );
    assert_ne!(
        without_seed_field(&a, 11),
        without_seed_field(&run_churn_scenario(12, "det_churn"), 12),
        "churn metrics must be seed-sensitive"
    );
    let _ = std::fs::remove_file("results/metrics_det_churn.json");
}
