//! Warm-restart integration tests.
//!
//! Three contracts from the warm-restart work:
//!
//! - **over-replication reconciles**: a holder that rejoins after its
//!   replica was re-created elsewhere briefly yields k+1 copies; the
//!   advertise/`MigrationDone` reconciliation must deterministically
//!   drop the surplus back to k.
//! - **warm off stays deterministic**: with `warm_restart` off the same
//!   seed must reproduce the run exactly (byte-identical metrics), and
//!   no warm-restart machinery may fire.
//! - **engine parity**: a churn run with warm restarts on must produce
//!   identical results on the legacy engine and at any shard count.

use past_net::{FaultPlan, SimDuration};
use past_sim::{ChurnConfig, ChurnRunner};

fn warm_cfg(seed: u64, warm: bool, shards: usize) -> ChurnConfig {
    let mut cfg = ChurnConfig {
        nodes: 24,
        seed,
        files: 6,
        shards,
        ..Default::default()
    };
    // Arm the anti-entropy sweep: reconciliation rides on it.
    cfg.past.anti_entropy_period = SimDuration::from_secs(10);
    cfg.past.warm_restart = warm;
    cfg.pastry.warm_restart = warm;
    cfg.pastry.track_reliability = warm;
    cfg
}

/// Satellite regression: crash one replica holder long enough for the
/// survivors to re-create its copy (k restored among the living), then
/// let it rejoin warm. Its disk still holds the replica, so the overlay
/// briefly has k+1 copies; the advertise-then-`MigrationDone`
/// reconciliation must drop the surplus holder and settle back on
/// exactly k.
#[test]
fn recovered_holder_reconciles_over_replication() {
    let k = 5;
    let mut r = ChurnRunner::build(warm_cfg(42, true, 0));
    assert!(r.insert_files() > 0, "insert failed");
    let (fid, _) = r.files()[0];
    let holders = r.holders_of(fid);
    assert_eq!(holders.len(), k, "expected k initial holders");

    // Crash a non-client holder for 60 s: well past the 15 s failure
    // detector, so the survivors notice and re-replicate.
    let victim = *holders
        .iter()
        .find(|a| a.0 != 0)
        .expect("a non-client holder");
    let t = r.now();
    let plan = FaultPlan::new().restart_at(
        t + SimDuration::from_secs(1),
        victim,
        SimDuration::from_secs(60),
    );
    r.run_with_faults(plan, SimDuration::from_secs(45));

    // While the victim is down, the invariant is restored among the
    // survivors: k live copies, none of them the victim.
    let during = r.holders_of(fid);
    assert!(!during.contains(&victim), "victim must be down");
    assert_eq!(
        during.len(),
        k,
        "failure repair must restore k live copies"
    );

    // The victim recovers at t+61 s (the plan stays installed across
    // run_for); give the sweeps time to reconcile the k+1-th copy.
    r.run_for(SimDuration::from_secs(120));
    let after = r.holders_of(fid);
    assert_eq!(
        after.len(),
        k,
        "over-replication must reconcile back to k copies (got {:?})",
        after
    );
    let report = r.audit();
    assert!(
        report.under_replicated.is_empty(),
        "reconciliation must not drop below k: {:?}",
        report.under_replicated
    );
}

fn churn_outcome(seed: u64, warm: bool, shards: usize, label: &str) -> (String, Vec<u64>) {
    let mut r = ChurnRunner::build(warm_cfg(seed, warm, shards));
    r.enable_metrics(label);
    let inserted = r.insert_files();
    r.snapshot_metrics();
    let plan = r.poisson_plan(
        SimDuration::from_secs(60),
        SimDuration::from_secs(20),
        SimDuration::from_secs(120),
    );
    r.run_with_faults(plan, SimDuration::from_secs(60));
    r.lookup_round(10, SimDuration::from_secs(1));
    r.run_for(SimDuration::from_secs(60));
    r.heal(SimDuration::from_secs(30));
    let audit = r.audit();
    let (attempted, ok) = r.lookup_totals();
    let net = r.net_stats();
    let maint = r.maint_totals();
    let (restarts_warm, restarts_cold) = r.restart_totals();
    let json = r.finish_metrics().expect("metrics enabled");
    let counters = vec![
        inserted as u64,
        attempted as u64,
        ok as u64,
        net.events,
        net.delivered,
        net.dropped,
        net.timers_fired,
        net.crashes,
        net.recoveries,
        audit.live_nodes as u64,
        audit.under_replicated.len() as u64,
        audit.quota_used,
        maint.sent,
        maint.bytes_rereplication,
        maint.bytes_refresh,
        restarts_warm,
        restarts_cold,
    ];
    (json, counters)
}

/// With `warm_restart` off, the same seed reproduces the run exactly —
/// byte-identical metrics report, identical counters — and the warm
/// machinery stays inert (no warm restarts, no snapshot traffic).
#[test]
fn warm_off_runs_are_byte_identical() {
    let (json1, counters1) = churn_outcome(9, false, 0, "warm_off_det");
    let (json2, counters2) = churn_outcome(9, false, 0, "warm_off_det");
    assert_eq!(counters1, counters2, "warm-off run not deterministic");
    assert_eq!(json1, json2, "warm-off metrics not byte-identical");
    let restarts_warm = counters1[15];
    let restarts_cold = counters1[16];
    assert_eq!(restarts_warm, 0, "no warm restarts with the knob off");
    assert!(restarts_cold > 0, "churn must restart nodes");
}

/// A churn run with warm restarts on must be engine-independent: the
/// legacy single-threaded engine and the sharded engine at any shard
/// count produce identical counters and byte-identical metrics.
#[test]
fn warm_churn_matches_across_engines_and_shard_counts() {
    let (json0, counters0) = churn_outcome(7, true, 0, "warm_parity");
    let restarts_warm = counters0[15];
    assert!(restarts_warm > 0, "churn must warm-restart nodes");
    for shards in [1usize, 2, 4, 8] {
        let (json, counters) = churn_outcome(7, true, shards, "warm_parity");
        assert_eq!(
            counters0, counters,
            "warm churn counters diverged at {shards} shards"
        );
        assert_eq!(
            json0, json,
            "warm churn metrics not byte-identical at {shards} shards"
        );
    }
}
