//! Small-scale versions of the paper's experiments, validating that the
//! pipeline produces the qualitative shapes before the full-size bench
//! binaries run them at 2250 nodes.

use past_sim::{run_experiment, ExperimentConfig, TopologyKind};
use past_store::CachePolicyKind;
use past_workload::WebTraceConfig;

/// The behaviour of the t_pri/t_div policies depends on the ratio of
/// file sizes to node capacities. With overcommit fixed, that ratio is
/// `files × k / (overcommit × nodes)` — the paper's setup works out to
/// ~2700 (1.86 M files, 2250 nodes). Small-scale tests must preserve it,
/// which means roughly 830 unique files per node.
const FILES_PER_NODE: usize = 830;

fn small_trace(nodes: usize) -> past_workload::Trace {
    WebTraceConfig::default()
        .with_unique_files(nodes * FILES_PER_NODE)
        .generate()
}

fn small_cfg(nodes: usize) -> ExperimentConfig {
    ExperimentConfig {
        nodes,
        leaf_set_size: 16,
        ..Default::default()
    }
}

#[test]
fn storage_management_reaches_high_utilization() {
    let trace = small_trace(20);
    let result = run_experiment(small_cfg(20), &trace);
    assert!(
        result.final_utilization() > 0.80,
        "with diversion, utilization should exceed 80% (got {:.3})",
        result.final_utilization()
    );
    // At 20 nodes the leaf set spans most of the ring, so re-salting has
    // few fresh regions to divert into; the paper-scale run (2250 nodes)
    // reaches ~98% success, but small overlays land lower.
    assert!(
        result.success_ratio() > 0.80,
        "most inserts should succeed (got {:.3})",
        result.success_ratio()
    );
    assert!(result.replicas_diverted > 0, "diversion should engage");
}

#[test]
fn no_diversion_baseline_is_much_worse() {
    let trace = small_trace(20);
    let with = run_experiment(small_cfg(20), &trace);
    let without = run_experiment(small_cfg(20).no_diversion(), &trace);
    // The paper: 51.1% failures and 60.8% utilization without diversion,
    // versus >94% utilization and <3% failures with it.
    assert!(
        without.final_utilization() < with.final_utilization(),
        "baseline {:.3} vs diversion {:.3}",
        without.final_utilization(),
        with.final_utilization()
    );
    assert!(
        without.success_ratio() < with.success_ratio(),
        "baseline success {:.3} vs diversion {:.3}",
        without.success_ratio(),
        with.success_ratio()
    );
    assert!(
        without.success_ratio() < 0.85,
        "baseline should fail a large share of inserts (got {:.3})",
        without.success_ratio()
    );
}

#[test]
fn failures_concentrate_at_high_utilization_and_large_files() {
    let trace = small_trace(20);
    let result = run_experiment(small_cfg(20), &trace);
    let curve = result.cumulative_failure_curve(20);
    // Monotone non-decreasing by construction; low until ~80%.
    let at_60 = curve[12].1;
    let at_end = curve.last().unwrap().1;
    assert!(
        at_60 <= at_end,
        "cumulative failures cannot decrease ({at_60} vs {at_end})"
    );
    assert!(
        at_60 < 0.05,
        "failures at 60% utilization should be rare (got {at_60})"
    );
    // Failed files skew large: compare mean failed size to mean size.
    let failed = result.failure_scatter();
    if failed.len() >= 5 {
        let mean_failed = failed.iter().map(|(_, s)| *s).sum::<u64>() as f64 / failed.len() as f64;
        let mean_all = trace.mean_file_size();
        assert!(
            mean_failed > mean_all,
            "failures should skew toward large files ({mean_failed:.0} vs {mean_all:.0})"
        );
    }
}

#[test]
fn tpri_tradeoff_matches_table3_shape() {
    // Larger t_pri ⇒ higher final utilization but more failed inserts.
    let trace = small_trace(20);
    let strict = run_experiment(
        ExperimentConfig {
            t_pri: 0.05,
            ..small_cfg(20)
        },
        &trace,
    );
    let loose = run_experiment(
        ExperimentConfig {
            t_pri: 0.5,
            ..small_cfg(20)
        },
        &trace,
    );
    assert!(
        loose.final_utilization() >= strict.final_utilization() - 0.02,
        "t_pri=0.5 utilization {:.3} should be >= t_pri=0.05 {:.3}",
        loose.final_utilization(),
        strict.final_utilization()
    );
    assert!(
        loose.success_ratio() <= strict.success_ratio() + 0.02,
        "t_pri=0.5 success {:.3} should be <= t_pri=0.05 {:.3}",
        loose.success_ratio(),
        strict.success_ratio()
    );
}

#[test]
fn caching_improves_hops_over_no_caching() {
    let trace = WebTraceConfig::default().with_unique_files(800).generate();
    let base = ExperimentConfig {
        nodes: 120,
        leaf_set_size: 16,
        replay_lookups: true,
        topology: TopologyKind::Clustered { clusters: 8 },
        ..Default::default()
    };
    let gds = run_experiment(
        ExperimentConfig {
            cache_policy: CachePolicyKind::GreedyDualSize,
            ..base.clone()
        },
        &trace,
    );
    let none = run_experiment(
        ExperimentConfig {
            cache_policy: CachePolicyKind::None,
            ..base
        },
        &trace,
    );
    let mean_hops = |r: &past_sim::ExperimentResult| {
        let found: Vec<_> = r.lookups.iter().filter(|l| l.found).collect();
        assert!(!found.is_empty(), "no successful lookups");
        found.iter().map(|l| l.hops as f64).sum::<f64>() / found.len() as f64
    };
    let hops_gds = mean_hops(&gds);
    let hops_none = mean_hops(&none);
    assert!(
        hops_gds < hops_none,
        "caching should reduce fetch distance ({hops_gds:.2} vs {hops_none:.2})"
    );
    assert!(gds.lookup_hit_ratio() > 0.0, "GD-S never hit its cache");
    assert!(
        none.lookup_hit_ratio() == 0.0,
        "no-cache run recorded cache hits"
    );
}

#[test]
fn experiment_is_deterministic() {
    let trace = WebTraceConfig::default().with_unique_files(800).generate();
    let cfg = ExperimentConfig {
        nodes: 80,
        leaf_set_size: 16,
        ..Default::default()
    };
    let a = run_experiment(cfg.clone(), &trace);
    let b = run_experiment(cfg, &trace);
    assert_eq!(a.inserts.len(), b.inserts.len());
    assert_eq!(a.replicas_stored, b.replicas_stored);
    assert_eq!(a.stored_bytes, b.stored_bytes);
    assert!((a.final_utilization() - b.final_utilization()).abs() < 1e-12);
}
