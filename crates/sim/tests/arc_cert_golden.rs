//! Behavioural golden for the Arc-shared-certificate refactor (and any
//! later hot-path work): sharing certificates must change *zero*
//! protocol behaviour. The counter values pinned below were captured
//! from this exact workload before the refactor; any drift means an
//! optimization changed semantics, not just speed.

use past_sim::{ExperimentConfig, Runner};
use past_workload::{WebTraceConfig, Workload};

/// Extracts a counter's value from the *final* registry snapshot of a
/// metrics report (counters are cumulative, so the last occurrence is
/// the run total).
fn final_counter(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = json
        .rfind(&needle)
        .unwrap_or_else(|| panic!("counter {name} missing from report"));
    let rest = &json[at + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("counter value parses")
}

/// The PR 3 determinism harness workload, byte-for-byte: 500-file web
/// trace over 25 nodes, leaf set 16, seed 2001. `label` keeps the two
/// tests below off each other's metrics file.
fn run_golden_workload_on(w: &dyn Workload, label: &str) -> String {
    let cfg = ExperimentConfig {
        nodes: 25,
        leaf_set_size: 16,
        seed: 2001,
        ..Default::default()
    };
    let result = Runner::build(cfg, w).with_metrics(label, 100).run(w);
    let _ = std::fs::remove_file(format!("results/metrics_{label}.json"));
    result.metrics_json.expect("with_metrics was enabled")
}

fn run_golden_workload() -> String {
    let trace = WebTraceConfig::default().with_unique_files(500).generate();
    run_golden_workload_on(&trace, "golden_arc")
}

#[test]
fn shared_cert_refactor_preserves_protocol_behaviour() {
    let json = run_golden_workload();
    let golden: &[(&str, u64)] = &[
        ("past.insert.started", 500),
        ("past.insert.ok", 484),
        ("past.insert.fail", 16),
        ("past.insert.re_salt", 59),
        ("past.divert.requested", 334),
        ("store.replica.primary", 2461),
        ("store.replica.diverted", 51),
        ("store.replica.reject", 611),
        ("pastry.delivered", 423),
        ("net.sent", 7023),
        ("net.delivered", 7023),
    ];
    let mut mismatches = String::new();
    for (name, want) in golden {
        let got = final_counter(&json, name);
        if got != *want {
            mismatches.push_str(&format!("        (\"{name}\", {got}),\n"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden counters drifted — protocol behaviour changed:\n{mismatches}"
    );
}

/// The streaming workload must be *invisible* to the golden harness:
/// feeding the same config through [`WebTraceConfig::stream`] instead
/// of materializing the trace yields a byte-identical metrics report
/// (same counters, same histogram buckets, same snapshot cadence).
#[test]
fn streaming_workload_reproduces_golden_metrics_byte_for_byte() {
    let cfg = WebTraceConfig::default().with_unique_files(500);
    let materialized = run_golden_workload_on(&cfg.generate(), "golden_arc_mat");
    let streamed = run_golden_workload_on(&cfg.stream(), "golden_arc_stream");
    // The label leaks into the report header; mask it before comparing.
    let materialized = materialized.replace("golden_arc_mat", "golden_arc");
    let streamed = streamed.replace("golden_arc_stream", "golden_arc");
    assert_eq!(
        materialized, streamed,
        "streaming replay produced a different metrics report"
    );
}
