//! Robustness: self-healing maintenance under deterministic fault
//! plans, checked by the global invariant auditor.
//!
//! The central scenario kills replica holders and then opens a network
//! partition exactly over the window in which the survivors detect the
//! failures and ship their repairs. With fire-and-forget maintenance
//! the repair messages die in the partition and the working set stays
//! under-replicated forever; with acked retries the retransmissions
//! outlive the partition and the k-copies invariant is restored.

use past_net::{Addr, FaultPlan, SimDuration};
use past_sim::{ChurnConfig, ChurnRunner, InvariantReport, CLIENT};

fn scenario_cfg(acked: bool) -> ChurnConfig {
    let mut cfg = ChurnConfig {
        nodes: 30,
        files: 6,
        seed: 11,
        ..Default::default()
    };
    // A 25 s failure timeout keeps the 14 s partition (plus keep-alive
    // staleness) safely below the detection threshold: the cut must not
    // trigger spurious failure detections, whose repairs would re-create
    // the working set on each side of the cut independently.
    cfg.pastry.failure_timeout = SimDuration::from_secs(25);
    if !acked {
        cfg.past.maint_ack_timeout = SimDuration::ZERO;
    }
    cfg
}

/// Builds the overlay, inserts the working set, and permanently kills
/// two of its replica holders. Returns the runner, the per-file holder
/// sets at kill time, and the kill timestamp.
fn build_and_kill(acked: bool) -> (ChurnRunner, Vec<Vec<Addr>>, past_net::SimTime) {
    let mut r = ChurnRunner::build(scenario_cfg(acked));
    let inserted = r.insert_files();
    assert!(inserted >= 4, "only {inserted} inserts succeeded");
    assert!(
        r.audit().is_clean(),
        "pre-churn audit must be clean: {}",
        r.audit().summary()
    );
    let mut victims: Vec<Addr> = Vec::new();
    for &(fid, _) in r.files() {
        for h in r.holders_of(fid) {
            if h != CLIENT && !victims.contains(&h) {
                victims.push(h);
            }
            if victims.len() == 2 {
                break;
            }
        }
        if victims.len() == 2 {
            break;
        }
    }
    assert_eq!(victims.len(), 2, "need two non-client holders to kill");
    let holders_before: Vec<Vec<Addr>> = r.files().iter().map(|&(f, _)| r.holders_of(f)).collect();
    let t0 = r.now();
    for &v in &victims {
        r.sim_mut().remove_node(v);
    }
    (r, holders_before, t0)
}

/// Observation pass: let the repairs complete unimpeded and report
/// which nodes they re-created replicas on. Deterministic in the seed,
/// so a second run of the same scenario repairs onto the same targets.
fn observe_repair_targets(acked: bool) -> Vec<Addr> {
    let (mut r, before, _) = build_and_kill(acked);
    r.run_with_faults(FaultPlan::new(), SimDuration::from_secs(60));
    let mut targets: Vec<Addr> = Vec::new();
    for (i, &(fid, _)) in r.files().iter().enumerate() {
        for h in r.holders_of(fid) {
            if !before[i].contains(&h) && !targets.contains(&h) {
                targets.push(h);
            }
        }
    }
    targets
}

/// Runs the kill + partition scenario; `acked` arms the reliable
/// maintenance plane (the only difference between the two runs). The
/// partition isolates every node the repairs will target — every
/// survivor's re-replication attempt dies on the wire — over exactly
/// the window in which the failures are detected.
fn kill_and_partition(acked: bool) -> (ChurnRunner, InvariantReport) {
    let targets = observe_repair_targets(acked);
    assert!(
        !targets.is_empty(),
        "repairs must re-create replicas somewhere"
    );
    let (mut r, _, t0) = build_and_kill(acked);
    // Failure detection happens 20–30 s after the kill (failure timeout
    // 25 s, minus up to 5 s of keep-alive staleness, plus sweep phase);
    // the partition covers that window, so the repairs the detection
    // triggers are lost on the wire.
    let plan = FaultPlan::new().partition(
        t0 + SimDuration::from_secs(18),
        t0 + SimDuration::from_secs(32),
        targets,
    );
    r.run_with_faults(plan, SimDuration::from_secs(45));
    r.heal(SimDuration::from_secs(60));
    let report = r.audit();
    (r, report)
}

#[test]
fn acked_retries_restore_invariants_after_partition() {
    let (r, report) = kill_and_partition(true);
    assert!(
        report.under_replicated.is_empty(),
        "acked maintenance left files under-replicated: {}",
        report.summary()
    );
    assert!(report.is_clean(), "audit violations: {}", report.summary());
    let maint = r.maint_totals();
    assert!(
        maint.retries > 0,
        "the partition must have forced maintenance retransmissions"
    );
    assert!(
        r.net_stats().partition_dropped > 0,
        "the partition never dropped a message — scenario miscalibrated"
    );
}

#[test]
fn fire_and_forget_maintenance_loses_repairs() {
    let (r, report) = kill_and_partition(false);
    assert!(
        r.net_stats().partition_dropped > 0,
        "the partition never dropped a message — scenario miscalibrated"
    );
    assert!(
        !report.under_replicated.is_empty(),
        "without acks the partition-eaten repairs must leave \
         under-replication: {}",
        report.summary()
    );
}

#[test]
fn poisson_churn_with_acked_maintenance_keeps_files_available() {
    let mut cfg = ChurnConfig {
        nodes: 25,
        files: 5,
        seed: 5,
        ..Default::default()
    };
    // Anti-entropy sweeps give abandoned repairs a second chance during
    // sustained churn (bounded runs only — see the config docs).
    cfg.past.anti_entropy_period = SimDuration::from_secs(10);
    let mut r = ChurnRunner::build(cfg);
    let inserted = r.insert_files();
    assert!(inserted >= 3, "only {inserted} inserts succeeded");

    let plan = r.poisson_plan(
        SimDuration::from_secs(120),
        SimDuration::from_secs(15),
        SimDuration::from_secs(60),
    );
    r.run_with_faults(plan, SimDuration::from_secs(60));
    // Lookups from live nodes while churn is still settling.
    let ok = r.lookup_round(10, SimDuration::from_secs(2));
    assert!(ok > 0, "no lookup succeeded under churn");

    r.heal(SimDuration::from_secs(60));
    let report = r.audit();
    assert!(
        report.under_replicated.is_empty(),
        "churn survivors under-replicated after heal: {}",
        report.summary()
    );
    assert_eq!(
        report.quota_used,
        report.quota_expected,
        "quota not conserved: {}",
        report.summary()
    );
}
