//! File certificates, reclaim certificates and store receipts.
//!
//! PAST's insert protocol (paper §2.2) issues a *file certificate* signed
//! with the owner's private key; it contains the fileId, a SHA-1 hash of
//! the file content, the replication factor k, the salt, and a creation
//! date. Storage nodes verify the certificate before accepting a replica
//! and attach a signed *store receipt* to the acknowledgment. A *reclaim
//! certificate* proves to replica holders that the file's legitimate owner
//! requested reclamation, and *reclaim receipts* let the client credit its
//! quota.


use past_id::FileId;

use crate::memo::VerifyMemo;
use crate::sha1::{Digest, Sha1};
use crate::sign::{KeyPair, OwnerKey, PublicKey, Signature};

/// Errors arising from certificate verification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertError {
    /// The signature does not verify under the embedded public key.
    BadSignature,
    /// The fileId does not match SHA-1(name ‖ owner key ‖ salt).
    FileIdMismatch,
    /// The content hash in the certificate differs from the recomputed one.
    ContentMismatch,
    /// The replication factor is zero (no replica would ever exist).
    ZeroReplication,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::FileIdMismatch => write!(f, "fileId does not match name/owner/salt"),
            CertError::ContentMismatch => write!(f, "content hash mismatch"),
            CertError::ZeroReplication => write!(f, "replication factor is zero"),
        }
    }
}

impl std::error::Error for CertError {}

/// Computes a fileId as the SHA-1 of the file's textual name, the owner's
/// public key and a salt, exactly as §2.2 specifies.
///
/// Re-drawing the salt yields a new, quasi-uniform fileId — the mechanism
/// behind *file diversion* (§3.4).
pub fn compute_file_id(name: &str, owner: &PublicKey, salt: u64) -> FileId {
    let mut h = Sha1::new();
    h.update(name.as_bytes());
    h.update(&owner.to_bytes());
    h.update(&salt.to_be_bytes());
    h.finalize().to_file_id()
}

/// A signed file certificate accompanying every insert request.
#[derive(Clone, Debug)]
pub struct FileCertificate {
    /// Identifier derived from (name, owner, salt).
    pub file_id: FileId,
    /// SHA-1 hash of the file content.
    pub content_hash: Digest,
    /// File size in bytes (drives storage-management decisions).
    pub file_size: u64,
    /// Replication factor k.
    pub replicas: u32,
    /// Salt used in the fileId derivation; re-drawn on file diversion.
    pub salt: u64,
    /// Creation date (simulation time).
    pub created_at: u64,
    /// The owner's public key (interned: certificates from one owner
    /// share a single allocation — see [`OwnerKey`]).
    pub owner: OwnerKey,
    /// Owner's signature over all of the above.
    pub signature: Signature,
}

impl FileCertificate {
    /// Issues a certificate, signing it with `owner`.
    ///
    /// `name` is the file's textual name; the fileId is derived from it
    /// together with the owner key and `salt`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue<R: rand::Rng + ?Sized>(
        owner: &KeyPair,
        name: &str,
        content_hash: Digest,
        file_size: u64,
        replicas: u32,
        salt: u64,
        created_at: u64,
        rng: &mut R,
    ) -> Self {
        let mut cert =
            Self::issue_unsigned(owner, name, content_hash, file_size, replicas, salt, created_at);
        cert.signature = owner.sign(&cert.signing_bytes(), rng);
        cert
    }

    /// Issues a certificate with an all-zero signature, skipping the
    /// signature hash. For simulation runs that disable certificate
    /// verification: the fileId and every signed field are identical to
    /// [`FileCertificate::issue`]'s output, nothing there reads the
    /// signature bytes, and [`FileCertificate::verify`] rejects the
    /// certificate should verification ever be turned on (fail closed).
    #[allow(clippy::too_many_arguments)]
    pub fn issue_unsigned(
        owner: &KeyPair,
        name: &str,
        content_hash: Digest,
        file_size: u64,
        replicas: u32,
        salt: u64,
        created_at: u64,
    ) -> Self {
        let file_id = compute_file_id(name, &owner.public(), salt);
        FileCertificate {
            file_id,
            content_hash,
            file_size,
            replicas,
            salt,
            created_at,
            owner: owner.public_shared(),
            signature: Signature::Keyed(Digest([0u8; 20])),
        }
    }

    /// Serializes the signed fields.
    fn signing_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(96);
        v.extend_from_slice(b"PAST-FILE-CERT");
        v.extend_from_slice(self.file_id.as_bytes());
        v.extend_from_slice(self.content_hash.as_bytes());
        v.extend_from_slice(&self.file_size.to_be_bytes());
        v.extend_from_slice(&self.replicas.to_be_bytes());
        v.extend_from_slice(&self.salt.to_be_bytes());
        v.extend_from_slice(&self.created_at.to_be_bytes());
        v.extend_from_slice(&self.owner.to_bytes());
        v
    }

    /// Verifies the certificate as a storage node would before accepting a
    /// replica: signature, and optionally the recomputed content hash of
    /// the received bytes.
    pub fn verify(&self, received_content_hash: Option<Digest>) -> Result<(), CertError> {
        if self.replicas == 0 {
            return Err(CertError::ZeroReplication);
        }
        if !self.owner.verify(&self.signing_bytes(), &self.signature) {
            return Err(CertError::BadSignature);
        }
        if let Some(h) = received_content_hash {
            if h != self.content_hash {
                return Err(CertError::ContentMismatch);
            }
        }
        Ok(())
    }

    /// [`verify`](Self::verify) with memoized signature checking: the
    /// signature predicate is skipped when `memo` has already seen this
    /// exact `(signing bytes, signature)` pair verify. The
    /// zero-replication and content-hash checks are relational (they
    /// depend on state outside the certificate) and always run.
    pub fn verify_memo(
        &self,
        received_content_hash: Option<Digest>,
        memo: &mut VerifyMemo,
    ) -> Result<(), CertError> {
        if self.replicas == 0 {
            return Err(CertError::ZeroReplication);
        }
        let bytes = self.signing_bytes();
        let key = VerifyMemo::key(&bytes, &self.signature);
        if !memo.check(key, || self.owner.verify(&bytes, &self.signature)) {
            return Err(CertError::BadSignature);
        }
        if let Some(h) = received_content_hash {
            if h != self.content_hash {
                return Err(CertError::ContentMismatch);
            }
        }
        Ok(())
    }

    /// Verifies additionally that the fileId matches the (name, owner,
    /// salt) derivation — used by tests and by clients validating their own
    /// certificates.
    pub fn verify_file_id(&self, name: &str) -> Result<(), CertError> {
        if compute_file_id(name, &self.owner, self.salt) != self.file_id {
            return Err(CertError::FileIdMismatch);
        }
        Ok(())
    }
}

/// A signed reclaim certificate (paper §2.2): proves the legitimate owner
/// requested that the file's storage be reclaimed.
#[derive(Clone, Debug)]
pub struct ReclaimCertificate {
    /// The file to reclaim.
    pub file_id: FileId,
    /// Issue date (simulation time).
    pub issued_at: u64,
    /// The owner's public key (interned).
    pub owner: OwnerKey,
    /// Owner's signature.
    pub signature: Signature,
}

impl ReclaimCertificate {
    /// Issues a reclaim certificate signed by `owner`.
    pub fn issue<R: rand::Rng + ?Sized>(
        owner: &KeyPair,
        file_id: FileId,
        issued_at: u64,
        rng: &mut R,
    ) -> Self {
        let mut cert = Self::issue_unsigned(owner, file_id, issued_at);
        cert.signature = owner.sign(&cert.signing_bytes(), rng);
        cert
    }

    /// All-zero-signature variant for runs with verification disabled;
    /// see [`FileCertificate::issue_unsigned`].
    pub fn issue_unsigned(owner: &KeyPair, file_id: FileId, issued_at: u64) -> Self {
        ReclaimCertificate {
            file_id,
            issued_at,
            owner: owner.public_shared(),
            signature: Signature::Keyed(Digest([0u8; 20])),
        }
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"PAST-RECLAIM-CERT");
        v.extend_from_slice(self.file_id.as_bytes());
        v.extend_from_slice(&self.issued_at.to_be_bytes());
        v.extend_from_slice(&self.owner.to_bytes());
        v
    }

    /// Verifies the signature, and that the certificate's owner matches
    /// the owner recorded in the stored file certificate.
    pub fn verify(&self, stored: &FileCertificate) -> Result<(), CertError> {
        if self.owner != stored.owner {
            return Err(CertError::BadSignature);
        }
        if !self.owner.verify(&self.signing_bytes(), &self.signature) {
            return Err(CertError::BadSignature);
        }
        Ok(())
    }

    /// [`verify`](Self::verify) with memoized signature checking. The
    /// owner-equality check binds this certificate to the *stored* file
    /// certificate, so it is re-evaluated on every call; only the
    /// signature predicate — a pure function of this certificate — is
    /// memoized.
    pub fn verify_memo(
        &self,
        stored: &FileCertificate,
        memo: &mut VerifyMemo,
    ) -> Result<(), CertError> {
        if self.owner != stored.owner {
            return Err(CertError::BadSignature);
        }
        let bytes = self.signing_bytes();
        let key = VerifyMemo::key(&bytes, &self.signature);
        if memo.check(key, || self.owner.verify(&bytes, &self.signature)) {
            Ok(())
        } else {
            Err(CertError::BadSignature)
        }
    }
}

/// A store receipt issued by each node accepting a replica; the client
/// verifies k receipts to confirm the requested number of copies exist.
#[derive(Clone, Debug)]
pub struct StoreReceipt {
    /// File the receipt covers.
    pub file_id: FileId,
    /// Public key of the storing node (interned).
    pub storer: OwnerKey,
    /// Whether this copy is held as a diverted replica.
    pub diverted: bool,
    /// Issue time.
    pub issued_at: u64,
    /// Storer's signature.
    pub signature: Signature,
}

impl StoreReceipt {
    /// Issues a receipt signed by the storing node's key.
    pub fn issue<R: rand::Rng + ?Sized>(
        storer: &KeyPair,
        file_id: FileId,
        diverted: bool,
        issued_at: u64,
        rng: &mut R,
    ) -> Self {
        let mut receipt = Self::issue_unsigned(storer, file_id, diverted, issued_at);
        receipt.signature = storer.sign(&receipt.signing_bytes(), rng);
        receipt
    }

    /// All-zero-signature variant for runs with verification disabled;
    /// see [`FileCertificate::issue_unsigned`].
    pub fn issue_unsigned(storer: &KeyPair, file_id: FileId, diverted: bool, issued_at: u64) -> Self {
        StoreReceipt {
            file_id,
            storer: storer.public_shared(),
            diverted,
            issued_at,
            signature: Signature::Keyed(Digest([0u8; 20])),
        }
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"PAST-STORE-RECEIPT");
        v.extend_from_slice(self.file_id.as_bytes());
        v.extend_from_slice(&self.storer.to_bytes());
        v.push(self.diverted as u8);
        v.extend_from_slice(&self.issued_at.to_be_bytes());
        v
    }

    /// Verifies the receipt's signature.
    pub fn verify(&self) -> Result<(), CertError> {
        if self.storer.verify(&self.signing_bytes(), &self.signature) {
            Ok(())
        } else {
            Err(CertError::BadSignature)
        }
    }

    /// [`verify`](Self::verify) with memoized signature checking.
    pub fn verify_memo(&self, memo: &mut VerifyMemo) -> Result<(), CertError> {
        let bytes = self.signing_bytes();
        let key = VerifyMemo::key(&bytes, &self.signature);
        if memo.check(key, || self.storer.verify(&bytes, &self.signature)) {
            Ok(())
        } else {
            Err(CertError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sign::Scheme;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (StdRng, KeyPair) {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(Scheme::Keyed, &mut rng);
        (rng, kp)
    }

    #[test]
    fn file_certificate_roundtrip() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"file body");
        let cert = FileCertificate::issue(&owner, "report.pdf", content, 4096, 5, 1, 100, &mut rng);
        assert!(cert.verify(Some(content)).is_ok());
        assert!(cert.verify(None).is_ok());
        assert!(cert.verify_file_id("report.pdf").is_ok());
    }

    #[test]
    fn unsigned_issue_matches_signed_fields_and_fails_closed() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"file body");
        let signed =
            FileCertificate::issue(&owner, "report.pdf", content, 4096, 5, 1, 100, &mut rng);
        let unsigned = FileCertificate::issue_unsigned(&owner, "report.pdf", content, 4096, 5, 1, 100);
        // Every signed field — including the derived fileId — is
        // identical; only the signature differs.
        assert_eq!(unsigned.file_id, signed.file_id);
        assert_eq!(unsigned.signing_bytes(), signed.signing_bytes());
        // And an unsigned certificate never passes verification.
        assert!(unsigned.verify(Some(content)).is_err());

        let r_unsigned = StoreReceipt::issue_unsigned(&owner, signed.file_id, true, 100);
        let r_signed = StoreReceipt::issue(&owner, signed.file_id, true, 100, &mut rng);
        assert_eq!(r_unsigned.signing_bytes(), r_signed.signing_bytes());
        assert!(r_unsigned.verify().is_err());
    }

    #[test]
    fn file_certificate_detects_content_tamper() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"file body");
        let cert = FileCertificate::issue(&owner, "f", content, 10, 5, 1, 0, &mut rng);
        let other = Sha1::digest(b"other body");
        assert_eq!(cert.verify(Some(other)), Err(CertError::ContentMismatch));
    }

    #[test]
    fn file_certificate_detects_field_tamper() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"x");
        let mut cert = FileCertificate::issue(&owner, "f", content, 10, 5, 1, 0, &mut rng);
        cert.file_size = 999_999;
        assert_eq!(cert.verify(None), Err(CertError::BadSignature));
    }

    #[test]
    fn file_id_changes_with_salt() {
        let (_, owner) = setup();
        let id1 = compute_file_id("f", &owner.public(), 1);
        let id2 = compute_file_id("f", &owner.public(), 2);
        assert_ne!(id1, id2, "re-salting must divert the file elsewhere");
    }

    #[test]
    fn file_id_mismatch_detected() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"x");
        let cert = FileCertificate::issue(&owner, "f", content, 10, 5, 1, 0, &mut rng);
        assert_eq!(
            cert.verify_file_id("other-name"),
            Err(CertError::FileIdMismatch)
        );
    }

    #[test]
    fn zero_replication_rejected() {
        let (mut rng, owner) = setup();
        let content = Sha1::digest(b"x");
        let cert = FileCertificate::issue(&owner, "f", content, 10, 0, 1, 0, &mut rng);
        assert_eq!(cert.verify(None), Err(CertError::ZeroReplication));
    }

    #[test]
    fn reclaim_requires_matching_owner() {
        let mut rng = StdRng::seed_from_u64(8);
        let owner = KeyPair::generate(Scheme::Keyed, &mut rng);
        let thief = KeyPair::generate(Scheme::Keyed, &mut rng);
        let content = Sha1::digest(b"x");
        let file = FileCertificate::issue(&owner, "f", content, 10, 5, 1, 0, &mut rng);
        let good = ReclaimCertificate::issue(&owner, file.file_id, 5, &mut rng);
        let bad = ReclaimCertificate::issue(&thief, file.file_id, 5, &mut rng);
        assert!(good.verify(&file).is_ok());
        assert_eq!(bad.verify(&file), Err(CertError::BadSignature));
    }

    #[test]
    fn store_receipt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let node = KeyPair::generate(Scheme::Keyed, &mut rng);
        let fid = compute_file_id("f", &node.public(), 0);
        let r = StoreReceipt::issue(&node, fid, true, 77, &mut rng);
        assert!(r.verify().is_ok());
        let mut tampered = r.clone();
        tampered.diverted = false;
        assert_eq!(tampered.verify(), Err(CertError::BadSignature));
    }

    #[test]
    fn schnorr_certificates_also_verify() {
        let mut rng = StdRng::seed_from_u64(10);
        let owner = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let content = Sha1::digest(b"body");
        let cert = FileCertificate::issue(&owner, "f", content, 10, 5, 3, 0, &mut rng);
        assert!(cert.verify(Some(content)).is_ok());
        let mut tampered = cert.clone();
        tampered.replicas = 6;
        assert_eq!(tampered.verify(None), Err(CertError::BadSignature));
    }
}
