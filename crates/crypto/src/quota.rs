//! Storage quota management.
//!
//! PAST "addresses this problem by maintaining storage quotas, thus
//! ensuring that demand for storage cannot exceed the supply" (§3.5). The
//! paper delegates quota bookkeeping to the smartcards: an insert debits
//! `file size × k` against the client's quota, and verified reclaim
//! receipts credit it back.


/// Errors from quota operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuotaError {
    /// The debit would exceed the remaining quota.
    Exceeded {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A credit would exceed the total ever debited (double refund).
    OverCredit,
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::Exceeded {
                requested,
                available,
            } => write!(
                f,
                "quota exceeded: requested {requested} bytes, {available} available"
            ),
            QuotaError::OverCredit => write!(f, "credit exceeds outstanding debits"),
        }
    }
}

impl std::error::Error for QuotaError {}

/// A per-user quota ledger.
///
/// # Examples
///
/// ```
/// use past_crypto::quota::QuotaLedger;
///
/// let mut q = QuotaLedger::new(1000);
/// q.debit(5 * 100).unwrap(); // insert a 100-byte file with k = 5
/// assert_eq!(q.available(), 500);
/// q.credit(5 * 100).unwrap(); // reclaim it
/// assert_eq!(q.available(), 1000);
/// ```
#[derive(Clone, Debug)]
pub struct QuotaLedger {
    limit: u64,
    used: u64,
}

impl QuotaLedger {
    /// Creates a ledger with `limit` bytes of quota.
    pub fn new(limit: u64) -> Self {
        QuotaLedger { limit, used: 0 }
    }

    /// Total quota.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently debited.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.limit - self.used
    }

    /// Debits `bytes` (an insert of size s with replication k debits s·k).
    pub fn debit(&mut self, bytes: u64) -> Result<(), QuotaError> {
        if bytes > self.available() {
            return Err(QuotaError::Exceeded {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Credits `bytes` back after a verified reclaim.
    pub fn credit(&mut self, bytes: u64) -> Result<(), QuotaError> {
        if bytes > self.used {
            return Err(QuotaError::OverCredit);
        }
        self.used -= bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn debit_then_credit_restores() {
        let mut q = QuotaLedger::new(100);
        q.debit(60).unwrap();
        assert_eq!(q.available(), 40);
        q.credit(60).unwrap();
        assert_eq!(q.available(), 100);
    }

    #[test]
    fn debit_beyond_limit_fails() {
        let mut q = QuotaLedger::new(100);
        assert_eq!(
            q.debit(101),
            Err(QuotaError::Exceeded {
                requested: 101,
                available: 100
            })
        );
        assert_eq!(q.used(), 0, "failed debit must not change state");
    }

    #[test]
    fn over_credit_fails() {
        let mut q = QuotaLedger::new(100);
        q.debit(10).unwrap();
        assert_eq!(q.credit(11), Err(QuotaError::OverCredit));
        assert_eq!(q.used(), 10);
    }

    #[test]
    fn exact_boundary_allowed() {
        let mut q = QuotaLedger::new(100);
        q.debit(100).unwrap();
        assert_eq!(q.available(), 0);
        assert!(q.debit(1).is_err());
    }

    proptest! {
        #[test]
        fn prop_used_never_exceeds_limit(limit in 0u64..1_000_000, ops: Vec<(bool, u32)>) {
            let mut q = QuotaLedger::new(limit);
            for (is_debit, amount) in ops {
                let amount = amount as u64;
                if is_debit {
                    let _ = q.debit(amount);
                } else {
                    let _ = q.credit(amount);
                }
                prop_assert!(q.used() <= q.limit());
                prop_assert_eq!(q.available(), q.limit() - q.used());
            }
        }
    }
}
