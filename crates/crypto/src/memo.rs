//! Bounded memoization of *successful* signature verifications.
//!
//! Signature verification dominates the verify-enabled hot path: the
//! same file certificate is re-verified at the insert coordinator, at
//! every replica holder, at diversion targets, and again on reclaim.
//! [`VerifyMemo`] short-circuits those repeats with a bounded set of
//! digests of `(signing bytes ‖ signature)` pairs that have already
//! verified on this node.
//!
//! # Soundness
//!
//! The memo key is recomputed from the certificate's *current* field
//! values on every check — it is never carried inside the certificate
//! or trusted from the wire. A tampered certificate therefore hashes to
//! a different key than its untampered twin and takes the full
//! verification path, where the signature check rejects it. Only the
//! signature predicate — a pure function of `(signing bytes,
//! signature)` — is memoized; cheap relational checks that depend on
//! *other* state (content-hash comparison, reclaim owner equality,
//! zero-replication) are always re-evaluated by the callers in
//! `cert.rs`. Failed verifications are never recorded.
//!
//! # Bound
//!
//! Entries live in two generations. Inserts go to the current
//! generation; when it fills to half the configured capacity the
//! previous generation is dropped and the current one takes its place.
//! Total residency never exceeds `capacity`, and a hit in the old
//! generation re-promotes the entry, so hot certificates survive
//! rotation (the scheme is the classic two-generation approximation of
//! LRU, avoiding per-entry bookkeeping).
//!
//! Hits and misses are exported through `past-obs` as
//! `crypto.verify.memo_hit` / `crypto.verify.memo_miss` (no-ops unless
//! a recorder is installed).

use past_id::IdHashSet;

use crate::sha1::{Digest, Sha1};
use crate::sign::Signature;

/// Bounded two-generation memo of verified `(signing bytes, signature)`
/// digests. One per node; see the module docs for the soundness
/// argument.
#[derive(Debug)]
pub struct VerifyMemo {
    /// Maximum total resident entries across both generations.
    capacity: usize,
    cur: IdHashSet<Digest>,
    prev: IdHashSet<Digest>,
    hits: u64,
    misses: u64,
}

impl VerifyMemo {
    /// Creates a memo bounded to `capacity` entries. A capacity of zero
    /// disables memoization (every check takes the full path).
    pub fn new(capacity: usize) -> Self {
        let half = capacity / 2;
        VerifyMemo {
            capacity,
            cur: IdHashSet::with_capacity_and_hasher(half.min(1024), Default::default()),
            prev: IdHashSet::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured bound on resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident (both generations).
    pub fn len(&self) -> usize {
        self.cur.len() + self.prev.len()
    }

    /// Whether no verification has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty() && self.prev.is_empty()
    }

    /// Checks hit since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checks that took the full verification path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The memo key for a signed blob: SHA-1 over the signing bytes and
    /// a serialization of the signature. Recomputed from current field
    /// values on every check, so any tampering changes the key.
    pub fn key(signing_bytes: &[u8], sig: &Signature) -> Digest {
        let mut h = Sha1::new();
        h.update(signing_bytes);
        match sig {
            Signature::Schnorr(sig) => {
                h.update(&[0u8]);
                h.update(&sig.e.to_be_bytes());
                h.update(&sig.s.to_be_bytes());
            }
            Signature::Keyed(d) => {
                h.update(&[1u8]);
                h.update(d.as_bytes());
            }
        }
        h.finalize()
    }

    /// Memoized evaluation of a signature predicate: returns `true`
    /// immediately when `key` was previously recorded, otherwise runs
    /// `verify` and records the key only on success.
    pub fn check(&mut self, key: Digest, verify: impl FnOnce() -> bool) -> bool {
        if self.capacity > 0 && self.lookup(key) {
            self.hits += 1;
            past_obs::counter("crypto.verify.memo_hit", 1);
            return true;
        }
        self.misses += 1;
        past_obs::counter("crypto.verify.memo_miss", 1);
        let ok = verify();
        if ok && self.capacity > 0 {
            self.record(key);
        }
        ok
    }

    /// Looks `key` up in both generations, promoting old-generation hits
    /// so hot entries survive rotation.
    fn lookup(&mut self, key: Digest) -> bool {
        if self.cur.contains(&key) {
            return true;
        }
        if self.prev.remove(&key) {
            self.record(key);
            return true;
        }
        false
    }

    fn record(&mut self, key: Digest) {
        let half = (self.capacity / 2).max(1);
        if self.cur.len() >= half {
            self.prev = std::mem::take(&mut self.cur);
        }
        self.cur.insert(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;

    fn sig(tag: u8) -> Signature {
        Signature::Keyed(Digest([tag; 20]))
    }

    #[test]
    fn records_only_successful_verifications() {
        let mut m = VerifyMemo::new(8);
        let k = VerifyMemo::key(b"payload", &sig(1));
        assert!(!m.check(k, || false));
        // The failure was not recorded: the next check re-runs verify.
        assert!(m.is_empty());
        assert!(m.check(k, || true));
        // Now it short-circuits: a verify closure returning false is
        // never consulted.
        assert!(m.check(k, || false));
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn key_binds_every_byte_of_message_and_signature() {
        let base = VerifyMemo::key(b"payload", &sig(1));
        assert_ne!(base, VerifyMemo::key(b"payloae", &sig(1)));
        assert_ne!(base, VerifyMemo::key(b"payload", &sig(2)));
        let schnorr = Signature::schnorr(crate::U256::from_u128(7), crate::U256::from_u128(9));
        assert_ne!(base, VerifyMemo::key(b"payload", &schnorr));
    }

    #[test]
    fn residency_never_exceeds_capacity() {
        let cap = 16;
        let mut m = VerifyMemo::new(cap);
        for i in 0..10_000u32 {
            let k = Sha1::digest(&i.to_be_bytes());
            m.check(k, || true);
            assert!(m.len() <= cap, "memo grew past its bound: {}", m.len());
        }
        // Old entries were evicted: entry 0 misses again.
        let k0 = Sha1::digest(&0u32.to_be_bytes());
        let mut ran = false;
        m.check(k0, || {
            ran = true;
            true
        });
        assert!(ran, "evicted entry must take the full path");
    }

    #[test]
    fn hot_entries_survive_rotation() {
        let mut m = VerifyMemo::new(4);
        let hot = Sha1::digest(b"hot");
        m.check(hot, || true);
        for i in 0..64u32 {
            // Touch the hot key between batches of cold ones.
            assert!(m.check(hot, || false), "hot entry evicted at {i}");
            let k = Sha1::digest(&i.to_be_bytes());
            m.check(k, || true);
        }
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let mut m = VerifyMemo::new(0);
        let k = VerifyMemo::key(b"x", &sig(3));
        assert!(m.check(k, || true));
        let mut ran = false;
        assert!(m.check(k, || {
            ran = true;
            true
        }));
        assert!(ran, "capacity 0 must never short-circuit");
        assert_eq!(m.len(), 0);
    }
}
