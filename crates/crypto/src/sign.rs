//! Signature schemes for PAST certificates.
//!
//! The paper assumes each node and each user holds a smartcard with a
//! private/public key pair; certificates (file certificates, reclaim
//! certificates, store receipts, nodeId certificates) are signed and
//! verified with those keys.
//!
//! Two schemes are provided behind one [`KeyPair`]/[`PublicKey`] API:
//!
//! - [`Scheme::Schnorr`]: a real Schnorr-style signature over the
//!   multiplicative group of the field of prime order p = 2^255 − 19,
//!   built on this crate's own [`crate::U256`] arithmetic and SHA-1 hash.
//!   **This instantiation is structurally faithful but NOT secure for
//!   production use**: the full group Z_p^* has composite order, the
//!   arithmetic is not constant time, and SHA-1 is broken. The paper's
//!   security model is out of scope of its evaluation; what matters for
//!   the reproduction is that certificates are issued, routed and checked
//!   end to end with real asymmetric-style math.
//! - [`Scheme::Keyed`]: a fast *simulated* signature (SHA-1 over public
//!   key ‖ message). Within a closed simulation with no adversary, it
//!   exercises the identical certificate plumbing at negligible cost;
//!   the large trace-driven experiments use it so that signing 10^5–10^6
//!   certificates does not dominate run time. It offers no unforgeability.
//!
//! # Examples
//!
//! ```
//! use past_crypto::sign::{KeyPair, Scheme};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
//! let sig = kp.sign(b"file certificate body", &mut rng);
//! assert!(kp.public().verify(b"file certificate body", &sig));
//! assert!(!kp.public().verify(b"tampered body", &sig));
//! ```

use rand::Rng;

use crate::sha1::{Digest, Sha1};
use crate::u256::U256;

/// Group parameters for the Schnorr-style scheme.
pub mod group {
    use crate::u256::U256;

    /// The prime modulus p = 2^255 − 19.
    pub const P: U256 = U256([
        0xffff_ffff_ffff_ffed,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x7fff_ffff_ffff_ffff,
    ]);

    /// Exponent modulus: the group order p − 1 = 2^255 − 20.
    pub const ORDER: U256 = U256([
        0xffff_ffff_ffff_ffec,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x7fff_ffff_ffff_ffff,
    ]);

    /// Generator g = 2 of a large subgroup of Z_p^*.
    pub const G: U256 = U256([2, 0, 0, 0]);
}

/// Which signature scheme a key pair uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Real Schnorr-style math over Z_p^* (slow, asymmetric).
    Schnorr,
    /// Simulated keyed-hash signature (fast, for closed simulations).
    Keyed,
}

/// A public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PublicKey {
    /// y = g^x mod p.
    Schnorr(U256),
    /// A hash commitment to the secret.
    Keyed(Digest),
}

/// The (e, s) pair of a Schnorr signature, boxed inside [`Signature`]
/// so the common certificate case (a 20-byte keyed tag) does not pay
/// for the 64-byte Schnorr payload. At simulation scale certificates
/// dominate live memory, and the enum's inline size is what every one
/// of them carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchnorrSig {
    /// Challenge hash reduced into the exponent group.
    pub e: U256,
    /// Response scalar.
    pub s: U256,
}

/// A signature produced by [`KeyPair::sign`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Signature {
    /// Schnorr pair (e, s): e = H(g^k ‖ m), s = k − x·e mod (p−1).
    Schnorr(Box<SchnorrSig>),
    /// Simulated tag H(pubkey ‖ m).
    Keyed(Digest),
}

impl Signature {
    /// Builds a Schnorr signature from its scalars.
    pub fn schnorr(e: U256, s: U256) -> Self {
        Signature::Schnorr(Box::new(SchnorrSig { e, s }))
    }
}

/// An interned public key: one reference-counted allocation shared by
/// every certificate and receipt its key pair issues. A node signs
/// thousands to millions of certificates over a run; embedding the
/// 40-byte [`PublicKey`] enum in each repeats the same bytes everywhere,
/// while the interned handle is pointer-sized and clones by bumping a
/// count. Dereferences to [`PublicKey`], so verification call sites are
/// unchanged.
#[derive(Clone, Debug)]
pub struct OwnerKey(std::sync::Arc<PublicKey>);

impl OwnerKey {
    /// Interns a public key (one allocation; clones share it).
    pub fn new(key: PublicKey) -> Self {
        OwnerKey(std::sync::Arc::new(key))
    }

    /// The underlying public key.
    pub fn key(&self) -> &PublicKey {
        &self.0
    }
}

impl std::ops::Deref for OwnerKey {
    type Target = PublicKey;
    fn deref(&self) -> &PublicKey {
        &self.0
    }
}

impl PartialEq for OwnerKey {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality first: interned keys from the same pair share
        // one allocation, making the common comparison O(1).
        std::sync::Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for OwnerKey {}

impl std::hash::Hash for OwnerKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (*self.0).hash(state)
    }
}

impl From<PublicKey> for OwnerKey {
    fn from(key: PublicKey) -> Self {
        OwnerKey::new(key)
    }
}

/// A private/public key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    scheme: Scheme,
    secret: U256,
    public: PublicKey,
    /// The interned public half, shared by every certificate issued.
    shared: OwnerKey,
}

impl PublicKey {
    /// Serializes the key for hashing into identifiers and certificates.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PublicKey::Schnorr(y) => {
                let mut v = vec![0u8];
                v.extend_from_slice(&y.to_be_bytes());
                v
            }
            PublicKey::Keyed(d) => {
                let mut v = vec![1u8];
                v.extend_from_slice(d.as_bytes());
                v
            }
        }
    }

    /// Returns the SHA-1 digest of the serialized key.
    ///
    /// PAST derives nodeIds from this digest ("the nodeId assignment is
    /// quasi-random, e.g. SHA-1 hash of the node's public key").
    pub fn digest(&self) -> Digest {
        Sha1::digest(&self.to_bytes())
    }

    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        match (self, sig) {
            (PublicKey::Schnorr(y), Signature::Schnorr(sig)) => {
                let (e, s) = (sig.e, sig.s);
                if e >= group::ORDER || s >= group::ORDER {
                    return false;
                }
                // r' = g^s * y^e mod p; accept iff H(r' ‖ m) == e.
                let gs = group::G.powmod(s, group::P);
                let ye = y.powmod(e, group::P);
                let r = gs.mulmod(ye, group::P);
                challenge(r, message) == e
            }
            (PublicKey::Keyed(_), Signature::Keyed(tag)) => *tag == keyed_tag(self, message),
            _ => false,
        }
    }
}

impl KeyPair {
    /// Generates a fresh key pair for `scheme`.
    pub fn generate<R: Rng + ?Sized>(scheme: Scheme, rng: &mut R) -> Self {
        match scheme {
            Scheme::Schnorr => {
                let x = U256::random_below(rng, group::ORDER);
                let y = group::G.powmod(x, group::P);
                let public = PublicKey::Schnorr(y);
                KeyPair {
                    scheme,
                    secret: x,
                    public,
                    shared: OwnerKey::new(public),
                }
            }
            Scheme::Keyed => {
                let secret = U256([rng.gen(), rng.gen(), rng.gen(), rng.gen()]);
                let public = PublicKey::Keyed(Sha1::digest(&secret.to_be_bytes()));
                KeyPair {
                    scheme,
                    secret,
                    public,
                    shared: OwnerKey::new(public),
                }
            }
        }
    }

    /// Returns the public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Returns the interned public half: every call shares one
    /// allocation, so certificates issued by this pair carry an 8-byte
    /// handle instead of a 40-byte copy of the key.
    pub fn public_shared(&self) -> OwnerKey {
        self.shared.clone()
    }

    /// Returns the scheme this pair uses.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Signs `message`.
    pub fn sign<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Signature {
        match self.scheme {
            Scheme::Schnorr => {
                // Standard Schnorr: k random, r = g^k, e = H(r ‖ m),
                // s = k − x·e (mod group order).
                let k = U256::random_below(rng, group::ORDER);
                let r = group::G.powmod(k, group::P);
                let e = challenge(r, message);
                let xe = self.secret.mulmod(e, group::ORDER);
                let s = k.submod(xe, group::ORDER);
                Signature::schnorr(e, s)
            }
            Scheme::Keyed => Signature::Keyed(keyed_tag(&self.public, message)),
        }
    }
}

/// Hash the commitment and message into an exponent-group scalar.
fn challenge(r: U256, message: &[u8]) -> U256 {
    let mut h = Sha1::new();
    h.update(&r.to_be_bytes());
    h.update(message);
    let d = h.finalize();
    // Widen the 160-bit digest to 256 bits by hashing twice with domain
    // separation, then reduce into the exponent group.
    let mut h2 = Sha1::new();
    h2.update(b"widen");
    h2.update(d.as_bytes());
    let d2 = h2.finalize();
    let mut bytes = [0u8; 32];
    bytes[..20].copy_from_slice(d.as_bytes());
    bytes[20..].copy_from_slice(&d2.as_bytes()[..12]);
    U256::from_be_bytes(bytes).reduce_mod(group::ORDER)
}

/// Simulated signature tag: SHA-1(pubkey ‖ message).
fn keyed_tag(public: &PublicKey, message: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(&public.to_bytes());
    h.update(message);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn schnorr_sign_verify_roundtrip() {
        let mut rng = rng();
        let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
        for msg in [&b"hello"[..], b"", b"a much longer message body ..."] {
            let sig = kp.sign(msg, &mut rng);
            assert!(kp.public().verify(msg, &sig));
        }
    }

    #[test]
    fn schnorr_rejects_tampered_message() {
        let mut rng = rng();
        let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let sig = kp.sign(b"original", &mut rng);
        assert!(!kp.public().verify(b"tampered", &sig));
    }

    #[test]
    fn schnorr_rejects_wrong_key() {
        let mut rng = rng();
        let kp1 = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let kp2 = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn schnorr_rejects_out_of_range_scalars() {
        let mut rng = rng();
        let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let bad = Signature::schnorr(group::ORDER, U256::ONE);
        assert!(!kp.public().verify(b"msg", &bad));
    }

    #[test]
    fn keyed_sign_verify_roundtrip() {
        let mut rng = rng();
        let kp = KeyPair::generate(Scheme::Keyed, &mut rng);
        let sig = kp.sign(b"quota receipt", &mut rng);
        assert!(kp.public().verify(b"quota receipt", &sig));
        assert!(!kp.public().verify(b"other", &sig));
    }

    #[test]
    fn keyed_rejects_wrong_key() {
        let mut rng = rng();
        let kp1 = KeyPair::generate(Scheme::Keyed, &mut rng);
        let kp2 = KeyPair::generate(Scheme::Keyed, &mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn cross_scheme_signatures_rejected() {
        let mut rng = rng();
        let schnorr = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let keyed = KeyPair::generate(Scheme::Keyed, &mut rng);
        let s_sig = schnorr.sign(b"m", &mut rng);
        let k_sig = keyed.sign(b"m", &mut rng);
        assert!(!schnorr.public().verify(b"m", &k_sig));
        assert!(!keyed.public().verify(b"m", &s_sig));
    }

    #[test]
    fn distinct_keys_distinct_digests() {
        let mut rng = rng();
        let a = KeyPair::generate(Scheme::Keyed, &mut rng);
        let b = KeyPair::generate(Scheme::Keyed, &mut rng);
        assert_ne!(a.public().digest(), b.public().digest());
    }

    #[test]
    fn signatures_are_randomized_but_both_verify() {
        let mut rng = rng();
        let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
        let s1 = kp.sign(b"m", &mut rng);
        let s2 = kp.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "Schnorr signatures use fresh nonces");
        assert!(kp.public().verify(b"m", &s1));
        assert!(kp.public().verify(b"m", &s2));
    }
}
