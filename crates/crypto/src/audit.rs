//! Challenge-response possession proofs for sampled storage audits.
//!
//! A storage audit (LOCKSS-style, rate-limited sampling) asks a replica
//! holder to prove it still possesses a file: the auditor sends a fresh
//! nonce and the holder must answer with SHA-1(file ‖ nonce). Only a
//! node holding the file's bytes can compute the digest, and the nonce
//! makes every challenge one-shot — a cached answer to an earlier
//! challenge verifies against nothing.
//!
//! The simulation does not materialize file bodies; a file's content is
//! represented throughout by its SHA-1 content hash (what the signed
//! file certificate commits to). A possession proof therefore hashes
//! the content hash in place of the raw bytes: honest holders derive it
//! from the replica they store, while a node that discarded or
//! corrupted its copy has lost exactly the input it would need.
//!
//! Nonces are derived deterministically ([`audit_nonce`]) from the
//! auditor's identity and a per-challenge sequence number rather than
//! drawn from an RNG: audits must leave every simulator RNG stream
//! untouched so that enabling them never perturbs unrelated seeded
//! behavior (and so results stay invariant across simulation engines).

use crate::sha1::{Digest, Sha1};

/// Computes the possession proof SHA-1(content ‖ nonce) a replica
/// holder returns for an audit challenge.
///
/// `content` is the file's content hash (the certificate's
/// `content_hash` — the simulation's stand-in for the file bytes).
pub fn possession_proof(content: &Digest, nonce: u64) -> Digest {
    let mut h = Sha1::new();
    h.update(b"PAST-AUDIT-PROOF");
    h.update(content.as_bytes());
    h.update(&nonce.to_be_bytes());
    h.finalize()
}

/// Verifies a possession proof against the expected content hash and
/// the nonce of the outstanding challenge.
pub fn verify_possession(content: &Digest, nonce: u64, proof: &Digest) -> bool {
    possession_proof(content, nonce) == *proof
}

/// Derives the nonce for one audit challenge from the auditor's
/// identity material and a monotonically increasing challenge sequence
/// number.
///
/// The derivation is a hash, so nonces are quasi-uniform and never
/// repeat for distinct `seq`, yet no RNG stream is consumed: an
/// audits-enabled run draws exactly the same random numbers everywhere
/// else as an audits-off run.
pub fn audit_nonce(auditor: &[u8], seq: u64) -> u64 {
    let mut h = Sha1::new();
    h.update(b"PAST-AUDIT-NONCE");
    h.update(auditor);
    h.update(&seq.to_be_bytes());
    let d = h.finalize();
    u64::from_be_bytes(d.0[..8].try_into().expect("digest has 20 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_proof_verifies() {
        let content = Sha1::digest(b"file body");
        let nonce = audit_nonce(b"auditor-a", 0);
        let proof = possession_proof(&content, nonce);
        assert!(verify_possession(&content, nonce, &proof));
    }

    #[test]
    fn wrong_content_fails() {
        let content = Sha1::digest(b"file body");
        let corrupted = Sha1::digest(b"corrupted body");
        let nonce = audit_nonce(b"auditor-a", 0);
        let proof = possession_proof(&corrupted, nonce);
        assert!(!verify_possession(&content, nonce, &proof));
    }

    #[test]
    fn stale_nonce_fails() {
        // A replayed proof computed for an earlier challenge's nonce
        // does not verify against the current nonce.
        let content = Sha1::digest(b"file body");
        let old = audit_nonce(b"auditor-a", 0);
        let new = audit_nonce(b"auditor-a", 1);
        assert_ne!(old, new);
        let stale = possession_proof(&content, old);
        assert!(!verify_possession(&content, new, &stale));
    }

    #[test]
    fn nonces_differ_across_auditors_and_seqs() {
        let a0 = audit_nonce(b"auditor-a", 0);
        let a1 = audit_nonce(b"auditor-a", 1);
        let b0 = audit_nonce(b"auditor-b", 0);
        assert_ne!(a0, a1);
        assert_ne!(a0, b0);
        // And the derivation is deterministic.
        assert_eq!(a0, audit_nonce(b"auditor-a", 0));
    }
}
