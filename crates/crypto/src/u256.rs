//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! This is the minimal arithmetic needed for the Schnorr-style signature
//! scheme in [`crate::sign`]: comparison, modular addition/subtraction,
//! modular multiplication (binary double-and-add, so no wide division is
//! required) and modular exponentiation. It is written for clarity and
//! determinism, not constant-time operation — see the security notes in
//! the crate docs.

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);

    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Creates a value from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - 8 * (i + 1);
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Returns the value as 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            let start = 32 - 8 * (i + 1);
            out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(self, i: u32) -> bool {
        debug_assert!(i < 256);
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(self) -> Option<u32> {
        for limb_idx in (0..4).rev() {
            if self.0[limb_idx] != 0 {
                return Some(limb_idx as u32 * 64 + 63 - self.0[limb_idx].leading_zeros());
            }
        }
        None
    }

    /// Wrapping addition returning (sum, carry).
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction returning (difference, borrow).
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *o = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Left shift by one bit, returning (shifted, carried-out bit).
    pub fn shl1(self) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = (a << 1) | carry;
            carry = a >> 63;
        }
        (U256(out), carry == 1)
    }

    /// Addition modulo `m`. Operands must already be reduced (`< m`).
    pub fn addmod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= m {
            sum.overflowing_sub(m).0
        } else {
            sum
        }
    }

    /// Subtraction modulo `m`. Operands must already be reduced.
    pub fn submod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        if self >= rhs {
            self.overflowing_sub(rhs).0
        } else {
            self.overflowing_add(m).0.overflowing_sub(rhs).0
        }
    }

    /// Multiplication modulo `m` via binary double-and-add.
    ///
    /// Runs in 256 iterations regardless of operand values. Operands must
    /// already be reduced.
    pub fn mulmod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        debug_assert!(!m.is_zero());
        let mut acc = U256::ZERO;
        // Iterate from the most significant bit of rhs downward:
        // acc = acc*2 + self*bit, reduced mod m at each step.
        let top = match rhs.highest_bit() {
            Some(t) => t,
            None => return U256::ZERO,
        };
        for i in (0..=top).rev() {
            // acc = 2*acc mod m.
            let (doubled, carry) = acc.shl1();
            acc = if carry || doubled >= m {
                doubled.overflowing_sub(m).0
            } else {
                doubled
            };
            if rhs.bit(i) {
                acc = acc.addmod(self, m);
            }
        }
        acc
    }

    /// Exponentiation modulo `m` via square-and-multiply.
    pub fn powmod(self, exp: U256, m: U256) -> U256 {
        debug_assert!(!m.is_zero());
        if m == U256::ONE {
            return U256::ZERO;
        }
        let mut result = U256::ONE;
        let mut base = self;
        if base >= m {
            // Reduce an unreduced base by repeated subtraction of m shifted;
            // only needed for base < 2m in practice, but handle generally.
            base = base.reduce_mod(m);
        }
        let top = match exp.highest_bit() {
            Some(t) => t,
            None => return U256::ONE,
        };
        for i in (0..=top).rev() {
            result = result.mulmod(result, m);
            if exp.bit(i) {
                result = result.mulmod(base, m);
            }
        }
        result
    }

    /// Full reduction modulo `m` by shift-and-subtract (binary long
    /// division keeping only the remainder).
    pub fn reduce_mod(self, m: U256) -> U256 {
        debug_assert!(!m.is_zero());
        if self < m {
            return self;
        }
        let mut rem = U256::ZERO;
        let top = self.highest_bit().unwrap_or(0);
        for i in (0..=top).rev() {
            let (shifted, carry) = rem.shl1();
            rem = shifted;
            debug_assert!(!carry, "remainder overflow during reduction");
            if self.bit(i) {
                rem = rem.overflowing_add(U256::ONE).0;
            }
            if rem >= m {
                rem = rem.overflowing_sub(m).0;
            }
        }
        rem
    }

    /// Draws a uniformly distributed value in `[1, m)` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 1`.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, m: U256) -> U256 {
        assert!(m > U256::ONE, "modulus must exceed 1");
        loop {
            let candidate = U256([rng.gen(), rng.gen(), rng.gen(), rng.gen()]);
            if !candidate.is_zero() && candidate < m {
                return candidate;
            }
            // For the moduli used here (>= 2^255 - 19) the accept
            // probability per draw is ~50%, so this terminates quickly.
        }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn add_sub_roundtrip_small() {
        let a = u(12345);
        let b = u(67890);
        let (sum, c) = a.overflowing_add(b);
        assert!(!c);
        assert_eq!(sum, u(12345 + 67890));
        let (diff, bo) = sum.overflowing_sub(b);
        assert!(!bo);
        assert_eq!(diff, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let (sum, c) = a.overflowing_add(U256::ONE);
        assert!(!c);
        assert_eq!(sum, U256([0, 1, 0, 0]));
    }

    #[test]
    fn overflow_wraps() {
        let max = U256([u64::MAX; 4]);
        let (sum, c) = max.overflowing_add(U256::ONE);
        assert!(c);
        assert_eq!(sum, U256::ZERO);
    }

    #[test]
    fn mulmod_small_values() {
        let m = u(1_000_003);
        assert_eq!(u(1234).mulmod(u(5678), m), u(1234 * 5678 % 1_000_003));
        assert_eq!(u(999_999).mulmod(u(999_999), m), {
            let v = 999_999u128 * 999_999 % 1_000_003;
            u(v)
        });
    }

    #[test]
    fn powmod_small_values() {
        let m = u(1_000_003);
        // 7^20 mod 1000003, computed independently.
        let mut expect = 1u128;
        for _ in 0..20 {
            expect = expect * 7 % 1_000_003;
        }
        assert_eq!(u(7).powmod(u(20), m), u(expect));
    }

    #[test]
    fn powmod_fermat_little_theorem() {
        // p = 2^61 - 1 is prime; a^(p-1) = 1 mod p for a not divisible by p.
        let p = u((1u128 << 61) - 1);
        let pm1 = u((1u128 << 61) - 2);
        for a in [2u128, 3, 65537, 123_456_789] {
            assert_eq!(u(a).powmod(pm1, p), U256::ONE, "a = {a}");
        }
    }

    #[test]
    fn reduce_mod_matches_u128() {
        let m = u(0xffff_ffff_ffff);
        let v = u(u128::MAX - 5);
        assert_eq!(v.reduce_mod(m), u((u128::MAX - 5) % 0xffff_ffff_ffff));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let bytes = v.to_be_bytes();
        // Limb 3 is the most significant, stored first.
        assert_eq!(&bytes[..8], &4u64.to_be_bytes());
        assert_eq!(&bytes[24..], &1u64.to_be_bytes());
    }

    #[test]
    fn ordering_is_big_endian_on_limbs() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(U256::ZERO < U256::ONE);
    }

    #[test]
    fn random_below_is_in_range() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let m = crate::sign::group::P;
        for _ in 0..32 {
            let v = U256::random_below(&mut rng, m);
            assert!(!v.is_zero() && v < m);
        }
    }

    proptest! {
        #[test]
        fn prop_addmod_matches_u128(a in 0u128..1_000_000_007, b in 0u128..1_000_000_007) {
            let m = u(1_000_000_007);
            prop_assert_eq!(u(a).addmod(u(b), m), u((a + b) % 1_000_000_007));
        }

        #[test]
        fn prop_submod_matches_u128(a in 0u128..1_000_000_007, b in 0u128..1_000_000_007) {
            let m = u(1_000_000_007);
            let expect = (a + 1_000_000_007 - b) % 1_000_000_007;
            prop_assert_eq!(u(a).submod(u(b), m), u(expect));
        }

        #[test]
        fn prop_mulmod_matches_u128(a in 0u128..(1u128 << 60), b in 0u128..(1u128 << 60)) {
            let m = u(1u128 << 61);
            let am = a % (1u128 << 61);
            let bm = b % (1u128 << 61);
            prop_assert_eq!(u(am).mulmod(u(bm), m), u(am.wrapping_mul(bm) % (1u128 << 61)));
        }

        #[test]
        fn prop_mulmod_commutative(a_limbs: [u64; 4], b_limbs: [u64; 4]) {
            let m = crate::sign::group::P;
            let a = U256(a_limbs).reduce_mod(m);
            let b = U256(b_limbs).reduce_mod(m);
            prop_assert_eq!(a.mulmod(b, m), b.mulmod(a, m));
        }

        #[test]
        fn prop_powmod_addition_of_exponents(a_limbs: [u64; 4], e1 in 0u128..10_000, e2 in 0u128..10_000) {
            let m = crate::sign::group::P;
            let a = U256(a_limbs).reduce_mod(m);
            prop_assume!(!a.is_zero());
            let left = a.powmod(u(e1 + e2), m);
            let right = a.powmod(u(e1), m).mulmod(a.powmod(u(e2), m), m);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_be_bytes_roundtrip(limbs: [u64; 4]) {
            let v = U256(limbs);
            prop_assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        }
    }
}
