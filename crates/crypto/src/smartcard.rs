//! The smartcard model (paper §2.3).
//!
//! Each PAST node and each user holds a smartcard; a private/public key
//! pair is associated with each card, and each card's public key is signed
//! with the smartcard issuer's private key for certification. The cards
//! generate and verify certificates and maintain storage quotas. The
//! crucial property is that *the smartcards ensure the integrity of nodeId
//! and fileId assignments*: a node cannot choose its own nodeId, so an
//! attacker cannot place itself adjacent to a victim file's replicas.

use rand::Rng;

use past_id::NodeId;

use crate::cert::CertError;
use crate::quota::QuotaLedger;
use crate::sign::{KeyPair, PublicKey, Scheme, Signature};

/// A certificate binding a public key to its derived nodeId, signed by the
/// card issuer.
#[derive(Clone, Debug)]
pub struct NodeIdCertificate {
    /// The card holder's public key.
    pub holder: PublicKey,
    /// The nodeId derived from the holder key (128 msbs of its SHA-1).
    pub node_id: NodeId,
    /// Issuer signature over (holder, node_id).
    pub signature: Signature,
}

impl NodeIdCertificate {
    fn signing_bytes(holder: &PublicKey, node_id: NodeId) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"PAST-NODEID-CERT");
        v.extend_from_slice(&holder.to_bytes());
        v.extend_from_slice(&node_id.to_bytes());
        v
    }

    /// Verifies the issuer signature and the nodeId derivation.
    pub fn verify(&self, issuer: &PublicKey) -> Result<(), CertError> {
        if derive_node_id(&self.holder) != self.node_id {
            return Err(CertError::FileIdMismatch);
        }
        if issuer.verify(
            &Self::signing_bytes(&self.holder, self.node_id),
            &self.signature,
        ) {
            Ok(())
        } else {
            Err(CertError::BadSignature)
        }
    }
}

/// Derives the quasi-random nodeId from a public key: the 128 most
/// significant bits of SHA-1(key). The holder cannot bias the result
/// without finding hash preimages.
pub fn derive_node_id(key: &PublicKey) -> NodeId {
    key.digest().to_node_id()
}

/// The smartcard issuer: a trusted party whose key certifies every card.
#[derive(Debug)]
pub struct CardIssuer {
    keypair: KeyPair,
}

impl CardIssuer {
    /// Creates an issuer with a fresh key pair for `scheme`.
    pub fn new<R: Rng + ?Sized>(scheme: Scheme, rng: &mut R) -> Self {
        CardIssuer {
            keypair: KeyPair::generate(scheme, rng),
        }
    }

    /// The issuer's public key, distributed to all participants.
    pub fn public(&self) -> PublicKey {
        self.keypair.public()
    }

    /// Issues a smartcard with a fresh holder key pair and `quota` bytes
    /// of storage quota.
    pub fn issue_card<R: Rng + ?Sized>(&self, quota: u64, rng: &mut R) -> Smartcard {
        let holder = KeyPair::generate(self.keypair.scheme(), rng);
        let node_id = derive_node_id(&holder.public());
        let signature = self.keypair.sign(
            &NodeIdCertificate::signing_bytes(&holder.public(), node_id),
            rng,
        );
        let node_id_cert = NodeIdCertificate {
            holder: holder.public(),
            node_id,
            signature,
        };
        Smartcard {
            keypair: holder,
            node_id_cert,
            quota: QuotaLedger::new(quota),
        }
    }
}

/// A smartcard: key pair, issuer-signed nodeId certificate, quota ledger.
#[derive(Debug)]
pub struct Smartcard {
    keypair: KeyPair,
    node_id_cert: NodeIdCertificate,
    quota: QuotaLedger,
}

impl Smartcard {
    /// The card's key pair (signing happens "inside the card").
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// The card holder's public key.
    pub fn public(&self) -> PublicKey {
        self.keypair.public()
    }

    /// The derived nodeId (for cards installed in storage nodes).
    pub fn node_id(&self) -> NodeId {
        self.node_id_cert.node_id
    }

    /// The issuer-signed nodeId certificate.
    pub fn node_id_cert(&self) -> &NodeIdCertificate {
        &self.node_id_cert
    }

    /// Mutable access to the quota ledger.
    pub fn quota_mut(&mut self) -> &mut QuotaLedger {
        &mut self.quota
    }

    /// Read access to the quota ledger.
    pub fn quota(&self) -> &QuotaLedger {
        &self.quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn issued_card_verifies() {
        let mut rng = StdRng::seed_from_u64(3);
        let issuer = CardIssuer::new(Scheme::Keyed, &mut rng);
        let card = issuer.issue_card(1_000_000, &mut rng);
        assert!(card.node_id_cert().verify(&issuer.public()).is_ok());
        assert_eq!(card.node_id(), derive_node_id(&card.public()));
    }

    #[test]
    fn forged_node_id_detected() {
        let mut rng = StdRng::seed_from_u64(4);
        let issuer = CardIssuer::new(Scheme::Keyed, &mut rng);
        let card = issuer.issue_card(0, &mut rng);
        let mut cert = card.node_id_cert().clone();
        // A malicious operator tries to claim an adjacent nodeId.
        cert.node_id = NodeId::from_u128(cert.node_id.as_u128().wrapping_add(1));
        assert!(cert.verify(&issuer.public()).is_err());
    }

    #[test]
    fn card_from_other_issuer_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let issuer_a = CardIssuer::new(Scheme::Keyed, &mut rng);
        let issuer_b = CardIssuer::new(Scheme::Keyed, &mut rng);
        let card = issuer_a.issue_card(0, &mut rng);
        assert!(card.node_id_cert().verify(&issuer_b.public()).is_err());
    }

    #[test]
    fn cards_have_distinct_node_ids() {
        let mut rng = StdRng::seed_from_u64(6);
        let issuer = CardIssuer::new(Scheme::Keyed, &mut rng);
        let a = issuer.issue_card(0, &mut rng);
        let b = issuer.issue_card(0, &mut rng);
        assert_ne!(a.node_id(), b.node_id());
    }

    #[test]
    fn quota_lives_on_the_card() {
        let mut rng = StdRng::seed_from_u64(7);
        let issuer = CardIssuer::new(Scheme::Keyed, &mut rng);
        let mut card = issuer.issue_card(500, &mut rng);
        card.quota_mut().debit(200).unwrap();
        assert_eq!(card.quota().available(), 300);
    }

    #[test]
    fn schnorr_cards_verify() {
        let mut rng = StdRng::seed_from_u64(8);
        let issuer = CardIssuer::new(Scheme::Schnorr, &mut rng);
        let card = issuer.issue_card(0, &mut rng);
        assert!(card.node_id_cert().verify(&issuer.public()).is_ok());
    }
}
