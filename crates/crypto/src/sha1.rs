//! SHA-1 implemented from scratch (RFC 3174 / FIPS 180-1).
//!
//! PAST uses SHA-1 everywhere an identifier or integrity check is needed:
//! fileIds are the SHA-1 hash of (file name, owner public key, salt),
//! nodeIds are the SHA-1 hash of the node's public key, and file
//! certificates carry a SHA-1 hash of the file content.
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! implemented here because it is what the paper specifies and because the
//! reproduction needs a deterministic 160-bit hash, not production
//! security.

use std::fmt;


use past_id::{FileId, NodeId, FILE_ID_BYTES};

/// A 160-bit SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Interprets the digest as a 160-bit file identifier.
    pub fn to_file_id(self) -> FileId {
        FileId::from_bytes(self.0)
    }

    /// Interprets the 128 most significant bits as a node identifier,
    /// mirroring the paper's quasi-random nodeId assignment (SHA-1 of the
    /// node's public key).
    pub fn to_node_id(self) -> NodeId {
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&self.0[..16]);
        NodeId::from_bytes(bytes)
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

const _: () = assert!(FILE_ID_BYTES == 20, "SHA-1 digest width must match FileId");

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use past_crypto::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_string(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes, so far.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` above also bumped `len`, but we captured bit_len first.
        let mut arr = self.buf;
        arr[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&arr.clone());
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// One-shot convenience for hashing a byte string.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(d: Digest) -> String {
        d.to_string()
    }

    #[test]
    fn rfc3174_test_vectors() {
        assert_eq!(
            hex(Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(Sha1::digest(&b"a".repeat(1_000_000))),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
        assert_eq!(
            hex(Sha1::digest(
                &b"0123456701234567012345670123456701234567012345670123456701234567".repeat(10)
            )),
            "dea356a2cddd90c7a7ecedc5ebb563934f460452"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha1::digest(data));
        assert_eq!(
            hex(Sha1::digest(data)),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise padding around the 55/56/63/64 byte boundaries.
        for n in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0x5a_u8; n];
            let mut h = Sha1::new();
            let mid = n / 2;
            h.update(&data[..mid]);
            h.update(&data[mid..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "length {n}");
        }
    }

    #[test]
    fn digest_to_ids() {
        let d = Sha1::digest(b"node key");
        let fid = d.to_file_id();
        assert_eq!(fid.as_bytes(), d.as_bytes());
        let nid = d.to_node_id();
        assert_eq!(&nid.to_bytes()[..], &d.as_bytes()[..16]);
    }

    proptest! {
        #[test]
        fn prop_split_update_equals_oneshot(data: Vec<u8>, split in 0usize..=256) {
            let split = split.min(data.len());
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha1::digest(&data));
        }

        #[test]
        fn prop_distinct_inputs_distinct_digests(a: Vec<u8>, b: Vec<u8>) {
            prop_assume!(a != b);
            // Not a guarantee in theory, but any failure here would mean a
            // catastrophically broken implementation.
            prop_assert_ne!(Sha1::digest(&a), Sha1::digest(&b));
        }
    }
}
