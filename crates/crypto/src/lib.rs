//! Cryptographic substrate for the PAST reproduction.
//!
//! This crate implements, from scratch, everything the PAST paper's
//! security machinery (§2.2–§2.3) relies on:
//!
//! - [`Sha1`]: SHA-1 (RFC 3174) — PAST derives fileIds and nodeIds from
//!   SHA-1 and uses it for content integrity hashes.
//! - [`U256`]: fixed-width 256-bit integer arithmetic supporting the
//!   signature scheme.
//! - [`sign`]: a Schnorr-style signature over Z_p^* (p = 2^255 − 19) plus
//!   a fast *simulated* keyed-hash scheme used by the large trace-driven
//!   experiments (see the module docs for the security caveats — neither
//!   instantiation is production crypto, by design of the reproduction).
//! - [`cert`]: file certificates, reclaim certificates and store receipts.
//! - [`audit`]: challenge-response possession proofs (SHA-1 over
//!   file ‖ nonce) for sampled storage audits.
//! - [`smartcard`]: the smartcard model — issuer-certified key pairs,
//!   tamper-proof nodeId derivation, per-card storage quotas.
//! - [`quota`]: the quota ledger that keeps storage demand below supply.

pub mod audit;
pub mod cert;
pub mod memo;
pub mod quota;
mod sha1;
pub mod sign;
pub mod smartcard;
mod u256;

pub use audit::{audit_nonce, possession_proof, verify_possession};
pub use cert::{compute_file_id, CertError, FileCertificate, ReclaimCertificate, StoreReceipt};
pub use memo::VerifyMemo;
pub use quota::{QuotaError, QuotaLedger};
pub use sha1::{Digest, Sha1};
pub use sign::{KeyPair, OwnerKey, PublicKey, Scheme, SchnorrSig, Signature};
pub use smartcard::{derive_node_id, CardIssuer, NodeIdCertificate, Smartcard};
pub use u256::U256;

/// A file certificate shared by reference count. Certificates are
/// immutable once issued, so messages, stores and pointer tables pass
/// them as `Arc`: fanning a replica out to k holders or forwarding a
/// message along k hops bumps a counter instead of deep-copying the
/// owner key, signature and hashes at every step.
pub type SharedFileCert = std::sync::Arc<FileCertificate>;
/// A reclaim certificate shared by reference count.
pub type SharedReclaimCert = std::sync::Arc<ReclaimCertificate>;
/// A store receipt shared by reference count.
pub type SharedReceipt = std::sync::Arc<StoreReceipt>;
