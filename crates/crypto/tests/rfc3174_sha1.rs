//! RFC 3174 (and FIPS 180-1) official SHA-1 test vectors, exercised
//! through the public `past-crypto` API — including the 1-million-'a'
//! digest and the incremental `update` path.

use past_crypto::Sha1;

fn hex(digest: &[u8; 20]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn rfc3174_test1_abc() {
    let d = Sha1::digest(b"abc");
    assert_eq!(hex(d.as_bytes()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

#[test]
fn rfc3174_test2_two_block_message() {
    let d = Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    assert_eq!(hex(d.as_bytes()), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

#[test]
fn rfc3174_test3_one_million_a() {
    let data = vec![b'a'; 1_000_000];
    let d = Sha1::digest(&data);
    assert_eq!(hex(d.as_bytes()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

#[test]
fn rfc3174_test4_repeated_digits() {
    // TEST4: "01234567..." (8 digits × 8) repeated 10 times = 640 bytes.
    let block = b"0123456701234567012345670123456701234567012345670123456701234567";
    let mut data = Vec::with_capacity(640);
    for _ in 0..10 {
        data.extend_from_slice(block);
    }
    let d = Sha1::digest(&data);
    assert_eq!(hex(d.as_bytes()), "dea356a2cddd90c7a7ecedc5ebb563934f460452");
}

#[test]
fn fips_empty_message() {
    let d = Sha1::digest(b"");
    assert_eq!(hex(d.as_bytes()), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

#[test]
fn incremental_update_matches_one_shot() {
    // Split TEST3's input at awkward, non-block-aligned boundaries.
    let data = vec![b'a'; 1_000_000];
    let mut h = Sha1::new();
    let mut off = 0usize;
    for chunk in [1usize, 63, 64, 65, 1000, 998_614, 193] {
        h.update(&data[off..off + chunk]);
        off += chunk;
    }
    h.update(&data[off..]);
    assert_eq!(h.finalize(), Sha1::digest(&data));
}

#[test]
fn rfc3174_test2_incremental_split() {
    // RFC 3174's driver feeds TEST2a then TEST2b via separate updates.
    let mut h = Sha1::new();
    h.update(b"abcdbcdecdefdefgefghfghighijhi");
    h.update(b"jkijkljklmklmnlmnomnopnopq");
    assert_eq!(
        hex(h.finalize().as_bytes()),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    );
}
