//! Property tests for `U256` against independent reference
//! big-integer arithmetic done digit-by-digit on big-endian byte
//! arrays (schoolbook add/sub/mul, binary shift-subtract modulo) —
//! no shared code with the limb-based implementation under test.

use past_crypto::U256;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference arithmetic on big-endian byte digits.
// ---------------------------------------------------------------------

/// a + b over 32 big-endian digits, returning (sum mod 2^256, carry).
fn ref_add(a: &[u8; 32], b: &[u8; 32]) -> ([u8; 32], bool) {
    let mut out = [0u8; 32];
    let mut carry = 0u16;
    for i in (0..32).rev() {
        let s = a[i] as u16 + b[i] as u16 + carry;
        out[i] = (s & 0xff) as u8;
        carry = s >> 8;
    }
    (out, carry != 0)
}

/// a − b over 32 big-endian digits, returning (diff mod 2^256, borrow).
fn ref_sub(a: &[u8; 32], b: &[u8; 32]) -> ([u8; 32], bool) {
    let mut out = [0u8; 32];
    let mut borrow = 0i16;
    for i in (0..32).rev() {
        let d = a[i] as i16 - b[i] as i16 - borrow;
        if d < 0 {
            out[i] = (d + 256) as u8;
            borrow = 1;
        } else {
            out[i] = d as u8;
            borrow = 0;
        }
    }
    (out, borrow != 0)
}

/// Schoolbook a × b: 64 big-endian digits, exact.
fn ref_mul(a: &[u8; 32], b: &[u8; 32]) -> [u8; 64] {
    let mut acc = [0u32; 64];
    for i in 0..32 {
        for j in 0..32 {
            acc[i + j + 1] += a[i] as u32 * b[j] as u32;
        }
    }
    // Propagate carries from the least-significant digit up.
    let mut out = [0u8; 64];
    let mut carry = 0u32;
    for i in (0..64).rev() {
        let v = acc[i] + carry;
        out[i] = (v & 0xff) as u8;
        carry = v >> 8;
    }
    debug_assert_eq!(carry, 0, "product fits in 512 bits");
    out
}

fn ge33(a: &[u8; 33], b: &[u8; 33]) -> bool {
    for i in 0..33 {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub33(a: &mut [u8; 33], b: &[u8; 33]) {
    let mut borrow = 0i16;
    for i in (0..33).rev() {
        let d = a[i] as i16 - b[i] as i16 - borrow;
        if d < 0 {
            a[i] = (d + 256) as u8;
            borrow = 1;
        } else {
            a[i] = d as u8;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "sub33 caller guarantees a >= b");
}

/// Binary long division remainder: `num mod m`, one bit at a time.
fn ref_mod(num: &[u8; 64], m: &[u8; 32]) -> [u8; 32] {
    let mut m33 = [0u8; 33];
    m33[1..].copy_from_slice(m);
    let mut rem = [0u8; 33];
    for bit in 0..512 {
        // rem = (rem << 1) | next bit of num.
        let mut carry = (num[bit / 8] >> (7 - bit % 8)) & 1;
        for i in (0..33).rev() {
            let v = ((rem[i] as u16) << 1) | carry as u16;
            rem[i] = (v & 0xff) as u8;
            carry = (v >> 8) as u8;
        }
        if ge33(&rem, &m33) {
            sub33(&mut rem, &m33);
        }
    }
    let mut out = [0u8; 32];
    out.copy_from_slice(&rem[1..]);
    out
}

fn widen(a: &[u8; 32]) -> [u8; 64] {
    let mut out = [0u8; 64];
    out[32..].copy_from_slice(a);
    out
}

fn is_zero(a: &[u8; 32]) -> bool {
    a.iter().all(|&b| b == 0)
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_bytes_roundtrip(a in any::<[u8; 32]>()) {
        prop_assert_eq!(U256::from_be_bytes(a).to_be_bytes(), a);
    }

    #[test]
    fn prop_add_matches_reference(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let (sum, carry) = U256::from_be_bytes(a).overflowing_add(U256::from_be_bytes(b));
        let (ref_sum, ref_carry) = ref_add(&a, &b);
        prop_assert_eq!(sum.to_be_bytes(), ref_sum);
        prop_assert_eq!(carry, ref_carry);
    }

    #[test]
    fn prop_sub_matches_reference(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let (diff, borrow) = U256::from_be_bytes(a).overflowing_sub(U256::from_be_bytes(b));
        let (ref_diff, ref_borrow) = ref_sub(&a, &b);
        prop_assert_eq!(diff.to_be_bytes(), ref_diff);
        prop_assert_eq!(borrow, ref_borrow);
    }

    #[test]
    fn prop_add_sub_roundtrip(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        // (a + b) − b round-trips through the wrap-around.
        let a256 = U256::from_be_bytes(a);
        let (sum, _) = a256.overflowing_add(U256::from_be_bytes(b));
        let (back, _) = sum.overflowing_sub(U256::from_be_bytes(b));
        prop_assert_eq!(back, a256);
    }

    #[test]
    fn prop_reduce_mod_matches_reference(a in any::<[u8; 32]>(), m in any::<[u8; 32]>()) {
        prop_assume!(!is_zero(&m));
        let got = U256::from_be_bytes(a).reduce_mod(U256::from_be_bytes(m));
        prop_assert_eq!(got.to_be_bytes(), ref_mod(&widen(&a), &m));
    }

    #[test]
    fn prop_mulmod_matches_reference(
        a in any::<[u8; 32]>(),
        b in any::<[u8; 32]>(),
        m in any::<[u8; 32]>(),
    ) {
        prop_assume!(!is_zero(&m));
        let m256 = U256::from_be_bytes(m);
        // mulmod expects operands already reduced below m.
        let ar = U256::from_be_bytes(a).reduce_mod(m256);
        let br = U256::from_be_bytes(b).reduce_mod(m256);
        let got = ar.mulmod(br, m256);
        prop_assert_eq!(
            got.to_be_bytes(),
            ref_mod(&ref_mul(&ar.to_be_bytes(), &br.to_be_bytes()), &m)
        );
    }

    #[test]
    fn prop_addmod_matches_reference(
        a in any::<[u8; 32]>(),
        b in any::<[u8; 32]>(),
        m in any::<[u8; 32]>(),
    ) {
        prop_assume!(!is_zero(&m));
        let m256 = U256::from_be_bytes(m);
        // addmod expects operands already reduced below m.
        let ar = U256::from_be_bytes(a).reduce_mod(m256);
        let br = U256::from_be_bytes(b).reduce_mod(m256);
        let got = ar.addmod(br, m256);
        let (sum, carry) = ref_add(&ar.to_be_bytes(), &br.to_be_bytes());
        let mut wide = widen(&sum);
        wide[31] = carry as u8;
        prop_assert_eq!(got.to_be_bytes(), ref_mod(&wide, &m));
    }

    #[test]
    fn prop_submod_matches_reference(
        a in any::<[u8; 32]>(),
        b in any::<[u8; 32]>(),
        m in any::<[u8; 32]>(),
    ) {
        prop_assume!(!is_zero(&m));
        let m256 = U256::from_be_bytes(m);
        let ar = U256::from_be_bytes(a).reduce_mod(m256);
        let br = U256::from_be_bytes(b).reduce_mod(m256);
        let got = ar.submod(br, m256);
        let (arb, brb) = (ar.to_be_bytes(), br.to_be_bytes());
        let expected = if ge33(&pad33(&arb), &pad33(&brb)) {
            ref_sub(&arb, &brb).0
        } else {
            // ar + m − br; ar < br < m keeps the result below m (< 2^256).
            let (s, carry) = ref_add(&arb, &m);
            let mut t = pad33(&s);
            t[0] = carry as u8;
            sub33(&mut t, &pad33(&brb));
            let mut out = [0u8; 32];
            out.copy_from_slice(&t[1..]);
            out
        };
        prop_assert_eq!(got.to_be_bytes(), expected);
    }
}

fn pad33(a: &[u8; 32]) -> [u8; 33] {
    let mut out = [0u8; 33];
    out[1..].copy_from_slice(a);
    out
}

// Pin the reference implementation itself with a couple of known values.
#[test]
fn reference_self_check() {
    let two = {
        let mut b = [0u8; 32];
        b[31] = 2;
        b
    };
    let three = {
        let mut b = [0u8; 32];
        b[31] = 3;
        b
    };
    let (six, carry) = ref_add(&three, &three);
    assert!(!carry);
    assert_eq!(six[31], 6);
    let prod = ref_mul(&two, &three);
    assert_eq!(prod[63], 6);
    assert_eq!(ref_mod(&widen(&six), &{ let mut m = [0u8; 32]; m[31] = 4; m })[31], 2);
}
