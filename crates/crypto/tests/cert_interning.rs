//! Regression suite for the owner-key interning and signature boxing
//! that shrank `FileCertificate` for the 10M-file replay: the packed
//! layout must hold, interning must not consume or shift any RNG
//! stream, and memoized verification must behave exactly as it did
//! with inline owners.

use past_crypto::{FileCertificate, KeyPair, OwnerKey, Scheme, Sha1, Signature, VerifyMemo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The layout contract behind the memory-wall numbers: an interned
/// owner is one pointer, a Schnorr signature is boxed (24 B inline for
/// the enum), and the whole certificate stays within its budget.
#[test]
fn packed_certificate_layout_holds() {
    assert_eq!(std::mem::size_of::<OwnerKey>(), 8, "OwnerKey is one Arc");
    assert_eq!(
        std::mem::size_of::<Signature>(),
        24,
        "Signature boxes its Schnorr payload"
    );
    assert!(
        std::mem::size_of::<FileCertificate>() <= 112,
        "FileCertificate grew past its packed budget: {} B",
        std::mem::size_of::<FileCertificate>()
    );
}

/// Every certificate a keypair issues shares the *same* owner
/// allocation — the interning that collapses per-replica owner copies
/// into one Arc per node identity.
#[test]
fn issued_certificates_share_one_owner_allocation() {
    let mut rng = StdRng::seed_from_u64(11);
    let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let shared = kp.public_shared();
    let a = FileCertificate::issue(&kp, "a", Sha1::digest(b"a"), 10, 5, 0, 0, &mut rng);
    let b = FileCertificate::issue(&kp, "b", Sha1::digest(b"b"), 20, 5, 0, 0, &mut rng);
    assert!(
        std::ptr::eq(shared.key(), a.owner.key()),
        "cert a must reference the keypair's interned owner"
    );
    assert!(
        std::ptr::eq(a.owner.key(), b.owner.key()),
        "both certs must share one allocation"
    );
    // Equality still compares by value, so a deep copy of the key is
    // equal without being pointer-identical.
    let deep = OwnerKey::new(kp.public());
    assert!(!std::ptr::eq(deep.key(), shared.key()));
    assert_eq!(deep, shared);
}

/// Interning must be invisible to every seeded RNG stream: keypair
/// generation and certificate issuing draw exactly as many values as
/// they did with inline owners. The pinned probe value was captured
/// before the interning refactor landed; any drift means the
/// allocation change leaked into the deterministic replay.
#[test]
fn interning_is_rng_stream_neutral() {
    let mut rng = StdRng::seed_from_u64(7);
    let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let cert = FileCertificate::issue(&kp, "f", Sha1::digest(b"x"), 99, 5, 0, 0, &mut rng);
    cert.verify(None).expect("freshly issued cert verifies");
    let probe: u64 = rng.gen();
    assert_eq!(
        probe, PINNED_PROBE,
        "RNG stream shifted: issuing draws a different number of values"
    );
}

/// Captured from the pre-interning implementation (same seed, same
/// call sequence as `interning_is_rng_stream_neutral`).
const PINNED_PROBE: u64 = 3162259528749214585;

/// Interned certificates memoize exactly like inline ones: the memo
/// key binds the serialized owner bytes (not the Arc identity), so a
/// clone sharing the allocation hits, and a different owner misses.
#[test]
fn interned_certificates_are_memo_compatible() {
    let mut rng = StdRng::seed_from_u64(13);
    let kp = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let cert = FileCertificate::issue(&kp, "m", Sha1::digest(b"m"), 64, 5, 0, 0, &mut rng);
    let mut memo = VerifyMemo::new(64);
    cert.verify_memo(None, &mut memo).expect("verifies");
    assert_eq!(memo.misses(), 1);
    // A clone shares the interned owner — and the memo entry.
    let clone = cert.clone();
    assert!(std::ptr::eq(clone.owner.key(), cert.owner.key()));
    clone.verify_memo(None, &mut memo).expect("verifies");
    assert_eq!(memo.hits(), 1, "shared-owner clone must hit the memo");
    // A certificate from another owner takes the full path.
    let kp2 = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let other = FileCertificate::issue(&kp2, "m", Sha1::digest(b"m"), 64, 5, 0, 0, &mut rng);
    other.verify_memo(None, &mut memo).expect("verifies");
    assert_eq!(memo.misses(), 2, "different owner must miss");
}
