//! Integration tests for signature-verification memoization: soundness
//! against tampering, residency bounds, observability counters, and
//! interaction with `Arc`-shared certificates.

use past_crypto::{
    CertError, FileCertificate, KeyPair, ReclaimCertificate, Scheme, Sha1, SharedFileCert,
    SharedReclaimCert, StoreReceipt, VerifyMemo,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn issue_cert(owner: &KeyPair, name: &str, rng: &mut StdRng) -> FileCertificate {
    FileCertificate::issue(owner, name, Sha1::digest(name.as_bytes()), 4096, 5, 0, 0, rng)
}

/// The core soundness property: a memoized success for one certificate
/// must not leak to a tampered twin. Every tampered field changes the
/// memo key (it is recomputed from current field values on every call),
/// so the twin takes the full verification path and is rejected.
#[test]
fn tampered_cert_rejected_even_when_untampered_twin_memoized() {
    let mut rng = StdRng::seed_from_u64(42);
    let owner = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let cert = issue_cert(&owner, "twin", &mut rng);
    let mut memo = VerifyMemo::new(64);

    // Memoize the genuine certificate.
    assert!(cert.verify_memo(None, &mut memo).is_ok());
    assert!(cert.verify_memo(None, &mut memo).is_ok());
    assert_eq!(memo.hits(), 1);

    // Tamper with each signed field in turn; all must be rejected.
    let mut bigger = cert.clone();
    bigger.file_size += 1;
    assert_eq!(
        bigger.verify_memo(None, &mut memo),
        Err(CertError::BadSignature)
    );

    let mut resalted = cert.clone();
    resalted.salt ^= 1;
    assert_eq!(
        resalted.verify_memo(None, &mut memo),
        Err(CertError::BadSignature)
    );

    let mut rehashed = cert.clone();
    rehashed.content_hash = Sha1::digest(b"other content");
    assert_eq!(
        rehashed.verify_memo(None, &mut memo),
        Err(CertError::BadSignature)
    );

    let mut resigned = cert.clone();
    resigned.signature = issue_cert(&owner, "other", &mut rng).signature;
    assert_eq!(
        resigned.verify_memo(None, &mut memo),
        Err(CertError::BadSignature)
    );

    // Failures are never recorded: the genuine cert still hits, the
    // tampered ones still miss.
    let hits_before = memo.hits();
    assert!(cert.verify_memo(None, &mut memo).is_ok());
    assert_eq!(memo.hits(), hits_before + 1);
    assert_eq!(
        bigger.verify_memo(None, &mut memo),
        Err(CertError::BadSignature)
    );
}

/// Relational checks sit outside the memo: a memoized signature never
/// short-circuits the content-hash comparison.
#[test]
fn memoized_signature_does_not_bypass_content_hash_check() {
    let mut rng = StdRng::seed_from_u64(43);
    let owner = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let cert = issue_cert(&owner, "file", &mut rng);
    let mut memo = VerifyMemo::new(64);

    assert!(cert.verify_memo(Some(cert.content_hash), &mut memo).is_ok());
    // Signature is now memoized; corrupted received bytes must still fail.
    assert_eq!(
        cert.verify_memo(Some(Sha1::digest(b"corrupt")), &mut memo),
        Err(CertError::ContentMismatch)
    );
}

/// Residency stays within the configured bound no matter how many
/// distinct certificates flow through.
#[test]
fn memo_residency_is_bounded() {
    let mut rng = StdRng::seed_from_u64(44);
    let owner = KeyPair::generate(Scheme::Keyed, &mut rng);
    let mut memo = VerifyMemo::new(32);
    for i in 0..500 {
        let cert = issue_cert(&owner, &format!("f{i}"), &mut rng);
        assert!(cert.verify_memo(None, &mut memo).is_ok());
        assert!(memo.len() <= memo.capacity());
    }
    assert_eq!(memo.misses(), 500);
}

/// The `past-obs` hit/miss counters agree with hand-computed totals:
/// verifying `n` distinct certificates `r` times each through a large
/// memo costs exactly `n` misses and `n * (r - 1)` hits.
#[test]
fn obs_counters_match_hand_computed_counts() {
    let mut rng = StdRng::seed_from_u64(45);
    let owner = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let (n, r) = (7usize, 4usize);
    let certs: Vec<FileCertificate> = (0..n)
        .map(|i| issue_cert(&owner, &format!("c{i}"), &mut rng))
        .collect();

    past_obs::install(past_obs::Recorder::new());
    let mut memo = VerifyMemo::new(1024);
    for _ in 0..r {
        for cert in &certs {
            assert!(cert.verify_memo(None, &mut memo).is_ok());
        }
    }
    let rec = past_obs::uninstall().expect("recorder was installed");

    let expected_misses = n as u64;
    let expected_hits = (n * (r - 1)) as u64;
    assert_eq!(memo.misses(), expected_misses);
    assert_eq!(memo.hits(), expected_hits);
    assert_eq!(
        rec.metrics().counter_value("crypto.verify.memo_miss"),
        expected_misses
    );
    assert_eq!(
        rec.metrics().counter_value("crypto.verify.memo_hit"),
        expected_hits
    );
}

/// A reclaim certificate issued after an insert verifies against the
/// stored certificate even when that certificate is shared by `Arc`
/// across message and store (the PR's ownership model), and the
/// owner-binding check is never memoized away.
#[test]
fn reclaim_after_insert_verifies_against_shared_cert() {
    let mut rng = StdRng::seed_from_u64(46);
    let owner = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let stored: SharedFileCert = SharedFileCert::new(issue_cert(&owner, "doc", &mut rng));
    // The store and an in-flight message hold the same allocation.
    let in_msg = stored.clone();
    assert!(SharedFileCert::ptr_eq(&stored, &in_msg));

    let mut memo = VerifyMemo::new(64);
    let reclaim = SharedReclaimCert::new(ReclaimCertificate::issue(
        &owner,
        stored.file_id,
        1,
        &mut rng,
    ));
    // &SharedFileCert derefs to &FileCertificate at the call site.
    assert!(reclaim.verify_memo(&stored, &mut memo).is_ok());
    assert!(reclaim.verify_memo(&in_msg, &mut memo).is_ok());
    assert_eq!(memo.hits(), 1);

    // A different owner's stored cert must still be rejected even
    // though the reclaim signature itself is memoized.
    let other = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let foreign = SharedFileCert::new(issue_cert(&other, "doc", &mut rng));
    assert_eq!(
        reclaim.verify_memo(&foreign, &mut memo),
        Err(CertError::BadSignature)
    );
}

/// Store receipts share the memo too: k receipts verified by the client
/// then re-verified on retry cost one signature check each.
#[test]
fn receipts_memoize_across_reverification() {
    let mut rng = StdRng::seed_from_u64(47);
    let storer = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let cert = issue_cert(&storer, "r", &mut rng);
    let receipt = StoreReceipt::issue(&storer, cert.file_id, false, 9, &mut rng);
    let mut memo = VerifyMemo::new(64);
    assert!(receipt.verify_memo(&mut memo).is_ok());
    assert!(receipt.verify_memo(&mut memo).is_ok());
    assert_eq!((memo.misses(), memo.hits()), (1, 1));
}
