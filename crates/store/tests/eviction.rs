//! Hand-computed eviction scenarios for the cache replacement
//! policies, plus a check that hit accounting is mirrored one-for-one
//! into the `past-obs` metrics registry.
//!
//! The GD-S walkthrough tracks the paper's weight rule
//! `H_d = L + c(d)/s(d)` (unit cost) by hand, so each expected victim
//! below is derived from the arithmetic in the comments, not from
//! running the code.

use past_id::FileId;
use past_obs::{self, Recorder};
use past_store::{Cache, CachePolicyKind};

fn fid(v: u32) -> FileId {
    let mut bytes = [0u8; 20];
    bytes[..4].copy_from_slice(&v.to_be_bytes());
    FileId::from_bytes(bytes)
}

const A: u32 = 1;
const B: u32 = 2;
const C: u32 = 3;
const D: u32 = 4;

/// Budget 1000. Weights below are H = L + 1/size.
///
/// | step         | L      | weights after step                  | used |
/// |--------------|--------|-------------------------------------|------|
/// | insert A 500 | 0      | A=0.002                             | 500  |
/// | insert B 250 | 0      | A=0.002  B=0.004                    | 750  |
/// | insert C 400 | 0.002  | B=0.004  C=0.0045   (A evicted)     | 650  |
/// | probe  B     | 0.002  | B=0.006  C=0.0045                   | 650  |
/// | insert D 600 | 0.0045 | B=0.006  D=0.00617  (C evicted)     | 850  |
///
/// A is the first victim (lowest H = 0.002); after probing B its weight
/// rises above C's, so C — not B — is the second victim even though B
/// was inserted earlier.
#[test]
fn gds_hand_computed_weights() {
    let mut c = Cache::new(CachePolicyKind::GreedyDualSize);

    assert!(c.insert(fid(A), 500, 1000).is_empty());
    assert!(c.insert(fid(B), 250, 1000).is_empty());
    assert_eq!(c.used(), 750);

    let evicted = c.insert(fid(C), 400, 1000);
    assert_eq!(evicted, vec![fid(A)], "A has the lowest weight 0.002");
    assert_eq!(c.used(), 650);

    assert_eq!(c.probe(fid(B)), Some(250), "B re-weighted to 0.006");

    let evicted = c.insert(fid(D), 600, 1000);
    assert_eq!(evicted, vec![fid(C)], "C (0.0045) now below B (0.006)");
    assert!(c.contains(fid(B)));
    assert!(c.contains(fid(D)));
    assert_eq!(c.used(), 850);

    // (hits, misses, insertions, evictions)
    assert_eq!(c.probe(fid(A)), None, "A was evicted");
    assert_eq!(c.stats(), (1, 1, 4, 2));
}

/// Budget 300 with 100-byte files: pure recency order decides.
///
/// insert 1,2,3 → order (oldest first) 1,2,3
/// probe 1      → order 2,3,1
/// insert 4     → evicts 2; order 3,1,4
/// probe 3      → order 1,4,3
/// insert 5     → evicts 1; order 4,3,5
#[test]
fn lru_hand_computed_recency() {
    let mut c = Cache::new(CachePolicyKind::Lru);
    for id in [1u32, 2, 3] {
        assert!(c.insert(fid(id), 100, 300).is_empty());
    }
    assert_eq!(c.probe(fid(1)), Some(100));
    assert_eq!(c.insert(fid(4), 100, 300), vec![fid(2)]);
    assert_eq!(c.probe(fid(3)), Some(100));
    assert_eq!(c.insert(fid(5), 100, 300), vec![fid(1)]);
    assert!(c.contains(fid(4)));
    assert!(c.contains(fid(3)));
    assert!(c.contains(fid(5)));
    assert_eq!(c.stats(), (2, 0, 5, 2));
}

/// The same GD-S scenario with a recorder installed: every stats()
/// increment must land in the matching `store.cache.*.gds` counter.
#[test]
fn gds_hit_accounting_matches_obs_counters() {
    past_obs::install(Recorder::new());

    let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
    c.insert(fid(A), 500, 1000);
    c.insert(fid(B), 250, 1000);
    c.insert(fid(C), 400, 1000); // evicts A
    c.probe(fid(B)); // hit
    c.insert(fid(D), 600, 1000); // evicts C
    c.probe(fid(A)); // miss

    let rec = past_obs::uninstall().expect("recorder installed above");
    let (hits, misses, inserts, evictions) = c.stats();
    let m = rec.metrics();
    assert_eq!(m.counter_value("store.cache.hit.gds"), hits);
    assert_eq!(m.counter_value("store.cache.miss.gds"), misses);
    assert_eq!(m.counter_value("store.cache.insert.gds"), inserts);
    assert_eq!(m.counter_value("store.cache.evict.gds"), evictions);
    // Nothing leaked into another policy's counters.
    assert_eq!(m.counter_value("store.cache.hit.lru"), 0);
    assert_eq!(m.counter_value("store.cache.evict.lru"), 0);
}

/// Same check for LRU, including shrink_to-driven evictions.
#[test]
fn lru_hit_accounting_matches_obs_counters() {
    past_obs::install(Recorder::new());

    let mut c = Cache::new(CachePolicyKind::Lru);
    for id in 0..5u32 {
        c.insert(fid(id), 100, 1000);
    }
    c.probe(fid(0)); // hit
    c.probe(fid(99)); // miss
    let shrink_evicted = c.shrink_to(250).len() as u64;
    assert_eq!(shrink_evicted, 3);

    let rec = past_obs::uninstall().expect("recorder installed above");
    let (hits, misses, inserts, evictions) = c.stats();
    let m = rec.metrics();
    assert_eq!(m.counter_value("store.cache.hit.lru"), hits);
    assert_eq!(m.counter_value("store.cache.miss.lru"), misses);
    assert_eq!(m.counter_value("store.cache.insert.lru"), inserts);
    assert_eq!(m.counter_value("store.cache.evict.lru"), evictions);
    assert_eq!(evictions, shrink_evicted);
}

/// With no recorder installed, cache bookkeeping still works and the
/// obs hooks are inert (stats unaffected).
#[test]
fn counters_noop_without_recorder() {
    assert!(!past_obs::is_enabled());
    let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
    c.insert(fid(A), 100, 1000);
    assert_eq!(c.probe(fid(A)), Some(100));
    assert_eq!(c.stats(), (1, 0, 1, 0));
}
