//! Disk caching of popular files (paper §4).
//!
//! PAST nodes use the *unused* portion of their advertised disk space to
//! cache files that pass through them during lookups and inserts. Cached
//! copies may be evicted at any time — in particular, a node evicts
//! cached files to make room for new primary or diverted replicas, so
//! cache effectiveness degrades gracefully as storage utilization rises.
//!
//! The replacement policy the paper adopts is **GreedyDual-Size (GD-S)**
//! (Cao & Irani, USITS '97): each cached file `d` carries a weight
//! `H_d = L + c(d)/s(d)`, where `s(d)` is its size, `c(d)` its cost
//! (1 to maximize hit rate) and `L` an inflation value set to the evicted
//! victim's weight. The classic "subtract H_v from everyone" formulation
//! is implemented with the equivalent L-offset trick so that eviction is
//! O(log n). An LRU policy is provided for the paper's comparison.

use std::collections::BTreeSet;

use past_id::IdHashMap;

use past_id::FileId;

/// Total order wrapper for finite priorities.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Priority(f64);

impl Eq for Priority {}
impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which replacement policy a cache runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CachePolicyKind {
    /// GreedyDual-Size with unit cost (the paper's choice).
    GreedyDualSize,
    /// Least-recently-used.
    Lru,
    /// Caching disabled (the paper's "None" baseline in Figure 8).
    None,
}

/// Internal replacement state.
#[derive(Debug)]
enum PolicyState {
    Gds {
        /// Inflation value L.
        inflation: f64,
        /// Monotonic touch sequence used to break weight ties by recency.
        seq: u64,
        /// Current (weight, touch sequence) per file.
        weight: IdHashMap<FileId, (f64, u64)>,
        /// Files ordered by weight, then touch recency, then id.
        order: BTreeSet<(Priority, u64, FileId)>,
    },
    Lru {
        /// Logical clock.
        tick: u64,
        /// Last-use tick per file.
        last_use: IdHashMap<FileId, u64>,
        /// Files ordered by last use.
        order: BTreeSet<(u64, FileId)>,
    },
    None,
}

/// A size-bounded file cache with pluggable replacement policy.
///
/// The cache stores file metadata only (id and size); actual content
/// lives with the simulation's file registry. Its capacity is managed by
/// the surrounding [`crate::NodeStore`]: replicas take precedence, and
/// the store shrinks the cache (evicting entries) whenever replicas need
/// the space.
#[derive(Debug)]
pub struct Cache {
    kind: CachePolicyKind,
    entries: IdHashMap<FileId, u64>,
    used: u64,
    policy: PolicyState,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache with the given policy.
    pub fn new(kind: CachePolicyKind) -> Self {
        let policy = match kind {
            CachePolicyKind::GreedyDualSize => PolicyState::Gds {
                inflation: 0.0,
                seq: 0,
                weight: IdHashMap::default(),
                order: BTreeSet::new(),
            },
            CachePolicyKind::Lru => PolicyState::Lru {
                tick: 0,
                last_use: IdHashMap::default(),
                order: BTreeSet::new(),
            },
            CachePolicyKind::None => PolicyState::None,
        };
        Cache {
            kind,
            entries: IdHashMap::default(),
            used: 0,
            policy,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The policy in use.
    pub fn kind(&self) -> CachePolicyKind {
        self.kind
    }

    /// Bytes currently occupied by cached files.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: FileId) -> bool {
        self.entries.contains_key(&id)
    }

    /// (hits, misses, insertions, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.insertions, self.evictions)
    }

    /// Probes the cache for `id`, updating recency/weight and hit
    /// statistics. Returns the file size if present.
    pub fn probe(&mut self, id: FileId) -> Option<u64> {
        match self.entries.get(&id).copied() {
            Some(size) => {
                self.hits += 1;
                past_obs::counter(self.metric_name("hit"), 1);
                self.touch(id, size);
                Some(size)
            }
            None => {
                self.misses += 1;
                past_obs::counter(self.metric_name("miss"), 1);
                None
            }
        }
    }

    /// The `past-obs` counter name for one cache event (`hit`, `miss`,
    /// `insert`, `evict`) under this policy.
    fn metric_name(&self, event: &str) -> &'static str {
        match (self.kind, event) {
            (CachePolicyKind::GreedyDualSize, "hit") => "store.cache.hit.gds",
            (CachePolicyKind::GreedyDualSize, "miss") => "store.cache.miss.gds",
            (CachePolicyKind::GreedyDualSize, "insert") => "store.cache.insert.gds",
            (CachePolicyKind::GreedyDualSize, "evict") => "store.cache.evict.gds",
            (CachePolicyKind::Lru, "hit") => "store.cache.hit.lru",
            (CachePolicyKind::Lru, "miss") => "store.cache.miss.lru",
            (CachePolicyKind::Lru, "insert") => "store.cache.insert.lru",
            (CachePolicyKind::Lru, "evict") => "store.cache.evict.lru",
            (CachePolicyKind::None, "hit") => "store.cache.hit.none",
            (CachePolicyKind::None, "miss") => "store.cache.miss.none",
            (CachePolicyKind::None, "insert") => "store.cache.insert.none",
            (CachePolicyKind::None, "evict") => "store.cache.evict.none",
            _ => "store.cache.other",
        }
    }

    fn touch(&mut self, id: FileId, size: u64) {
        match &mut self.policy {
            PolicyState::Gds {
                inflation,
                seq,
                weight,
                order,
            } => {
                if let Some((old_w, old_s)) = weight.get(&id).copied() {
                    order.remove(&(Priority(old_w), old_s, id));
                }
                *seq += 1;
                let h = *inflation + gds_benefit(size);
                weight.insert(id, (h, *seq));
                order.insert((Priority(h), *seq, id));
            }
            PolicyState::Lru {
                tick,
                last_use,
                order,
            } => {
                if let Some(old) = last_use.get(&id).copied() {
                    order.remove(&(old, id));
                }
                *tick += 1;
                last_use.insert(id, *tick);
                order.insert((*tick, id));
            }
            PolicyState::None => {}
        }
    }

    /// Inserts a file of `size` bytes, evicting lowest-priority entries
    /// until it fits within `budget` total bytes. Returns the evicted ids.
    ///
    /// The insertion is refused (empty return, nothing cached) when the
    /// policy is [`CachePolicyKind::None`], the file alone exceeds the
    /// budget, or it is already cached (which just refreshes it).
    pub fn insert(&mut self, id: FileId, size: u64, budget: u64) -> Vec<FileId> {
        if matches!(self.policy, PolicyState::None) {
            return Vec::new();
        }
        if self.entries.contains_key(&id) {
            self.touch(id, size);
            return Vec::new();
        }
        if size > budget {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > budget {
            match self.evict_one() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        debug_assert!(self.used + size <= budget);
        self.entries.insert(id, size);
        self.used += size;
        self.insertions += 1;
        past_obs::counter(self.metric_name("insert"), 1);
        self.touch(id, size);
        evicted
    }

    /// Shrinks the cache to at most `budget` bytes (called by the store
    /// when replicas claim space). Returns evicted ids.
    pub fn shrink_to(&mut self, budget: u64) -> Vec<FileId> {
        let mut evicted = Vec::new();
        while self.used > budget {
            match self.evict_one() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        evicted
    }

    /// Removes a specific file (e.g. it became a primary replica here).
    pub fn remove(&mut self, id: FileId) -> bool {
        match self.entries.remove(&id) {
            Some(size) => {
                self.used -= size;
                match &mut self.policy {
                    PolicyState::Gds { weight, order, .. } => {
                        if let Some((w, s)) = weight.remove(&id) {
                            order.remove(&(Priority(w), s, id));
                        }
                    }
                    PolicyState::Lru {
                        last_use, order, ..
                    } => {
                        if let Some(t) = last_use.remove(&id) {
                            order.remove(&(t, id));
                        }
                    }
                    PolicyState::None => {}
                }
                true
            }
            None => false,
        }
    }

    fn evict_one(&mut self) -> Option<FileId> {
        let victim = match &mut self.policy {
            PolicyState::Gds {
                inflation,
                weight,
                order,
                ..
            } => {
                let (pri, s, id) = order.iter().next().copied()?;
                order.remove(&(pri, s, id));
                weight.remove(&id);
                // GreedyDual aging: L rises to the victim's weight.
                *inflation = pri.0;
                id
            }
            PolicyState::Lru {
                last_use, order, ..
            } => {
                let (t, id) = order.iter().next().copied()?;
                order.remove(&(t, id));
                last_use.remove(&id);
                id
            }
            PolicyState::None => return None,
        };
        let size = self
            .entries
            .remove(&victim)
            .expect("policy and entries in sync");
        self.used -= size;
        self.evictions += 1;
        past_obs::counter(self.metric_name("evict"), 1);
        Some(victim)
    }
}

/// GD-S benefit term c(d)/s(d) with c(d) = 1; guards the zero-size files
/// present in the NLANR trace.
fn gds_benefit(size: u64) -> f64 {
    1.0 / (size.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fid(v: u32) -> FileId {
        let mut bytes = [0u8; 20];
        bytes[..4].copy_from_slice(&v.to_be_bytes());
        FileId::from_bytes(bytes)
    }

    #[test]
    fn insert_and_probe() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        assert!(c.insert(fid(1), 100, 1000).is_empty());
        assert_eq!(c.probe(fid(1)), Some(100));
        assert_eq!(c.probe(fid(2)), None);
        assert_eq!(c.stats().0, 1);
        assert_eq!(c.stats().1, 1);
    }

    #[test]
    fn gds_evicts_larger_file_first() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 900, 1000); // benefit 1/900 — low priority
        c.insert(fid(2), 50, 1000); // benefit 1/50 — higher
        let evicted = c.insert(fid(3), 100, 1000);
        assert_eq!(evicted, vec![fid(1)], "big file is the GD-S victim");
        assert!(c.contains(fid(2)));
        assert!(c.contains(fid(3)));
    }

    #[test]
    fn gds_recency_via_inflation() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        // Two same-size files; a is older but gets re-referenced after an
        // eviction raised L, so b becomes the victim.
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        // Force an eviction to inflate L: insert big file into small room.
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(1)], "oldest same-size entry evicted");
        // Re-reference fid(2) — its weight now includes the raised L.
        c.probe(fid(2));
        let evicted = c.insert(fid(4), 400, 1000);
        assert_eq!(evicted, vec![fid(3)], "unreferenced entry evicted");
        assert!(c.contains(fid(2)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        c.probe(fid(1)); // 2 is now least recent
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(2)]);
    }

    #[test]
    fn none_policy_caches_nothing() {
        let mut c = Cache::new(CachePolicyKind::None);
        assert!(c.insert(fid(1), 10, 1000).is_empty());
        assert!(!c.contains(fid(1)));
        assert_eq!(c.probe(fid(1)), None);
    }

    #[test]
    fn oversized_file_refused() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 2000, 1000);
        assert!(!c.contains(fid(1)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        c.insert(fid(1), 400, 1000); // refresh, not duplicate
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), 800);
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(2)], "refresh made fid(1) most recent");
    }

    #[test]
    fn shrink_to_evicts_until_budget() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        for i in 0..5 {
            c.insert(fid(i), 100, 1000);
        }
        let evicted = c.shrink_to(250);
        assert_eq!(evicted.len(), 3);
        assert!(c.used() <= 250);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_specific_entry() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 100, 1000);
        assert!(c.remove(fid(1)));
        assert!(!c.remove(fid(1)));
        assert_eq!(c.used(), 0);
        // Removal must not corrupt the order structures.
        c.insert(fid(2), 100, 1000);
        assert_eq!(c.probe(fid(2)), Some(100));
    }

    #[test]
    fn zero_size_files_supported() {
        // The NLANR trace contains 0-byte files; GD-S weights must stay
        // finite.
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 0, 10);
        assert!(c.contains(fid(1)));
        assert_eq!(c.probe(fid(1)), Some(0));
    }

    proptest! {
        #[test]
        fn prop_used_equals_sum_of_entries(ops: Vec<(u8, u8, u16)>) {
            for kind in [CachePolicyKind::GreedyDualSize, CachePolicyKind::Lru] {
                let mut c = Cache::new(kind);
                for (op, id, size) in &ops {
                    match op % 4 {
                        0 | 1 => { c.insert(fid(*id as u32), *size as u64, 4096); }
                        2 => { c.probe(fid(*id as u32)); }
                        _ => { c.remove(fid(*id as u32)); }
                    }
                    let sum: u64 = c.entries.values().sum();
                    prop_assert_eq!(c.used(), sum);
                    prop_assert!(c.used() <= 4096);
                }
            }
        }

        #[test]
        fn prop_budget_respected(sizes: Vec<u16>, budget in 1u64..5000) {
            let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
            for (i, s) in sizes.iter().enumerate() {
                c.insert(fid(i as u32), *s as u64, budget);
                prop_assert!(c.used() <= budget);
            }
        }
    }
}
