//! Disk caching of popular files (paper §4).
//!
//! PAST nodes use the *unused* portion of their advertised disk space to
//! cache files that pass through them during lookups and inserts. Cached
//! copies may be evicted at any time — in particular, a node evicts
//! cached files to make room for new primary or diverted replicas, so
//! cache effectiveness degrades gracefully as storage utilization rises.
//!
//! The replacement policy the paper adopts is **GreedyDual-Size (GD-S)**
//! (Cao & Irani, USITS '97): each cached file `d` carries a weight
//! `H_d = L + c(d)/s(d)`, where `s(d)` is its size, `c(d)` its cost
//! (1 to maximize hit rate) and `L` an inflation value set to the evicted
//! victim's weight. The classic "subtract H_v from everyone" formulation
//! is implemented with the equivalent L-offset trick so that eviction is
//! O(log n). An LRU policy is provided for the paper's comparison, and a
//! popularity-proportional random policy (admit with probability that
//! saturates toward 1 as the observed request rate grows, evict uniformly
//! at random) in the spirit of the power-law caching analysis of Sarshar
//! & Roychowdhury (arXiv cs/0210010) serves as a stateless-replacement
//! baseline for the flash-crowd study.

use std::collections::BTreeSet;

use past_id::IdHashMap;

use past_id::FileId;

/// Total order wrapper for finite priorities.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Priority(f64);

impl Eq for Priority {}
impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which replacement policy a cache runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CachePolicyKind {
    /// GreedyDual-Size with unit cost (the paper's choice).
    GreedyDualSize,
    /// Least-recently-used.
    Lru,
    /// Popularity-proportional random: admit with probability
    /// `seen / (seen + 4)` where `seen` is the number of requests for the
    /// file observed at this node, evict a uniformly random resident.
    /// Randomness comes from a private SplitMix64 stream seeded with a
    /// fixed constant, so runs stay deterministic and no shared RNG
    /// stream is consumed.
    PopularityRandom,
    /// Caching disabled (the paper's "None" baseline in Figure 8).
    None,
}

/// A cache lifecycle event, used to key per-policy obs counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheEvent {
    /// A probe found the file.
    Hit,
    /// A probe missed.
    Miss,
    /// A file was admitted.
    Insert,
    /// A resident file was evicted by the policy.
    Evict,
}

impl CacheEvent {
    /// Every event, for exhaustiveness tests.
    pub const ALL: [CacheEvent; 4] = [
        CacheEvent::Hit,
        CacheEvent::Miss,
        CacheEvent::Insert,
        CacheEvent::Evict,
    ];
}

impl CachePolicyKind {
    /// Every policy, for exhaustiveness tests.
    pub const ALL: [CachePolicyKind; 4] = [
        CachePolicyKind::GreedyDualSize,
        CachePolicyKind::Lru,
        CachePolicyKind::PopularityRandom,
        CachePolicyKind::None,
    ];
}

/// Fixed seed for the popularity-random policy's private SplitMix64
/// stream (the golden-ratio increment itself).
const POPRAND_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Admission half-point: a file seen `POPRAND_HALF` times is admitted
/// with probability 1/2; the probability saturates toward 1 as the
/// observed request count grows.
const POPRAND_HALF: u64 = 4;

/// One step of SplitMix64 (Steele et al., the JDK's seeding generator).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Internal replacement state.
#[derive(Debug)]
enum PolicyState {
    Gds {
        /// Inflation value L.
        inflation: f64,
        /// Monotonic touch sequence used to break weight ties by recency.
        seq: u64,
        /// Current (weight, touch sequence) per file.
        weight: IdHashMap<FileId, (f64, u64)>,
        /// Files ordered by weight, then touch recency, then id.
        order: BTreeSet<(Priority, u64, FileId)>,
    },
    Lru {
        /// Logical clock.
        tick: u64,
        /// Last-use tick per file.
        last_use: IdHashMap<FileId, u64>,
        /// Files ordered by last use.
        order: BTreeSet<(u64, FileId)>,
    },
    PopRandom {
        /// Private SplitMix64 state (admission coin + victim choice).
        rng: u64,
        /// Requests observed per file (probes and insert offers),
        /// saturating. Grows with the node's working set, like the GDS
        /// weight map.
        seen: IdHashMap<FileId, u32>,
        /// Residents in arbitrary order, for O(1) uniform victim choice.
        slots: Vec<FileId>,
        /// Position of each resident in `slots`.
        pos: IdHashMap<FileId, u32>,
    },
    None,
}

/// A size-bounded file cache with pluggable replacement policy.
///
/// The cache stores file metadata only (id and size); actual content
/// lives with the simulation's file registry. Its capacity is managed by
/// the surrounding [`crate::NodeStore`]: replicas take precedence, and
/// the store shrinks the cache (evicting entries) whenever replicas need
/// the space.
#[derive(Debug)]
pub struct Cache {
    kind: CachePolicyKind,
    entries: IdHashMap<FileId, u64>,
    used: u64,
    policy: PolicyState,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache with the given policy.
    pub fn new(kind: CachePolicyKind) -> Self {
        let policy = match kind {
            CachePolicyKind::GreedyDualSize => PolicyState::Gds {
                inflation: 0.0,
                seq: 0,
                weight: IdHashMap::default(),
                order: BTreeSet::new(),
            },
            CachePolicyKind::Lru => PolicyState::Lru {
                tick: 0,
                last_use: IdHashMap::default(),
                order: BTreeSet::new(),
            },
            CachePolicyKind::PopularityRandom => PolicyState::PopRandom {
                rng: POPRAND_SEED,
                seen: IdHashMap::default(),
                slots: Vec::new(),
                pos: IdHashMap::default(),
            },
            CachePolicyKind::None => PolicyState::None,
        };
        Cache {
            kind,
            entries: IdHashMap::default(),
            used: 0,
            policy,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The policy in use.
    pub fn kind(&self) -> CachePolicyKind {
        self.kind
    }

    /// Bytes currently occupied by cached files.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: FileId) -> bool {
        self.entries.contains_key(&id)
    }

    /// (hits, misses, insertions, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.insertions, self.evictions)
    }

    /// Probes the cache for `id`, updating recency/weight and hit
    /// statistics. Returns the file size if present.
    pub fn probe(&mut self, id: FileId) -> Option<u64> {
        self.note_request(id);
        match self.entries.get(&id).copied() {
            Some(size) => {
                self.hits += 1;
                past_obs::counter(self.metric_name(CacheEvent::Hit), 1);
                self.touch(id, size);
                Some(size)
            }
            None => {
                self.misses += 1;
                past_obs::counter(self.metric_name(CacheEvent::Miss), 1);
                None
            }
        }
    }

    /// The `past-obs` counter name for one cache event under this
    /// policy. Exhaustive: every (policy, event) pair has its own name
    /// (see the uniqueness test below).
    fn metric_name(&self, event: CacheEvent) -> &'static str {
        use CacheEvent as E;
        use CachePolicyKind as P;
        match (self.kind, event) {
            (P::GreedyDualSize, E::Hit) => "store.cache.hit.gds",
            (P::GreedyDualSize, E::Miss) => "store.cache.miss.gds",
            (P::GreedyDualSize, E::Insert) => "store.cache.insert.gds",
            (P::GreedyDualSize, E::Evict) => "store.cache.evict.gds",
            (P::Lru, E::Hit) => "store.cache.hit.lru",
            (P::Lru, E::Miss) => "store.cache.miss.lru",
            (P::Lru, E::Insert) => "store.cache.insert.lru",
            (P::Lru, E::Evict) => "store.cache.evict.lru",
            (P::PopularityRandom, E::Hit) => "store.cache.hit.poprand",
            (P::PopularityRandom, E::Miss) => "store.cache.miss.poprand",
            (P::PopularityRandom, E::Insert) => "store.cache.insert.poprand",
            (P::PopularityRandom, E::Evict) => "store.cache.evict.poprand",
            (P::None, E::Hit) => "store.cache.hit.none",
            (P::None, E::Miss) => "store.cache.miss.none",
            (P::None, E::Insert) => "store.cache.insert.none",
            (P::None, E::Evict) => "store.cache.evict.none",
        }
    }

    /// Records one observed request for `id` (popularity-random only:
    /// the admission probability is driven by this count).
    fn note_request(&mut self, id: FileId) {
        if let PolicyState::PopRandom { seen, .. } = &mut self.policy {
            let n = seen.entry(id).or_insert(0);
            *n = n.saturating_add(1);
        }
    }

    /// Popularity-random admission coin: admit with probability
    /// `seen / (seen + POPRAND_HALF)`. Other policies always admit.
    fn admit(&mut self, id: FileId) -> bool {
        match &mut self.policy {
            PolicyState::PopRandom { rng, seen, .. } => {
                let n = seen.get(&id).copied().unwrap_or(0) as u128;
                let r = splitmix64(rng) as u128;
                // r / 2^64 < n / (n + HALF), in exact integer arithmetic.
                r * (n + POPRAND_HALF as u128) < n << 64
            }
            _ => true,
        }
    }

    fn touch(&mut self, id: FileId, size: u64) {
        match &mut self.policy {
            PolicyState::Gds {
                inflation,
                seq,
                weight,
                order,
            } => {
                if let Some((old_w, old_s)) = weight.get(&id).copied() {
                    order.remove(&(Priority(old_w), old_s, id));
                }
                *seq += 1;
                let h = *inflation + gds_benefit(size);
                weight.insert(id, (h, *seq));
                order.insert((Priority(h), *seq, id));
            }
            PolicyState::Lru {
                tick,
                last_use,
                order,
            } => {
                if let Some(old) = last_use.get(&id).copied() {
                    order.remove(&(old, id));
                }
                *tick += 1;
                last_use.insert(id, *tick);
                order.insert((*tick, id));
            }
            // Popularity tracking happens in `note_request`; eviction is
            // uniform, so a touch carries no recency information.
            PolicyState::PopRandom { .. } => {}
            PolicyState::None => {}
        }
    }

    /// Inserts a file of `size` bytes, evicting lowest-priority entries
    /// until it fits within `budget` total bytes. Returns the evicted ids.
    ///
    /// The insertion is refused (empty return, nothing cached) when the
    /// policy is [`CachePolicyKind::None`], the file alone exceeds the
    /// budget, the popularity-random admission coin says no, or it is
    /// already cached (which just refreshes it).
    pub fn insert(&mut self, id: FileId, size: u64, budget: u64) -> Vec<FileId> {
        if matches!(self.policy, PolicyState::None) {
            return Vec::new();
        }
        self.note_request(id);
        if let Some(stored) = self.entries.get(&id).copied() {
            // Refresh from the *stored* size: a caller-supplied size that
            // disagreed would desynchronize the GDS weight from the byte
            // accounting in `entries`/`used`.
            debug_assert_eq!(
                stored, size,
                "cached size for re-inserted id drifted from the caller's"
            );
            self.touch(id, stored);
            return Vec::new();
        }
        if size > budget {
            return Vec::new();
        }
        if !self.admit(id) {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > budget {
            match self.evict_one() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        debug_assert!(self.used + size <= budget);
        self.entries.insert(id, size);
        self.used += size;
        if let PolicyState::PopRandom { slots, pos, .. } = &mut self.policy {
            pos.insert(id, slots.len() as u32);
            slots.push(id);
        }
        self.insertions += 1;
        past_obs::counter(self.metric_name(CacheEvent::Insert), 1);
        self.touch(id, size);
        evicted
    }

    /// Shrinks the cache to at most `budget` bytes (called by the store
    /// when replicas claim space). Returns evicted ids.
    pub fn shrink_to(&mut self, budget: u64) -> Vec<FileId> {
        let mut evicted = Vec::new();
        while self.used > budget {
            match self.evict_one() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        evicted
    }

    /// Removes a specific file (e.g. it became a primary replica here).
    pub fn remove(&mut self, id: FileId) -> bool {
        match self.entries.remove(&id) {
            Some(size) => {
                self.used -= size;
                match &mut self.policy {
                    PolicyState::Gds { weight, order, .. } => {
                        if let Some((w, s)) = weight.remove(&id) {
                            order.remove(&(Priority(w), s, id));
                        }
                    }
                    PolicyState::Lru {
                        last_use, order, ..
                    } => {
                        if let Some(t) = last_use.remove(&id) {
                            order.remove(&(t, id));
                        }
                    }
                    PolicyState::PopRandom { slots, pos, .. } => {
                        if let Some(i) = pos.remove(&id) {
                            let i = i as usize;
                            slots.swap_remove(i);
                            if let Some(moved) = slots.get(i).copied() {
                                pos.insert(moved, i as u32);
                            }
                        }
                    }
                    PolicyState::None => {}
                }
                true
            }
            None => false,
        }
    }

    fn evict_one(&mut self) -> Option<FileId> {
        let victim = match &mut self.policy {
            PolicyState::Gds {
                inflation,
                weight,
                order,
                ..
            } => {
                let (pri, s, id) = order.iter().next().copied()?;
                order.remove(&(pri, s, id));
                weight.remove(&id);
                // GreedyDual aging: L rises to the victim's weight.
                *inflation = pri.0;
                id
            }
            PolicyState::Lru {
                last_use, order, ..
            } => {
                let (t, id) = order.iter().next().copied()?;
                order.remove(&(t, id));
                last_use.remove(&id);
                id
            }
            PolicyState::PopRandom {
                rng, slots, pos, ..
            } => {
                if slots.is_empty() {
                    return None;
                }
                let i = (splitmix64(rng) % slots.len() as u64) as usize;
                let id = slots.swap_remove(i);
                pos.remove(&id);
                if let Some(moved) = slots.get(i).copied() {
                    pos.insert(moved, i as u32);
                }
                id
            }
            PolicyState::None => return None,
        };
        let size = self
            .entries
            .remove(&victim)
            .expect("policy and entries in sync");
        self.used -= size;
        self.evictions += 1;
        past_obs::counter(self.metric_name(CacheEvent::Evict), 1);
        Some(victim)
    }
}

/// GD-S benefit term c(d)/s(d) with c(d) = 1; guards the zero-size files
/// present in the NLANR trace.
fn gds_benefit(size: u64) -> f64 {
    1.0 / (size.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fid(v: u32) -> FileId {
        let mut bytes = [0u8; 20];
        bytes[..4].copy_from_slice(&v.to_be_bytes());
        FileId::from_bytes(bytes)
    }

    /// Deterministic per-id size, so re-inserts of the same id always
    /// agree with the stored size (the refresh path asserts this).
    fn sized(id: u8) -> u64 {
        (id as u64 * 37) % 977 + 1
    }

    #[test]
    fn insert_and_probe() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        assert!(c.insert(fid(1), 100, 1000).is_empty());
        assert_eq!(c.probe(fid(1)), Some(100));
        assert_eq!(c.probe(fid(2)), None);
        assert_eq!(c.stats().0, 1);
        assert_eq!(c.stats().1, 1);
    }

    #[test]
    fn gds_evicts_larger_file_first() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 900, 1000); // benefit 1/900 — low priority
        c.insert(fid(2), 50, 1000); // benefit 1/50 — higher
        let evicted = c.insert(fid(3), 100, 1000);
        assert_eq!(evicted, vec![fid(1)], "big file is the GD-S victim");
        assert!(c.contains(fid(2)));
        assert!(c.contains(fid(3)));
    }

    #[test]
    fn gds_recency_via_inflation() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        // Two same-size files; a is older but gets re-referenced after an
        // eviction raised L, so b becomes the victim.
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        // Force an eviction to inflate L: insert big file into small room.
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(1)], "oldest same-size entry evicted");
        // Re-reference fid(2) — its weight now includes the raised L.
        c.probe(fid(2));
        let evicted = c.insert(fid(4), 400, 1000);
        assert_eq!(evicted, vec![fid(3)], "unreferenced entry evicted");
        assert!(c.contains(fid(2)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        c.probe(fid(1)); // 2 is now least recent
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(2)]);
    }

    #[test]
    fn none_policy_caches_nothing() {
        let mut c = Cache::new(CachePolicyKind::None);
        assert!(c.insert(fid(1), 10, 1000).is_empty());
        assert!(!c.contains(fid(1)));
        assert_eq!(c.probe(fid(1)), None);
    }

    #[test]
    fn oversized_file_refused() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 2000, 1000);
        assert!(!c.contains(fid(1)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        c.insert(fid(1), 400, 1000);
        c.insert(fid(2), 400, 1000);
        c.insert(fid(1), 400, 1000); // refresh, not duplicate
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), 800);
        let evicted = c.insert(fid(3), 400, 1000);
        assert_eq!(evicted, vec![fid(2)], "refresh made fid(1) most recent");
    }

    #[test]
    fn gds_refresh_uses_stored_size() {
        // A refresh must key the GDS weight off the stored size: the
        // ordering between a refreshed large file and a small file has
        // to stay benefit-correct afterwards.
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 900, 1000); // benefit 1/900
        c.insert(fid(2), 50, 1000); // benefit 1/50
        c.insert(fid(1), 900, 1000); // refresh (same size by contract)
        let evicted = c.insert(fid(3), 100, 1000);
        assert_eq!(
            evicted,
            vec![fid(1)],
            "refreshed big file still the GD-S victim"
        );
    }

    #[test]
    fn shrink_to_evicts_until_budget() {
        let mut c = Cache::new(CachePolicyKind::Lru);
        for i in 0..5 {
            c.insert(fid(i), 100, 1000);
        }
        let evicted = c.shrink_to(250);
        assert_eq!(evicted.len(), 3);
        assert!(c.used() <= 250);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_specific_entry() {
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 100, 1000);
        assert!(c.remove(fid(1)));
        assert!(!c.remove(fid(1)));
        assert_eq!(c.used(), 0);
        // Removal must not corrupt the order structures.
        c.insert(fid(2), 100, 1000);
        assert_eq!(c.probe(fid(2)), Some(100));
    }

    #[test]
    fn zero_size_files_supported() {
        // The NLANR trace contains 0-byte files; GD-S weights must stay
        // finite.
        let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
        c.insert(fid(1), 0, 10);
        assert!(c.contains(fid(1)));
        assert_eq!(c.probe(fid(1)), Some(0));
    }

    #[test]
    fn metric_names_unique_and_exhaustive() {
        // Every (policy, event) pair maps to its own counter; the old
        // `store.cache.other` catch-all must be gone.
        let mut names = std::collections::BTreeSet::new();
        for kind in CachePolicyKind::ALL {
            let c = Cache::new(kind);
            for event in CacheEvent::ALL {
                let name = c.metric_name(event);
                assert!(name.starts_with("store.cache."), "{name}");
                assert_ne!(name, "store.cache.other");
                assert!(names.insert(name), "duplicate metric name: {name}");
            }
        }
        assert_eq!(names.len(), CachePolicyKind::ALL.len() * CacheEvent::ALL.len());
    }

    #[test]
    fn poprand_admission_warms_with_popularity() {
        // A file offered over and over gets admitted within a few tries
        // (p ≥ 1/5 per offer, rising), while the budget invariant holds.
        let mut c = Cache::new(CachePolicyKind::PopularityRandom);
        let mut admitted_after = None;
        for attempt in 1..=64 {
            c.insert(fid(7), 100, 1000);
            if c.contains(fid(7)) {
                admitted_after = Some(attempt);
                break;
            }
        }
        let attempts = admitted_after.expect("popular file never admitted");
        assert!(attempts <= 64);
        assert_eq!(c.used(), 100);
        // Once resident, repeated offers refresh rather than duplicate.
        c.insert(fid(7), 100, 1000);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn poprand_is_deterministic() {
        let run = || {
            let mut c = Cache::new(CachePolicyKind::PopularityRandom);
            let mut log = Vec::new();
            for i in 0..200u32 {
                let id = fid(i % 23);
                let ev = c.insert(id, 50, 300);
                log.push((id, c.contains(id), ev));
                c.probe(fid((i * 7) % 23));
            }
            (log, c.stats())
        };
        assert_eq!(run(), run(), "fixed-seed policy must replay identically");
    }

    #[test]
    fn poprand_evicts_to_fit() {
        let mut c = Cache::new(CachePolicyKind::PopularityRandom);
        // Warm the files up so admission is near-certain.
        for _ in 0..20 {
            for i in 0..6u32 {
                c.probe(fid(i));
            }
        }
        for i in 0..6u32 {
            for _ in 0..16 {
                c.insert(fid(i), 100, 300);
                if c.contains(fid(i)) {
                    break;
                }
            }
        }
        assert!(c.used() <= 300);
        assert!(c.len() <= 3);
        assert!(c.stats().3 > 0, "evictions must have occurred");
    }

    proptest! {
        #[test]
        fn prop_used_equals_sum_of_entries(ops: Vec<(u8, u8)>) {
            for kind in [
                CachePolicyKind::GreedyDualSize,
                CachePolicyKind::Lru,
                CachePolicyKind::PopularityRandom,
            ] {
                let mut c = Cache::new(kind);
                for (op, id) in &ops {
                    match op % 5 {
                        0 | 1 => { c.insert(fid(*id as u32), sized(*id), 4096); }
                        2 => { c.probe(fid(*id as u32)); }
                        3 => { c.remove(fid(*id as u32)); }
                        _ => { c.shrink_to(sized(*id) * 2); }
                    }
                    let sum: u64 = c.entries.values().sum();
                    prop_assert_eq!(c.used(), sum);
                    prop_assert!(c.used() <= 4096);
                }
            }
        }

        #[test]
        fn prop_budget_respected(sizes: Vec<u16>, budget in 1u64..5000) {
            let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
            for (i, s) in sizes.iter().enumerate() {
                c.insert(fid(i as u32), *s as u64, budget);
                prop_assert!(c.used() <= budget);
            }
        }

        #[test]
        fn prop_gds_inflation_monotone(ops: Vec<(u8, u8)>) {
            // The GreedyDual L value only ever rises (to the evicted
            // victim's weight) — it is the aging clock of the policy.
            let mut c = Cache::new(CachePolicyKind::GreedyDualSize);
            let read_l = |c: &Cache| match &c.policy {
                PolicyState::Gds { inflation, .. } => *inflation,
                _ => unreachable!(),
            };
            let mut last = read_l(&c);
            for (op, id) in &ops {
                match op % 5 {
                    0 | 1 => { c.insert(fid(*id as u32), sized(*id), 2048); }
                    2 => { c.probe(fid(*id as u32)); }
                    3 => { c.remove(fid(*id as u32)); }
                    _ => { c.shrink_to(sized(*id)); }
                }
                let now = read_l(&c);
                prop_assert!(now >= last, "L fell from {} to {}", last, now);
                last = now;
            }
        }

        #[test]
        fn prop_lru_evicts_in_strict_recency_order(ops: Vec<(u8, u8)>) {
            // Model: a recency queue (front = least recent). Every
            // eviction batch the cache reports must equal the model's
            // least-recent entries, in order.
            let mut c = Cache::new(CachePolicyKind::Lru);
            let mut model: Vec<(FileId, u64)> = Vec::new();
            const BUDGET: u64 = 2048;
            for (op, id) in &ops {
                let id32 = fid(*id as u32);
                let size = sized(*id);
                match op % 4 {
                    0 | 1 => {
                        let evicted = c.insert(id32, size, BUDGET);
                        if let Some(i) = model.iter().position(|(f, _)| *f == id32) {
                            // Refresh: most recent now; nothing evicted.
                            let e = model.remove(i);
                            model.push(e);
                            prop_assert!(evicted.is_empty());
                        } else if size <= BUDGET {
                            let mut used: u64 = model.iter().map(|(_, s)| s).sum();
                            let mut expect = Vec::new();
                            while used + size > BUDGET {
                                let (f, s) = model.remove(0);
                                expect.push(f);
                                used -= s;
                            }
                            model.push((id32, size));
                            prop_assert_eq!(&evicted, &expect,
                                "LRU evicted out of recency order");
                        } else {
                            prop_assert!(evicted.is_empty());
                        }
                    }
                    2 => {
                        if c.probe(id32).is_some() {
                            let i = model.iter().position(|(f, _)| *f == id32).unwrap();
                            let e = model.remove(i);
                            model.push(e);
                        }
                    }
                    _ => {
                        c.remove(id32);
                        model.retain(|(f, _)| *f != id32);
                    }
                }
                for (f, _) in &model {
                    prop_assert!(c.contains(*f), "model and cache contents diverged");
                }
                prop_assert_eq!(c.len(), model.len());
            }
        }
    }
}
