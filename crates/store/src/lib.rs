//! Per-node storage management and caching for PAST (paper §3 and §4).
//!
//! [`NodeStore`] manages one node's advertised disk space: primary
//! replicas, diverted replicas held for leaf-set neighbors, the A→B and
//! C→B diversion pointers of §3.3, and a [`Cache`] occupying the unused
//! remainder with GreedyDual-Size or LRU replacement.
//!
//! The acceptance thresholds [`StorePolicy::t_pri`]/[`StorePolicy::t_div`]
//! implement the §3.3.1 policies: a node N rejects a file D when
//! `size(D)/free(N) > t`, discriminating against large files as the node
//! fills, with a stricter threshold for diverted replicas so that space
//! remains for primaries.

mod cache;
mod store;

pub use cache::{Cache, CacheEvent, CachePolicyKind};
pub use store::{NodeStore, ReplicaRef, Resolution, StoreError, StorePolicy, StoredReplica};
