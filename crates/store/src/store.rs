//! The per-node storage manager (paper §3).
//!
//! Each PAST node contributes an advertised amount of disk space. That
//! space holds, in priority order:
//!
//! 1. **primary replicas** — files for which this node is one of the `k`
//!    numerically closest nodes;
//! 2. **diverted replicas** — files stored here on behalf of a leaf-set
//!    neighbor that could not accommodate them (replica diversion, §3.3);
//! 3. **cached copies** — everything left over is a disk cache that can
//!    be evicted at any time (§4).
//!
//! Besides replicas, the node's *file table* records diversion pointers:
//! if node A diverts a replica to node B, A keeps a pointer A→B, and the
//! node C with the k+1-th closest nodeId keeps a backup pointer C→B so
//! that A's failure does not orphan the replica.


use past_crypto::SharedFileCert;
use past_id::IdHashMap;
use past_id::FileId;

use crate::cache::{Cache, CachePolicyKind};

/// Storage-management thresholds (paper §3.3.1).
#[derive(Clone, Copy, Debug)]
pub struct StorePolicy {
    /// Acceptance threshold for primary replicas: reject file D at node N
    /// when `size(D)/free(N) > t_pri`.
    pub t_pri: f64,
    /// Acceptance threshold for diverted replicas (`t_div < t_pri`, so
    /// nodes keep room for their own primaries).
    pub t_div: f64,
    /// Cache admission fraction `c`: a routed-through file is cached if
    /// smaller than `c` × the node's current cache size (the unused
    /// portion of its storage).
    pub cache_fraction: f64,
}

impl Default for StorePolicy {
    fn default() -> Self {
        // The paper's recommended operating point.
        StorePolicy {
            t_pri: 0.1,
            t_div: 0.05,
            cache_fraction: 1.0,
        }
    }
}

impl StorePolicy {
    /// The §5.1 baseline with replica/file diversion effectively disabled
    /// (t_pri = 1 accepts anything that fits; t_div = 0 rejects all
    /// diverted replicas).
    pub fn no_diversion() -> Self {
        StorePolicy {
            t_pri: 1.0,
            t_div: 0.0,
            cache_fraction: 1.0,
        }
    }
}

/// Why a replica was refused.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StoreError {
    /// `size/free > threshold` — the §3.3.1 acceptance policy.
    OverThreshold {
        /// File size in bytes.
        size: u64,
        /// Remaining free space at the node.
        free: u64,
    },
    /// The file is already stored here in some role.
    Duplicate,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OverThreshold { size, free } => {
                write!(f, "file of {size} B rejected with {free} B free")
            }
            StoreError::Duplicate => write!(f, "file already stored"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A replica held on this node's disk, returned **by value** when it is
/// removed (reclaim, migration, invariant maintenance).
///
/// In-map storage is packed more tightly: primary replicas are keyed
/// certificates alone (their `diverted_from` is always `None`), and
/// diverted replicas carry the diverting node inline. Borrowed access
/// goes through [`ReplicaRef`], which reconstitutes the uniform view.
#[derive(Clone, Debug)]
pub struct StoredReplica<H> {
    /// The file's certificate (carries size, owner, content hash),
    /// shared by reference count with the message that delivered it.
    pub cert: SharedFileCert,
    /// For diverted replicas: the node that diverted the file here.
    pub diverted_from: Option<H>,
}

impl<H> StoredReplica<H> {
    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.cert.file_size
    }
}

/// Borrowed view of a replica held on this node (primary or diverted).
///
/// At 10M-file scale the replica maps dominate resident memory, so the
/// primary map stores only the Arc'd certificate; this view carries the
/// role information (`diverted_from`) that the packed representation
/// keeps out of the map value.
#[derive(Debug)]
pub struct ReplicaRef<'a, H> {
    /// The file's certificate.
    pub cert: &'a SharedFileCert,
    /// For diverted replicas: the node that diverted the file here.
    pub diverted_from: Option<H>,
}

impl<H> ReplicaRef<'_, H> {
    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.cert.file_size
    }
}

/// In-map entry for a diverted replica: the certificate plus the node
/// that diverted the file here (needed when the diverter fails).
#[derive(Clone, Debug)]
struct DivertedEntry<H> {
    cert: SharedFileCert,
    from: H,
}

/// How a lookup resolves against this node's storage.
#[derive(Clone, Debug, PartialEq)]
pub enum Resolution<H: Copy> {
    /// Stored here as a primary replica.
    Primary,
    /// Stored here as a diverted replica (held for another node).
    DivertedHere,
    /// This node is responsible, but the replica lives at `holder`
    /// (one extra hop — the diversion lookup overhead the paper counts).
    Pointer(H),
    /// Present only in the disk cache.
    Cached,
    /// Unknown here.
    Miss,
}

/// The storage manager of one PAST node.
///
/// `H` identifies remote replica holders (the PAST layer instantiates it
/// with its node-entry type).
#[derive(Debug)]
pub struct NodeStore<H: Copy> {
    capacity: u64,
    policy: StorePolicy,
    /// Primary replicas: the packed value is the certificate alone
    /// (8 bytes inline) — a primary's `diverted_from` is always `None`.
    primaries: IdHashMap<FileId, SharedFileCert>,
    diverted: IdHashMap<FileId, DivertedEntry<H>>,
    /// A→B pointers: this node is responsible, B holds the replica.
    pointers: IdHashMap<FileId, H>,
    /// C→B backup pointers installed on the k+1-th closest node.
    backup_pointers: IdHashMap<FileId, H>,
    replica_used: u64,
    cache: Cache,
    /// Certificates of cached files (pruned in lock-step with the cache),
    /// so a cache hit can serve the file.
    cache_certs: IdHashMap<FileId, SharedFileCert>,
    rejected_inserts: u64,
}

impl<H: Copy> NodeStore<H> {
    /// Creates a store advertising `capacity` bytes.
    pub fn new(capacity: u64, policy: StorePolicy, cache_policy: CachePolicyKind) -> Self {
        NodeStore {
            capacity,
            policy,
            primaries: IdHashMap::default(),
            diverted: IdHashMap::default(),
            pointers: IdHashMap::default(),
            backup_pointers: IdHashMap::default(),
            replica_used: 0,
            cache: Cache::new(cache_policy),
            cache_certs: IdHashMap::default(),
            rejected_inserts: 0,
        }
    }

    /// Advertised capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The active policy thresholds.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// Bytes consumed by replicas (primaries + diverted held here).
    /// Cached copies do not count: they occupy the unused portion.
    pub fn replica_used(&self) -> u64 {
        self.replica_used
    }

    /// Free space as seen by the acceptance policy (capacity minus
    /// replica bytes; cache contents are evictable and do not reduce it).
    pub fn free(&self) -> u64 {
        self.capacity - self.replica_used
    }

    /// Current cache size in the paper's sense: the portion of storage
    /// not used by replicas.
    pub fn cache_budget(&self) -> u64 {
        self.free()
    }

    /// Storage utilization of this node in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.replica_used as f64 / self.capacity as f64
    }

    /// Number of primary replicas held.
    pub fn primary_count(&self) -> usize {
        self.primaries.len()
    }

    /// Number of diverted replicas held for other nodes.
    pub fn diverted_count(&self) -> usize {
        self.diverted.len()
    }

    /// Number of diversion pointers installed (A→B entries).
    pub fn pointer_count(&self) -> usize {
        self.pointers.len()
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Replicas this node refused so far.
    pub fn rejected_inserts(&self) -> u64 {
        self.rejected_inserts
    }

    /// The §3.3.1 acceptance test for a primary replica:
    /// `size/free > t_pri` rejects.
    pub fn accepts_primary(&self, size: u64) -> bool {
        accepts(size, self.free(), self.policy.t_pri)
    }

    /// The acceptance test for a diverted replica (`t_div`).
    pub fn accepts_diverted(&self, size: u64) -> bool {
        accepts(size, self.free(), self.policy.t_div)
    }

    /// Stores a primary replica, evicting cached files if needed.
    pub fn store_primary(&mut self, cert: SharedFileCert) -> Result<(), StoreError> {
        self.store_replica(cert, None, /* primary */ true)
    }

    /// Stores a diverted replica on behalf of `from`.
    pub fn store_diverted(&mut self, cert: SharedFileCert, from: H) -> Result<(), StoreError> {
        self.store_replica(cert, Some(from), false)
    }

    fn store_replica(
        &mut self,
        cert: SharedFileCert,
        from: Option<H>,
        primary: bool,
    ) -> Result<(), StoreError> {
        let id = cert.file_id;
        if self.primaries.contains_key(&id) || self.diverted.contains_key(&id) {
            return Err(StoreError::Duplicate);
        }
        let size = cert.file_size;
        let ok = if primary {
            self.accepts_primary(size)
        } else {
            self.accepts_diverted(size)
        };
        if !ok {
            self.rejected_inserts += 1;
            past_obs::counter("store.replica.reject", 1);
            return Err(StoreError::OverThreshold {
                size,
                free: self.free(),
            });
        }
        // Replicas displace cached copies ("when a node stores a new
        // primary or redirected replica, it typically evicts one or more
        // cached files").
        self.cache.remove(id);
        self.cache_certs.remove(&id);
        self.replica_used += size;
        let budget = self.cache_budget();
        for evicted in self.cache.shrink_to(budget) {
            self.cache_certs.remove(&evicted);
        }
        if primary {
            past_obs::counter("store.replica.primary", 1);
            self.primaries.insert(id, cert);
        } else {
            past_obs::counter("store.replica.diverted", 1);
            let from = from.expect("diverted replica carries its source");
            self.diverted.insert(id, DivertedEntry { cert, from });
        }
        Ok(())
    }

    /// Removes a replica in any role (reclaim, migration, invariant
    /// maintenance). Returns it if present.
    pub fn remove_replica(&mut self, id: FileId) -> Option<StoredReplica<H>> {
        let replica = match self.primaries.remove(&id) {
            Some(cert) => StoredReplica {
                cert,
                diverted_from: None,
            },
            None => {
                let entry = self.diverted.remove(&id)?;
                StoredReplica {
                    cert: entry.cert,
                    diverted_from: Some(entry.from),
                }
            }
        };
        self.replica_used -= replica.size();
        Some(replica)
    }

    /// Installs an A→B diversion pointer.
    pub fn install_pointer(&mut self, id: FileId, holder: H) {
        self.pointers.insert(id, holder);
    }

    /// Installs a C→B backup pointer (on the k+1-th closest node).
    pub fn install_backup_pointer(&mut self, id: FileId, holder: H) {
        self.backup_pointers.insert(id, holder);
    }

    /// Removes a diversion pointer. Returns the holder if present.
    pub fn remove_pointer(&mut self, id: FileId) -> Option<H> {
        self.pointers.remove(&id)
    }

    /// Removes a backup pointer. Returns the holder if present.
    pub fn remove_backup_pointer(&mut self, id: FileId) -> Option<H> {
        self.backup_pointers.remove(&id)
    }

    /// The backup pointers (file → holder) currently installed.
    pub fn backup_pointers(&self) -> impl Iterator<Item = (&FileId, &H)> {
        self.backup_pointers.iter()
    }

    /// The A→B pointers currently installed.
    pub fn pointers(&self) -> impl Iterator<Item = (&FileId, &H)> {
        self.pointers.iter()
    }

    /// The holder a diversion pointer for `id` references, if any.
    pub fn pointer(&self, id: FileId) -> Option<&H> {
        self.pointers.get(&id)
    }

    /// The holder a backup pointer for `id` references, if any.
    pub fn backup_pointer(&self, id: FileId) -> Option<&H> {
        self.backup_pointers.get(&id)
    }

    /// Resolves a lookup against replicas, pointers, then the cache.
    /// Probing the cache updates its hit statistics only when the file is
    /// found nowhere else.
    pub fn resolve(&mut self, id: FileId) -> Resolution<H> {
        if self.primaries.contains_key(&id) {
            return Resolution::Primary;
        }
        if self.diverted.contains_key(&id) {
            return Resolution::DivertedHere;
        }
        if let Some(h) = self.pointers.get(&id) {
            return Resolution::Pointer(*h);
        }
        if self.cache.probe(id).is_some() {
            return Resolution::Cached;
        }
        Resolution::Miss
    }

    /// Returns a borrowed view of the stored replica (primary or
    /// diverted) if present.
    pub fn replica(&self, id: FileId) -> Option<ReplicaRef<'_, H>> {
        if let Some(cert) = self.primaries.get(&id) {
            return Some(ReplicaRef {
                cert,
                diverted_from: None,
            });
        }
        self.diverted.get(&id).map(|e| ReplicaRef {
            cert: &e.cert,
            diverted_from: Some(e.from),
        })
    }

    /// Iterates over primary replicas as `(file, certificate)` — a
    /// primary's `diverted_from` is `None` by construction.
    pub fn primaries(&self) -> impl Iterator<Item = (&FileId, &SharedFileCert)> {
        self.primaries.iter()
    }

    /// Iterates over diverted replicas held here.
    pub fn diverted_here(&self) -> impl Iterator<Item = (&FileId, ReplicaRef<'_, H>)> {
        self.diverted.iter().map(|(id, e)| {
            (
                id,
                ReplicaRef {
                    cert: &e.cert,
                    diverted_from: Some(e.from),
                },
            )
        })
    }

    /// Whether this node holds a replica of `id` (primary or diverted).
    pub fn holds_replica(&self, id: FileId) -> bool {
        self.primaries.contains_key(&id) || self.diverted.contains_key(&id)
    }

    /// The §4 cache admission + insertion path for a file routed through
    /// this node. Returns `true` if the file was cached.
    pub fn cache_file(&mut self, cert: &SharedFileCert) -> bool {
        // With caching disabled nothing below can succeed; skip the
        // replica probes this would otherwise cost on every forward hop.
        if self.cache.kind() == CachePolicyKind::None {
            return false;
        }
        if self.holds_replica(cert.file_id) {
            return false;
        }
        let budget = self.cache_budget();
        let admit = (cert.file_size as f64) < self.policy.cache_fraction * budget as f64;
        if !admit {
            return false;
        }
        for evicted in self.cache.insert(cert.file_id, cert.file_size, budget) {
            self.cache_certs.remove(&evicted);
        }
        let cached = self.cache.contains(cert.file_id);
        if cached {
            self.cache_certs.insert(cert.file_id, cert.clone());
        }
        cached
    }

    /// The certificate of a cached file, if cached.
    pub fn cached_cert(&self, id: FileId) -> Option<&SharedFileCert> {
        self.cache_certs.get(&id)
    }

    /// Probes the cache alone (used by lookups hitting intermediate
    /// nodes). Returns `true` on a cache hit.
    pub fn cache_probe(&mut self, id: FileId) -> bool {
        self.cache.probe(id).is_some()
    }
}

/// The shared acceptance rule: reject when `size/free > t`.
fn accepts(size: u64, free: u64, t: f64) -> bool {
    if size > free {
        return false;
    }
    (size as f64) <= t * (free as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::{FileCertificate, KeyPair, Scheme, Sha1};
    use rand::{rngs::StdRng, SeedableRng};

    type Store = NodeStore<u32>;

    fn cert(name: &str, size: u64) -> SharedFileCert {
        let mut rng = StdRng::seed_from_u64(1);
        let owner = KeyPair::generate(Scheme::Keyed, &mut rng);
        SharedFileCert::new(FileCertificate::issue(
            &owner,
            name,
            Sha1::digest(name.as_bytes()),
            size,
            5,
            0,
            0,
            &mut rng,
        ))
    }

    fn store(capacity: u64) -> Store {
        NodeStore::new(
            capacity,
            StorePolicy::default(),
            CachePolicyKind::GreedyDualSize,
        )
    }

    #[test]
    fn primary_store_and_resolve() {
        let mut s = store(10_000);
        let c = cert("a", 500);
        let id = c.file_id;
        s.store_primary(c).unwrap();
        assert_eq!(s.resolve(id), Resolution::Primary);
        assert_eq!(s.replica_used(), 500);
        assert_eq!(s.free(), 9_500);
        assert_eq!(s.primary_count(), 1);
    }

    #[test]
    fn threshold_rejects_large_files() {
        let mut s = store(10_000);
        // t_pri = 0.1 → largest acceptable primary is 1000 bytes.
        assert!(s.store_primary(cert("big", 1_001)).is_err());
        assert!(s.store_primary(cert("ok", 1_000)).is_ok());
        assert_eq!(s.rejected_inserts(), 1);
    }

    #[test]
    fn diverted_threshold_stricter() {
        let mut s = store(10_000);
        // t_div = 0.05 → largest acceptable diverted replica is 500 bytes.
        assert!(s.store_diverted(cert("big", 501), 7).is_err());
        assert!(s.store_diverted(cert("ok", 500), 7).is_ok());
        assert_eq!(s.diverted_count(), 1);
        let id = s.diverted_here().next().unwrap().0;
        assert_eq!(s.replica(*id).unwrap().diverted_from, Some(7));
    }

    #[test]
    fn threshold_tightens_as_node_fills() {
        let mut s = store(10_000);
        // Fill with many small files; acceptable size shrinks with free().
        let mut stored = 0u64;
        let mut i = 0;
        loop {
            let c = cert(&format!("f{i}"), 300);
            i += 1;
            match s.store_primary(c) {
                Ok(()) => stored += 300,
                Err(_) => break,
            }
        }
        assert_eq!(s.replica_used(), stored);
        // Rejection happened once free() < 3000 (300/free > 0.1).
        assert!(s.free() < 3_000);
        // Smaller files still accepted.
        assert!(s.store_primary(cert("small", 10)).is_ok());
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = store(10_000);
        let c = cert("a", 100);
        s.store_primary(c.clone()).unwrap();
        assert_eq!(s.store_primary(c.clone()), Err(StoreError::Duplicate));
        assert_eq!(s.store_diverted(c, 3), Err(StoreError::Duplicate));
    }

    #[test]
    fn zero_byte_files_always_accepted() {
        // The NLANR trace has 0-byte files; 0/free = 0 <= t.
        let mut s = store(100);
        assert!(s.store_primary(cert("empty", 0)).is_ok());
    }

    #[test]
    fn remove_replica_frees_space() {
        let mut s = store(10_000);
        let c = cert("a", 400);
        let id = c.file_id;
        s.store_primary(c).unwrap();
        let r = s.remove_replica(id).unwrap();
        assert_eq!(r.size(), 400);
        assert_eq!(s.replica_used(), 0);
        assert!(s.remove_replica(id).is_none());
        assert_eq!(s.resolve(id), Resolution::Miss);
    }

    #[test]
    fn pointers_resolve_with_holder() {
        let mut s = store(10_000);
        let c = cert("a", 100);
        let id = c.file_id;
        s.install_pointer(id, 42);
        assert_eq!(s.resolve(id), Resolution::Pointer(42));
        assert_eq!(s.remove_pointer(id), Some(42));
        assert_eq!(s.resolve(id), Resolution::Miss);
        let _ = c;
    }

    #[test]
    fn backup_pointers_tracked_separately() {
        let mut s = store(10_000);
        let c = cert("a", 100);
        s.install_backup_pointer(c.file_id, 9);
        // Backup pointers don't serve lookups (C only guards against A's
        // failure); resolution is a miss.
        assert_eq!(s.resolve(c.file_id), Resolution::Miss);
        assert_eq!(s.remove_backup_pointer(c.file_id), Some(9));
    }

    #[test]
    fn cache_file_respects_fraction() {
        let mut s = NodeStore::<u32>::new(
            1_000,
            StorePolicy {
                cache_fraction: 0.5,
                ..Default::default()
            },
            CachePolicyKind::GreedyDualSize,
        );
        // Budget (free) = 1000; fraction 0.5 → only files < 500 cached.
        assert!(!s.cache_file(&cert("big", 600)));
        assert!(s.cache_file(&cert("small", 400)));
    }

    #[test]
    fn replicas_evict_cached_copies() {
        let mut s = store(1_000);
        assert!(s.cache_file(&cert("cached", 900)));
        assert_eq!(s.cache().used(), 900);
        // A replica claims the space; the cache must shrink.
        s.store_primary(cert("replica", 100)).unwrap();
        assert!(s.cache().used() <= s.cache_budget());
    }

    #[test]
    fn stored_replica_never_double_cached() {
        let mut s = store(10_000);
        let c = cert("a", 100);
        let id = c.file_id;
        assert!(s.cache_file(&c));
        s.store_primary(c.clone()).unwrap();
        // Promotion removed the cached copy.
        assert!(!s.cache().contains(id));
        // And a held replica is not re-admitted to the cache.
        assert!(!s.cache_file(&c));
    }

    #[test]
    fn resolve_prefers_replica_over_cache() {
        let mut s = store(10_000);
        let c = cert("a", 100);
        let id = c.file_id;
        s.store_primary(c).unwrap();
        assert_eq!(s.resolve(id), Resolution::Primary);
    }

    #[test]
    fn utilization_and_cache_budget_track_replicas() {
        let mut s = store(1_000);
        assert_eq!(s.utilization(), 0.0);
        s.store_primary(cert("a", 100)).unwrap();
        assert!((s.utilization() - 0.1).abs() < 1e-9);
        assert_eq!(s.cache_budget(), 900);
    }

    #[test]
    fn no_diversion_policy_behaves_like_baseline() {
        let mut s = NodeStore::<u32>::new(
            1_000,
            StorePolicy::no_diversion(),
            CachePolicyKind::None,
        );
        // t_pri = 1.0: anything that fits is accepted.
        assert!(s.store_primary(cert("a", 1_000)).is_ok());
        // t_div = 0.0: every diverted replica is rejected.
        let mut s2 = NodeStore::<u32>::new(1_000, StorePolicy::no_diversion(), CachePolicyKind::None);
        assert!(s2.store_diverted(cert("b", 1), 1).is_err());
    }
}
