//! Streaming (lazy) workload generation.
//!
//! `Trace::generate` materializes the whole request stream — at the
//! 10M-file scale that is ~250 MB of `TraceOp`s plus ~160 MB of
//! `FileSpec`s held alive for the entire replay. [`StreamTrace`]
//! replaces that with a *seeded cursor*: the per-file tables that must
//! exist up front (sizes, affinity clusters) are generated eagerly but
//! stored packed (4 B + 1 B per file), and the per-request draws are
//! replayed on demand from a snapshot of the generator's RNG state.
//!
//! The contract is **byte identity**: for the same config,
//! [`StreamTrace::ops`] yields exactly the `TraceOp` sequence that
//! [`WebTraceConfig::generate`] / [`FsTraceConfig::generate`] would
//! materialize, because both run the identical draw sequence against
//! the identical RNG. A property test in `tests/` pins this.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{SizeModel, Zipf};
use crate::trace::{FlashCrowdConfig, FsTraceConfig, Trace, TraceOp, WebTraceConfig};

/// Packed per-file size table: 4 bytes per file, with a sorted spill
/// list for the (practically nonexistent) sizes above `u32::MAX` — the
/// calibrated web and filesystem workloads max out at 138 MB and
/// 2.7 GB respectively, both below 4 GiB.
#[derive(Clone, Debug, Default)]
pub struct SizeTable {
    packed: Vec<u32>,
    /// `(index, size)` for oversized files; sorted by construction.
    spill: Vec<(u32, u64)>,
    total: u64,
}

/// Sentinel in `packed` marking an entry that lives in `spill`.
const SPILLED: u32 = u32::MAX;

impl SizeTable {
    /// Creates an empty table with room for `n` files.
    pub fn with_capacity(n: usize) -> Self {
        SizeTable {
            packed: Vec::with_capacity(n),
            spill: Vec::new(),
            total: 0,
        }
    }

    /// Appends the next file's size.
    pub fn push(&mut self, size: u64) {
        let index = self.packed.len() as u32;
        if size >= SPILLED as u64 {
            self.spill.push((index, size));
            self.packed.push(SPILLED);
        } else {
            self.packed.push(size as u32);
        }
        self.total += size;
    }

    /// The size of file `i`.
    pub fn get(&self, i: u32) -> u64 {
        let v = self.packed[i as usize];
        if v == SPILLED {
            let at = self
                .spill
                .binary_search_by_key(&i, |&(idx, _)| idx)
                .expect("spilled size present");
            self.spill[at].1
        } else {
            v as u64
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Sum of all sizes.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The workload-specific part of a streaming trace.
#[derive(Clone, Debug)]
enum StreamKind {
    /// NLANR-like web replay: uniform introduction + Zipf re-reference.
    Web {
        /// Affinity cluster of each file (clusters ≤ 256 by assertion).
        file_cluster: Vec<u8>,
        zipf: Zipf,
        cluster_affinity: f64,
    },
    /// Filesystem snapshot: insert-only, uniform client per file.
    Fs,
    /// Flash crowd: web-style replay whose popularity flips mid-run
    /// (see [`FlashCrowdConfig`]).
    FlashCrowd {
        /// Affinity cluster of each file (clusters ≤ 256 by assertion).
        file_cluster: Vec<u8>,
        zipf_before: Zipf,
        zipf_after: Zipf,
        cluster_affinity: f64,
        /// Request index of the popularity flip.
        flip_index: usize,
        /// First hot file index.
        hot_lo: usize,
        /// Hot set size.
        hot_n: usize,
        /// Post-flip re-reference share of the hot set.
        hot_fraction: f64,
    },
}

/// A lazily replayed workload: per-file tables plus the RNG state from
/// which the request stream re-derives on demand.
///
/// Build one with [`WebTraceConfig::stream`] or [`FsTraceConfig::stream`];
/// iterate with [`StreamTrace::ops`] (restartable — each call replays
/// from the captured RNG snapshot).
#[derive(Clone, Debug)]
pub struct StreamTrace {
    kind: StreamKind,
    sizes: SizeTable,
    clients: u32,
    clusters: u32,
    client_cluster: Vec<u32>,
    requests: usize,
    /// RNG state captured after the per-file phases, right before the
    /// first per-request draw.
    op_rng: StdRng,
}

impl StreamTrace {
    /// Total bytes across all unique files.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.total()
    }

    /// Number of unique files.
    pub fn unique_files(&self) -> usize {
        self.sizes.len()
    }

    /// Number of requests the stream will yield.
    pub fn op_count(&self) -> usize {
        self.requests
    }

    /// Number of distinct clients.
    pub fn clients(&self) -> u32 {
        self.clients
    }

    /// Number of client clusters.
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Cluster of client `c`.
    pub fn client_cluster(&self, c: u32) -> u32 {
        self.client_cluster[c as usize]
    }

    /// The size of file `i`.
    pub fn file_size(&self, i: u32) -> u64 {
        self.sizes.get(i)
    }

    /// A restartable cursor over the request stream.
    pub fn ops(&self) -> OpStream<'_> {
        OpStream {
            trace: self,
            rng: self.op_rng.clone(),
            next: 0,
            introduced: 0,
        }
    }
}

/// Lazy iterator over a [`StreamTrace`]'s request stream.
#[derive(Clone, Debug)]
pub struct OpStream<'a> {
    trace: &'a StreamTrace,
    rng: StdRng,
    next: usize,
    introduced: usize,
}

impl Iterator for OpStream<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        let t = self.trace;
        if self.next >= t.requests {
            return None;
        }
        let r = self.next;
        self.next += 1;
        match &t.kind {
            StreamKind::Web {
                file_cluster,
                zipf,
                cluster_affinity,
            } => {
                let unique = t.sizes.len();
                // Identical draw sequence to WebTraceConfig::generate.
                let target =
                    ((r + 1) as f64 * unique as f64 / t.requests as f64).ceil() as usize;
                let (file_idx, is_insert) = if self.introduced < target && self.introduced < unique
                {
                    self.introduced += 1;
                    (self.introduced - 1, true)
                } else {
                    let mut rank = zipf.sample(&mut self.rng);
                    while rank > self.introduced {
                        rank = zipf.sample(&mut self.rng);
                    }
                    (rank - 1, false)
                };
                let cluster = if self.rng.gen::<f64>() < *cluster_affinity {
                    file_cluster[file_idx] as u32
                } else {
                    self.rng.gen_range(0..t.clusters)
                };
                let per_cluster = t.clients.div_ceil(t.clusters);
                let member = self.rng.gen_range(0..per_cluster);
                let client = (member * t.clusters + cluster).min(t.clients - 1);
                Some(TraceOp {
                    client,
                    file: file_idx as u32,
                    is_insert,
                })
            }
            StreamKind::Fs => Some(TraceOp {
                client: self.rng.gen_range(0..t.clients),
                file: r as u32,
                is_insert: true,
            }),
            StreamKind::FlashCrowd {
                file_cluster,
                zipf_before,
                zipf_after,
                cluster_affinity,
                flip_index,
                hot_lo,
                hot_n,
                hot_fraction,
            } => {
                let unique = t.sizes.len();
                // Identical draw sequence to FlashCrowdConfig::generate.
                let target =
                    ((r + 1) as f64 * unique as f64 / t.requests as f64).ceil() as usize;
                let (file_idx, is_insert) = if self.introduced < target && self.introduced < unique
                {
                    self.introduced += 1;
                    (self.introduced - 1, true)
                } else if r >= *flip_index
                    && *hot_n > 0
                    && self.rng.gen::<f64>() < *hot_fraction
                {
                    (hot_lo + self.rng.gen_range(0..*hot_n), false)
                } else {
                    let zipf = if r >= *flip_index {
                        zipf_after
                    } else {
                        zipf_before
                    };
                    let mut rank = zipf.sample(&mut self.rng);
                    while rank > self.introduced {
                        rank = zipf.sample(&mut self.rng);
                    }
                    (rank - 1, false)
                };
                let cluster = if self.rng.gen::<f64>() < *cluster_affinity {
                    file_cluster[file_idx] as u32
                } else {
                    self.rng.gen_range(0..t.clusters)
                };
                let per_cluster = t.clients.div_ceil(t.clusters);
                let member = self.rng.gen_range(0..per_cluster);
                let client = (member * t.clusters + cluster).min(t.clients - 1);
                Some(TraceOp {
                    client,
                    file: file_idx as u32,
                    is_insert,
                })
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.requests - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OpStream<'_> {}

impl WebTraceConfig {
    /// Builds the streaming equivalent of [`WebTraceConfig::generate`]:
    /// same seed, same draws, same op sequence — without materializing
    /// the request vector.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configs as `generate`, plus when
    /// `clusters > 256` (the packed affinity table stores one byte per
    /// file).
    pub fn stream(&self) -> StreamTrace {
        assert!(self.unique_files >= 1);
        assert!(self.requests >= self.unique_files);
        assert!(self.clients >= 1 && self.clusters >= 1);
        assert!(
            self.clusters <= 256,
            "streaming web trace packs clusters into one byte"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let mut sizes = SizeTable::with_capacity(self.unique_files);
        for _ in 0..self.unique_files {
            let size = if rng.gen::<f64>() < self.zero_fraction {
                0
            } else {
                size_dist.sample(&mut rng).round() as u64
            };
            sizes.push(size);
        }
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        let file_cluster: Vec<u8> = (0..self.unique_files)
            .map(|_| rng.gen_range(0..self.clusters) as u8)
            .collect();
        let zipf = Zipf::new(self.unique_files, self.zipf_alpha);
        StreamTrace {
            kind: StreamKind::Web {
                file_cluster,
                zipf,
                cluster_affinity: self.cluster_affinity,
            },
            sizes,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
            requests: self.requests,
            op_rng: rng,
        }
    }
}

impl FlashCrowdConfig {
    /// Builds the streaming equivalent of [`FlashCrowdConfig::generate`]:
    /// same seed, same draws, same op sequence.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configs as `generate`, plus when
    /// `clusters > 256` (the packed affinity table stores one byte per
    /// file).
    pub fn stream(&self) -> StreamTrace {
        assert!(self.unique_files >= 1);
        assert!(self.requests >= self.unique_files);
        assert!(self.clients >= 1 && self.clusters >= 1);
        assert!((0.0..=1.0).contains(&self.flip_at), "flip_at in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot_fraction in [0, 1]"
        );
        assert!(
            self.clusters <= 256,
            "streaming flash-crowd trace packs clusters into one byte"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let mut sizes = SizeTable::with_capacity(self.unique_files);
        for _ in 0..self.unique_files {
            let size = if rng.gen::<f64>() < self.zero_fraction {
                0
            } else {
                size_dist.sample(&mut rng).round() as u64
            };
            sizes.push(size);
        }
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        let file_cluster: Vec<u8> = (0..self.unique_files)
            .map(|_| rng.gen_range(0..self.clusters) as u8)
            .collect();
        let zipf_before = Zipf::new(self.unique_files, self.zipf_alpha_before);
        let zipf_after = if self.zipf_alpha_after == self.zipf_alpha_before {
            zipf_before.clone()
        } else {
            Zipf::new(self.unique_files, self.zipf_alpha_after)
        };
        let (hot_lo, hot_n) = self.hot_range();
        StreamTrace {
            kind: StreamKind::FlashCrowd {
                file_cluster,
                zipf_before,
                zipf_after,
                cluster_affinity: self.cluster_affinity,
                flip_index: self.flip_index(),
                hot_lo,
                hot_n,
                hot_fraction: self.hot_fraction,
            },
            sizes,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
            requests: self.requests,
            op_rng: rng,
        }
    }
}

impl FsTraceConfig {
    /// Builds the streaming equivalent of [`FsTraceConfig::generate`].
    pub fn stream(&self) -> StreamTrace {
        assert!(self.files >= 1 && self.clients >= 1 && self.clusters >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let mut sizes = SizeTable::with_capacity(self.files);
        for _ in 0..self.files {
            sizes.push(size_dist.sample(&mut rng).round() as u64);
        }
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        StreamTrace {
            kind: StreamKind::Fs,
            sizes,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
            requests: self.files,
            op_rng: rng,
        }
    }
}

/// A replayable workload: what the experiment runner needs to build an
/// overlay (aggregate statistics) and drive a replay (the op stream and
/// per-file metadata), abstracted over materialized ([`Trace`]) and
/// streaming ([`StreamTrace`]) representations.
pub trait Workload {
    /// Total bytes across all unique files.
    fn total_bytes(&self) -> u64;
    /// Number of unique files.
    fn unique_files(&self) -> usize;
    /// Number of requests.
    fn op_count(&self) -> usize;
    /// Number of distinct clients.
    fn client_count(&self) -> u32;
    /// Cluster of client `c`.
    fn cluster_of_client(&self, c: u32) -> u32;
    /// The size of file `i`.
    fn file_size(&self, i: u32) -> u64;
    /// The textual name of file `i` (hashed into the fileId).
    fn file_name(&self, i: u32) -> String {
        format!("f{i}")
    }
    /// The request stream in temporal order.
    fn ops_iter(&self) -> Box<dyn Iterator<Item = TraceOp> + '_>;
}

impl Workload for Trace {
    fn total_bytes(&self) -> u64 {
        Trace::total_bytes(self)
    }
    fn unique_files(&self) -> usize {
        Trace::unique_files(self)
    }
    fn op_count(&self) -> usize {
        self.ops.len()
    }
    fn client_count(&self) -> u32 {
        self.clients
    }
    fn cluster_of_client(&self, c: u32) -> u32 {
        self.client_cluster[c as usize]
    }
    fn file_size(&self, i: u32) -> u64 {
        self.files[i as usize].size
    }
    fn ops_iter(&self) -> Box<dyn Iterator<Item = TraceOp> + '_> {
        Box::new(self.ops.iter().copied())
    }
}

impl Workload for StreamTrace {
    fn total_bytes(&self) -> u64 {
        StreamTrace::total_bytes(self)
    }
    fn unique_files(&self) -> usize {
        StreamTrace::unique_files(self)
    }
    fn op_count(&self) -> usize {
        self.requests
    }
    fn client_count(&self) -> u32 {
        self.clients
    }
    fn cluster_of_client(&self, c: u32) -> u32 {
        self.client_cluster[c as usize]
    }
    fn file_size(&self, i: u32) -> u64 {
        self.sizes.get(i)
    }
    fn ops_iter(&self) -> Box<dyn Iterator<Item = TraceOp> + '_> {
        Box::new(self.ops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_stream_matches_generate() {
        let cfg = WebTraceConfig {
            unique_files: 2_000,
            requests: 4_294,
            ..Default::default()
        };
        let trace = cfg.generate();
        let stream = cfg.stream();
        assert_eq!(stream.unique_files(), trace.unique_files());
        assert_eq!(stream.op_count(), trace.ops.len());
        assert_eq!(stream.total_bytes(), trace.total_bytes());
        for (i, f) in trace.files.iter().enumerate() {
            assert_eq!(stream.file_size(i as u32), f.size, "size of file {i}");
        }
        let streamed: Vec<TraceOp> = stream.ops().collect();
        assert_eq!(streamed, trace.ops);
    }

    #[test]
    fn fs_stream_matches_generate() {
        let cfg = FsTraceConfig {
            files: 3_000,
            ..Default::default()
        };
        let trace = cfg.generate();
        let stream = cfg.stream();
        assert_eq!(stream.total_bytes(), trace.total_bytes());
        let streamed: Vec<TraceOp> = stream.ops().collect();
        assert_eq!(streamed, trace.ops);
    }

    #[test]
    fn flash_crowd_stream_matches_generate() {
        let cfg = FlashCrowdConfig {
            unique_files: 1_500,
            requests: 10_500,
            ..Default::default()
        };
        let trace = cfg.generate();
        let stream = cfg.stream();
        assert_eq!(stream.unique_files(), trace.unique_files());
        assert_eq!(stream.total_bytes(), trace.total_bytes());
        for (i, f) in trace.files.iter().enumerate() {
            assert_eq!(stream.file_size(i as u32), f.size, "size of file {i}");
        }
        let streamed: Vec<TraceOp> = stream.ops().collect();
        assert_eq!(streamed, trace.ops);
    }

    #[test]
    fn flash_crowd_stream_with_distinct_skews_matches_generate() {
        let cfg = FlashCrowdConfig {
            unique_files: 1_000,
            requests: 7_000,
            zipf_alpha_before: 0.7,
            zipf_alpha_after: 1.1,
            flip_at: 0.3,
            hot_set: 2,
            hot_fraction: 0.25,
            ..Default::default()
        };
        let streamed: Vec<TraceOp> = cfg.stream().ops().collect();
        assert_eq!(streamed, cfg.generate().ops);
    }

    #[test]
    fn op_stream_is_restartable() {
        let stream = WebTraceConfig {
            unique_files: 500,
            requests: 1_074,
            ..Default::default()
        }
        .stream();
        let a: Vec<TraceOp> = stream.ops().collect();
        let b: Vec<TraceOp> = stream.ops().collect();
        assert_eq!(a, b, "each cursor replays from the same RNG snapshot");
    }

    #[test]
    fn size_table_spills_oversized_entries() {
        let mut t = SizeTable::with_capacity(3);
        t.push(100);
        t.push(u32::MAX as u64 + 7);
        t.push(0);
        assert_eq!(t.get(0), 100);
        assert_eq!(t.get(1), u32::MAX as u64 + 7);
        assert_eq!(t.get(2), 0);
        assert_eq!(t.total(), 100 + u32::MAX as u64 + 7);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn workload_trait_agrees_across_representations() {
        let cfg = WebTraceConfig {
            unique_files: 800,
            requests: 1_718,
            ..Default::default()
        };
        let trace = cfg.generate();
        let stream = cfg.stream();
        let a: Vec<TraceOp> = Workload::ops_iter(&trace).collect();
        let b: Vec<TraceOp> = Workload::ops_iter(&stream).collect();
        assert_eq!(a, b);
        assert_eq!(
            Workload::file_name(&trace, 17),
            Workload::file_name(&stream, 17)
        );
        for c in 0..cfg.clients {
            assert_eq!(trace.cluster_of_client(c), stream.cluster_of_client(c));
        }
    }
}
