//! Node storage-capacity distributions (Table 1 of the paper).
//!
//! The storage space contributed by each PAST node is drawn from a
//! truncated normal distribution with mean `m`, standard deviation `σ`
//! and explicit lower/upper bounds. The paper's four distributions
//! d1–d4 (all in MBytes, scaled ~1000× below practice so that bounded
//! traces can reach high utilization):
//!
//! | name | m  | σ    | lower | upper |
//! |------|----|------|-------|-------|
//! | d1   | 27 | 10.8 | 2     | 51    |
//! | d2   | 27 | 9.6  | 4     | 49    |
//! | d3   | 27 | 54.0 | 6     | 48    |
//! | d4   | 27 | 54.0 | 1     | 53    |

use rand::Rng;

use crate::dist::TruncatedNormal;

/// One megabyte in bytes.
pub const MB: u64 = 1 << 20;

/// A named truncated-normal capacity distribution.
#[derive(Clone, Debug)]
pub struct CapacityDistribution {
    /// Display name ("d1" … "d4" or custom).
    pub name: String,
    /// Mean, in bytes.
    pub mean: f64,
    /// Standard deviation, in bytes.
    pub sd: f64,
    /// Lower truncation bound, in bytes.
    pub lower: f64,
    /// Upper truncation bound, in bytes.
    pub upper: f64,
}

impl CapacityDistribution {
    /// Table 1, distribution d1: m 27 MB, σ 10.8 MB, bounds [2, 51] MB
    /// (±2.3σ).
    pub fn d1() -> Self {
        Self::mb("d1", 27.0, 10.8, 2.0, 51.0)
    }

    /// Table 1, distribution d2: m 27 MB, σ 9.6 MB, bounds [4, 49] MB.
    pub fn d2() -> Self {
        Self::mb("d2", 27.0, 9.6, 4.0, 49.0)
    }

    /// Table 1, distribution d3: m 27 MB, σ 54 MB, bounds [6, 48] MB
    /// (large σ, arbitrary bounds — more small nodes).
    pub fn d3() -> Self {
        Self::mb("d3", 27.0, 54.0, 6.0, 48.0)
    }

    /// Table 1, distribution d4: m 27 MB, σ 54 MB, bounds [1, 53] MB.
    pub fn d4() -> Self {
        Self::mb("d4", 27.0, 54.0, 1.0, 53.0)
    }

    /// All four Table 1 distributions, in order.
    pub fn table1() -> [CapacityDistribution; 4] {
        [Self::d1(), Self::d2(), Self::d3(), Self::d4()]
    }

    /// Builds a distribution from MByte-denominated parameters.
    pub fn mb(name: &str, mean: f64, sd: f64, lower: f64, upper: f64) -> Self {
        CapacityDistribution {
            name: name.to_string(),
            mean: mean * MB as f64,
            sd: sd * MB as f64,
            lower: lower * MB as f64,
            upper: upper * MB as f64,
        }
    }

    /// Returns a copy with every parameter multiplied by `factor`
    /// (the paper scales d1 by 10 for the filesystem workload; the
    /// reproduction also scales to match its trace sizes).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        CapacityDistribution {
            name: self.name.clone(),
            mean: self.mean * factor,
            sd: self.sd * factor,
            lower: self.lower * factor,
            upper: self.upper * factor,
        }
    }

    /// Samples the capacities of `n` nodes, in bytes.
    pub fn sample_nodes<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        let d = TruncatedNormal::new(self.mean, self.sd, self.lower, self.upper);
        (0..n).map(|_| d.sample(rng).round() as u64).collect()
    }

    /// The scale factor that makes `n` nodes' expected total capacity
    /// equal `target_total` bytes. Used to match scaled-down traces while
    /// preserving the distribution's *shape* (ratio of σ, bounds to mean).
    pub fn scale_for_total(&self, n: usize, target_total: f64) -> f64 {
        // The truncation in Table 1 is nearly symmetric, so the mean of
        // the truncated distribution is close to `mean`.
        target_total / (self.mean * n as f64)
    }
}

/// Admission control on advertised capacities (paper §3.2): PAST assumes
/// node capacities within two orders of magnitude of each other. A
/// joining node much larger than the leaf-set average must split into
/// multiple virtual nodes; one much smaller is rejected.
#[derive(Clone, Copy, Debug)]
pub enum Admission {
    /// Join as a single node.
    Accept,
    /// Too large: rejoin as this many virtual nodes, each with capacity
    /// `advertised / count`.
    Split {
        /// Number of virtual nodes to create.
        count: u32,
    },
    /// Too small relative to the current membership: rejected.
    Reject,
}

/// Applies the §3.2 admission rule given the advertised capacity and the
/// average capacity among the joining node's prospective leaf set.
pub fn admit(advertised: u64, leaf_set_average: f64) -> Admission {
    if leaf_set_average <= 0.0 {
        return Admission::Accept;
    }
    let ratio = advertised as f64 / leaf_set_average;
    if ratio > 100.0 {
        // Split so each virtual node is within an order of magnitude of
        // the average.
        let count = (ratio / 10.0).ceil() as u32;
        Admission::Split { count }
    } else if ratio < 0.01 {
        Admission::Reject
    } else {
        Admission::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn table1_parameters() {
        let d1 = CapacityDistribution::d1();
        assert_eq!(d1.mean, 27.0 * MB as f64);
        assert_eq!(d1.lower, 2.0 * MB as f64);
        let all = CapacityDistribution::table1();
        assert_eq!(all.len(), 4);
        assert_eq!(all[2].name, "d3");
        assert_eq!(all[3].upper, 53.0 * MB as f64);
    }

    #[test]
    fn samples_within_bounds_and_near_expected_total() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in CapacityDistribution::table1() {
            let caps = dist.sample_nodes(2250, &mut rng);
            assert_eq!(caps.len(), 2250);
            for &c in &caps {
                assert!(c as f64 >= dist.lower - 1.0 && c as f64 <= dist.upper + 1.0);
            }
            // Paper's Table 1 totals are ~59.6–61.5 GB for 2250 nodes;
            // allow ±10% (d3/d4 have asymmetric truncation).
            let total: u64 = caps.iter().sum();
            let expect = 2250.0 * dist.mean;
            assert!(
                (total as f64 / expect - 1.0).abs() < 0.12,
                "{}: total {total}",
                dist.name
            );
        }
    }

    #[test]
    fn scaled_preserves_shape() {
        let d = CapacityDistribution::d1().scaled(10.0);
        assert_eq!(d.mean, 270.0 * MB as f64);
        assert_eq!(d.lower, 20.0 * MB as f64);
        assert_eq!(d.upper, 510.0 * MB as f64);
    }

    #[test]
    fn scale_for_total_inverts() {
        let d = CapacityDistribution::d1();
        let f = d.scale_for_total(1000, 1000.0 * 54.0 * MB as f64);
        assert!((f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admission_rules() {
        assert!(matches!(admit(50 * MB, 40.0 * MB as f64), Admission::Accept));
        assert!(matches!(
            admit(10_000 * MB, 40.0 * MB as f64),
            Admission::Split { .. }
        ));
        assert!(matches!(admit(1, 40.0 * MB as f64), Admission::Reject));
        // No information: accept.
        assert!(matches!(admit(1, 0.0), Admission::Accept));
    }

    #[test]
    fn split_count_brings_ratio_down() {
        let avg = 40.0 * MB as f64;
        if let Admission::Split { count } = admit(10_000 * MB, avg) {
            let per_node = 10_000.0 * MB as f64 / count as f64;
            assert!(per_node / avg <= 100.0);
        } else {
            panic!("expected split");
        }
    }
}
