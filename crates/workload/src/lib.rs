//! Workload generation for the PAST reproduction.
//!
//! The paper evaluates PAST against (a) a combined NLANR web-proxy log
//! (4 M entries, 1.86 M unique URLs, 18.7 GB) and (b) a filesystem
//! snapshot from the authors' institutions (2 M files, 166.6 GB). Those
//! traces are not redistributable, so this crate synthesizes workloads
//! calibrated to every statistic the paper publishes: size distributions
//! (lognormal fits of the mean/median/max), Zipf request popularity,
//! 775 clients on 8 geographic sites, and the Table 1 node-capacity
//! distributions d1–d4.
//!
//! All generators are deterministic given their seed.

pub mod capacity;
pub mod dist;
pub mod stream;
pub mod trace;

pub use capacity::{admit, Admission, CapacityDistribution, MB};
pub use dist::{
    standard_normal, truncated_pareto_mean, LogNormal, Pareto, SizeModel, TruncatedNormal, Zipf,
};
pub use stream::{OpStream, SizeTable, StreamTrace, Workload};
pub use trace::{FileSpec, FlashCrowdConfig, FsTraceConfig, Trace, TraceOp, WebTraceConfig};
