//! Synthetic trace generation calibrated to the paper's workloads
//! (§5.1): an NLANR-like web-proxy request stream and a filesystem
//! snapshot, both reproduced from their published statistics (the
//! original traces are not redistributable — see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{SizeModel, Zipf};

/// A file in a workload: logical name index and size in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileSpec {
    /// Dense index; the file's textual name is `format!("f{index}")`.
    pub index: u32,
    /// File size in bytes.
    pub size: u64,
}

impl FileSpec {
    /// The file's textual name (hashed into the fileId).
    pub fn name(&self) -> String {
        format!("f{}", self.index)
    }
}

/// One trace record: a client references a file. The first reference to
/// a file is an insert; subsequent references are lookups (exactly how
/// the paper replays the NLANR log).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Issuing client (0-based).
    pub client: u32,
    /// Referenced file index.
    pub file: u32,
    /// Whether this is the file's first appearance (an insert).
    pub is_insert: bool,
}

/// A complete workload trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// File population (index-aligned).
    pub files: Vec<FileSpec>,
    /// Request stream in temporal order.
    pub ops: Vec<TraceOp>,
    /// Number of distinct clients.
    pub clients: u32,
    /// Number of geographic client clusters (the eight NLANR sites).
    pub clusters: u32,
    /// Cluster of each client (index-aligned, `clients` entries).
    pub client_cluster: Vec<u32>,
}

impl Trace {
    /// Total bytes across all unique files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Number of unique files.
    pub fn unique_files(&self) -> usize {
        self.files.len()
    }

    /// Iterator over only the insert operations (the storage experiments
    /// replay these; repeated references are ignored there).
    pub fn inserts(&self) -> impl Iterator<Item = &TraceOp> {
        self.ops.iter().filter(|op| op.is_insert)
    }

    /// Mean file size in bytes.
    pub fn mean_file_size(&self) -> f64 {
        if self.files.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.files.len() as f64
    }

    /// Median file size in bytes.
    pub fn median_file_size(&self) -> u64 {
        if self.files.is_empty() {
            return 0;
        }
        let mut sizes: Vec<u64> = self.files.iter().map(|f| f.size).collect();
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }
}

/// Generator for the NLANR-like web-proxy workload.
///
/// Published statistics reproduced: 4,000,000 entries referencing
/// 1,863,055 unique URLs (a ~2.15 requests-per-URL ratio), mean size
/// 10,517 B, median 1,312 B, max 138 MB, including zero-byte files;
/// 775 clients spread over 8 geographically distributed sites; Zipf-like
/// request popularity. Scale down via `unique_files` while keeping every
/// ratio intact.
#[derive(Clone, Debug)]
pub struct WebTraceConfig {
    /// Number of unique files (the paper's trace: 1,863,055).
    pub unique_files: usize,
    /// Total requests (paper: 4,000,000 — ~2.147× the unique count).
    pub requests: usize,
    /// Zipf exponent for request popularity (Breslau et al.: ~0.8).
    pub zipf_alpha: f64,
    /// Number of clients (paper: 775).
    pub clients: u32,
    /// Number of client clusters (paper: 8 NLANR sites).
    pub clusters: u32,
    /// Probability that a request comes from the file's affinity cluster
    /// (models the geographic locality the §5.2 experiment relies on).
    pub cluster_affinity: f64,
    /// Median file size in bytes (paper: 1,312).
    pub median_size: f64,
    /// Mean file size in bytes (paper: 10,517).
    pub mean_size: f64,
    /// Maximum file size in bytes (paper: 138 MB).
    pub max_size: f64,
    /// Probability a file's size comes from the Pareto tail. Web size
    /// distributions are lognormal-bodied with a Pareto tail holding a
    /// large share of the bytes; PAST's policies depend on that
    /// concentration (see `past_workload::dist::SizeModel`).
    pub tail_prob: f64,
    /// Pareto tail scale (minimum tail size) in bytes.
    pub tail_x_m: f64,
    /// Pareto tail shape.
    pub tail_alpha: f64,
    /// Fraction of zero-byte files (the NLANR trace's smallest file is 0).
    pub zero_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebTraceConfig {
    fn default() -> Self {
        WebTraceConfig {
            unique_files: 50_000,
            requests: 107_350, // preserves the paper's 2.147 refs/URL
            zipf_alpha: 0.8,
            clients: 775,
            clusters: 8,
            cluster_affinity: 0.5,
            median_size: 1_312.0,
            mean_size: 10_517.0,
            max_size: 138.0e6,
            // Calibrated so that ~0.03% of files exceed 2.9 MB while
            // holding ~37% of all bytes — matching the published tail of
            // the NLANR trace (964 of 1.86 M files above the 2 MB node
            // lower bound, yet enough byte mass that rejecting only them
            // sheds a third of the demand).
            tail_prob: 0.005,
            tail_x_m: 100.0e3,
            tail_alpha: 0.85,
            zero_fraction: 0.001,
            seed: 0x9a57,
        }
    }
}

impl WebTraceConfig {
    /// Keeps the requests/unique ratio while changing the scale.
    pub fn with_unique_files(mut self, n: usize) -> Self {
        let ratio = self.requests as f64 / self.unique_files as f64;
        self.unique_files = n;
        self.requests = (n as f64 * ratio).round() as usize;
        self
    }

    /// Generates the trace.
    ///
    /// Construction: unique files are introduced at a uniform rate through
    /// the stream (matching how new URLs keep appearing throughout a proxy
    /// log); every other request draws a *seen* file with Zipf popularity
    /// by introduction order (early files are the popular ones, as in real
    /// logs). Each file has an affinity cluster; a request is issued from
    /// that cluster with probability `cluster_affinity`, else from a
    /// uniformly random client.
    pub fn generate(&self) -> Trace {
        assert!(self.unique_files >= 1);
        assert!(self.requests >= self.unique_files);
        assert!(self.clients >= 1 && self.clusters >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let files: Vec<FileSpec> = (0..self.unique_files)
            .map(|i| {
                let size = if rng.gen::<f64>() < self.zero_fraction {
                    0
                } else {
                    size_dist.sample(&mut rng).round() as u64
                };
                FileSpec {
                    index: i as u32,
                    size,
                }
            })
            .collect();
        // Client → cluster assignment, round-robin (balanced sites).
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        // File → affinity cluster.
        let file_cluster: Vec<u32> = (0..self.unique_files)
            .map(|_| rng.gen_range(0..self.clusters))
            .collect();
        let zipf = Zipf::new(self.unique_files, self.zipf_alpha);
        let mut ops = Vec::with_capacity(self.requests);
        let mut introduced = 0usize;
        for r in 0..self.requests {
            // Keep the introduction rate uniform: by request r we want
            // about r * unique/requests files introduced.
            let target = ((r + 1) as f64 * self.unique_files as f64 / self.requests as f64)
                .ceil() as usize;
            let (file_idx, is_insert) = if introduced < target && introduced < self.unique_files {
                introduced += 1;
                (introduced - 1, true)
            } else {
                // Re-reference: Zipf rank over *introduced* files (rank 1 =
                // first-introduced = most popular). Re-draw until the rank
                // lands within the introduced prefix; introduction tracks
                // the stream position, so this terminates fast.
                let mut rank = zipf.sample(&mut rng);
                while rank > introduced {
                    rank = zipf.sample(&mut rng);
                }
                (rank - 1, false)
            };
            let cluster = if rng.gen::<f64>() < self.cluster_affinity {
                file_cluster[file_idx]
            } else {
                rng.gen_range(0..self.clusters)
            };
            // Pick a client within the chosen cluster.
            let per_cluster = self.clients.div_ceil(self.clusters);
            let member = rng.gen_range(0..per_cluster);
            let client = (member * self.clusters + cluster).min(self.clients - 1);
            ops.push(TraceOp {
                client,
                file: file_idx as u32,
                is_insert,
            });
        }
        debug_assert_eq!(introduced, self.unique_files);
        Trace {
            files,
            ops,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
        }
    }
}

/// Generator for a flash-crowd workload: a web-like request stream
/// whose popularity distribution *flips* mid-run. Up to the flip point
/// requests follow Zipf(`zipf_alpha_before`) by introduction order (the
/// familiar NLANR shape); from the flip onward, a small set of
/// previously *cold* files — the most recently introduced ones at flip
/// time — suddenly attracts `hot_fraction` of all re-references
/// (uniformly spread across the set), with the remainder drawn from
/// Zipf(`zipf_alpha_after`). With the default 4-file hot set at 50%,
/// each hot file takes ~12.5% of post-flip lookups: well past the >10%
/// single-file threshold that defines a flash crowd here.
///
/// Sizes, clusters, and client assignment follow [`WebTraceConfig`]
/// exactly, so results compare directly against the §5.2 caching setup.
#[derive(Clone, Debug)]
pub struct FlashCrowdConfig {
    /// Number of unique files.
    pub unique_files: usize,
    /// Total requests. Flash-crowd runs are lookup-heavy: the default
    /// keeps 7 requests per unique file.
    pub requests: usize,
    /// Zipf exponent before the flip.
    pub zipf_alpha_before: f64,
    /// Zipf exponent after the flip (for the non-hot remainder).
    pub zipf_alpha_after: f64,
    /// Flip point as a fraction of the request stream, in `[0, 1]`.
    pub flip_at: f64,
    /// Number of cold files that go hot at the flip (the most recently
    /// introduced files at that moment).
    pub hot_set: usize,
    /// Fraction of post-flip re-references that target the hot set.
    pub hot_fraction: f64,
    /// Number of clients.
    pub clients: u32,
    /// Number of client clusters.
    pub clusters: u32,
    /// Probability a request comes from the file's affinity cluster.
    pub cluster_affinity: f64,
    /// Median file size in bytes.
    pub median_size: f64,
    /// Mean file size in bytes.
    pub mean_size: f64,
    /// Maximum file size in bytes.
    pub max_size: f64,
    /// Probability a file's size comes from the Pareto tail.
    pub tail_prob: f64,
    /// Pareto tail scale in bytes.
    pub tail_x_m: f64,
    /// Pareto tail shape.
    pub tail_alpha: f64,
    /// Fraction of zero-byte files.
    pub zero_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig {
            unique_files: 20_000,
            requests: 140_000,
            zipf_alpha_before: 0.8,
            zipf_alpha_after: 0.8,
            flip_at: 0.5,
            hot_set: 4,
            hot_fraction: 0.5,
            clients: 775,
            clusters: 8,
            cluster_affinity: 0.5,
            median_size: 1_312.0,
            mean_size: 10_517.0,
            max_size: 138.0e6,
            tail_prob: 0.005,
            tail_x_m: 100.0e3,
            tail_alpha: 0.85,
            zero_fraction: 0.001,
            seed: 0xfc01,
        }
    }
}

impl FlashCrowdConfig {
    /// Keeps the requests/unique ratio while changing the scale.
    pub fn with_unique_files(mut self, n: usize) -> Self {
        let ratio = self.requests as f64 / self.unique_files as f64;
        self.unique_files = n;
        self.requests = (n as f64 * ratio).round() as usize;
        self
    }

    /// The 0-based request index at which popularity flips.
    pub fn flip_index(&self) -> usize {
        ((self.flip_at * self.requests as f64).floor() as usize).min(self.requests)
    }

    /// The hot file range `[lo, lo + n)`: the `hot_set` most recently
    /// introduced files at the flip point (guaranteed cold before the
    /// flip under Zipf-by-introduction-order popularity).
    pub fn hot_range(&self) -> (usize, usize) {
        let flip = self.flip_index();
        // Introduced count after the first `flip` requests: the uniform
        // introduction schedule has introduced exactly
        // ceil(flip * unique / requests) files by then.
        let introduced =
            ((flip * self.unique_files).div_ceil(self.requests)).min(self.unique_files);
        let n = self.hot_set.min(introduced);
        (introduced - n, n)
    }

    fn check(&self) {
        assert!(self.unique_files >= 1);
        assert!(self.requests >= self.unique_files);
        assert!(self.clients >= 1 && self.clusters >= 1);
        assert!((0.0..=1.0).contains(&self.flip_at), "flip_at in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot_fraction in [0, 1]"
        );
    }

    /// Generates the trace. Identical construction to
    /// [`WebTraceConfig::generate`] up to the per-request popularity
    /// draw, which switches distributions at [`FlashCrowdConfig::flip_index`].
    pub fn generate(&self) -> Trace {
        self.check();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let files: Vec<FileSpec> = (0..self.unique_files)
            .map(|i| {
                let size = if rng.gen::<f64>() < self.zero_fraction {
                    0
                } else {
                    size_dist.sample(&mut rng).round() as u64
                };
                FileSpec {
                    index: i as u32,
                    size,
                }
            })
            .collect();
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        let file_cluster: Vec<u32> = (0..self.unique_files)
            .map(|_| rng.gen_range(0..self.clusters))
            .collect();
        let zipf_before = Zipf::new(self.unique_files, self.zipf_alpha_before);
        let zipf_after = if self.zipf_alpha_after == self.zipf_alpha_before {
            zipf_before.clone()
        } else {
            Zipf::new(self.unique_files, self.zipf_alpha_after)
        };
        let flip = self.flip_index();
        let (hot_lo, hot_n) = self.hot_range();
        let mut ops = Vec::with_capacity(self.requests);
        let mut introduced = 0usize;
        for r in 0..self.requests {
            let target = ((r + 1) as f64 * self.unique_files as f64 / self.requests as f64)
                .ceil() as usize;
            let (file_idx, is_insert) = if introduced < target && introduced < self.unique_files {
                introduced += 1;
                (introduced - 1, true)
            } else if r >= flip && hot_n > 0 && rng.gen::<f64>() < self.hot_fraction {
                // The flash crowd: a uniformly chosen member of the hot
                // set (already introduced — the set sits right below the
                // introduction frontier at flip time).
                (hot_lo + rng.gen_range(0..hot_n), false)
            } else {
                let zipf = if r >= flip { &zipf_after } else { &zipf_before };
                let mut rank = zipf.sample(&mut rng);
                while rank > introduced {
                    rank = zipf.sample(&mut rng);
                }
                (rank - 1, false)
            };
            let cluster = if rng.gen::<f64>() < self.cluster_affinity {
                file_cluster[file_idx]
            } else {
                rng.gen_range(0..self.clusters)
            };
            let per_cluster = self.clients.div_ceil(self.clusters);
            let member = rng.gen_range(0..per_cluster);
            let client = (member * self.clusters + cluster).min(self.clients - 1);
            ops.push(TraceOp {
                client,
                file: file_idx as u32,
                is_insert,
            });
        }
        debug_assert_eq!(introduced, self.unique_files);
        Trace {
            files,
            ops,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
        }
    }
}

/// Generator for the filesystem workload: insert-only, heavier-tailed
/// sizes (paper: 2,027,908 files, 166.6 GB, mean 88,233 B, median
/// 4,578 B, max 2.7 GB).
#[derive(Clone, Debug)]
pub struct FsTraceConfig {
    /// Number of files.
    pub files: usize,
    /// Median file size in bytes (paper: 4,578).
    pub median_size: f64,
    /// Mean file size in bytes (paper: 88,233).
    pub mean_size: f64,
    /// Maximum file size in bytes (paper: 2.7 GB).
    pub max_size: f64,
    /// Probability a file's size comes from the Pareto tail.
    pub tail_prob: f64,
    /// Pareto tail scale in bytes.
    pub tail_x_m: f64,
    /// Pareto tail shape.
    pub tail_alpha: f64,
    /// Number of inserting clients.
    pub clients: u32,
    /// Number of client clusters.
    pub clusters: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FsTraceConfig {
    fn default() -> Self {
        FsTraceConfig {
            files: 50_000,
            median_size: 4_578.0,
            mean_size: 88_233.0,
            max_size: 2.7e9,
            tail_prob: 0.005,
            tail_x_m: 1.0e6,
            tail_alpha: 0.9,
            clients: 775,
            clusters: 8,
            seed: 0xf5,
        }
    }
}

impl FsTraceConfig {
    /// Generates the insert-only trace.
    pub fn generate(&self) -> Trace {
        assert!(self.files >= 1 && self.clients >= 1 && self.clusters >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let size_dist = SizeModel::calibrated(
            self.median_size,
            self.mean_size,
            self.max_size,
            self.tail_prob,
            self.tail_x_m,
            self.tail_alpha,
        );
        let files: Vec<FileSpec> = (0..self.files)
            .map(|i| FileSpec {
                index: i as u32,
                size: size_dist.sample(&mut rng).round() as u64,
            })
            .collect();
        let client_cluster: Vec<u32> = (0..self.clients).map(|c| c % self.clusters).collect();
        let ops = files
            .iter()
            .map(|f| TraceOp {
                client: rng.gen_range(0..self.clients),
                file: f.index,
                is_insert: true,
            })
            .collect();
        Trace {
            files,
            ops,
            clients: self.clients,
            clusters: self.clusters,
            client_cluster,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_web() -> Trace {
        WebTraceConfig {
            unique_files: 2_000,
            requests: 4_294,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn web_trace_introduces_every_file_exactly_once() {
        let t = small_web();
        let mut inserted = HashSet::new();
        let mut seen = HashSet::new();
        for op in &t.ops {
            if op.is_insert {
                assert!(inserted.insert(op.file), "duplicate insert of {}", op.file);
            } else {
                assert!(seen.contains(&op.file), "lookup before insert");
            }
            seen.insert(op.file);
        }
        assert_eq!(inserted.len(), t.unique_files());
    }

    #[test]
    fn web_trace_sizes_match_published_stats() {
        let t = WebTraceConfig {
            unique_files: 60_000,
            requests: 128_820,
            ..Default::default()
        }
        .generate();
        let median = t.median_file_size() as f64;
        assert!(
            (median / 1312.0 - 1.0).abs() < 0.15,
            "median {median} (target 1312)"
        );
        let mean = t.mean_file_size();
        assert!(
            (mean / 10517.0 - 1.0).abs() < 0.5,
            "mean {mean} (target 10517)"
        );
        assert!(t.files.iter().all(|f| f.size as f64 <= 138.0e6));
    }

    #[test]
    fn web_trace_popularity_is_skewed() {
        let t = small_web();
        // Early-introduced files must collect far more lookups than late
        // ones (Zipf by introduction order).
        let lookups = |range: std::ops::Range<u32>| {
            t.ops
                .iter()
                .filter(|o| !o.is_insert && range.contains(&o.file))
                .count()
        };
        let head = lookups(0..100);
        let tail = lookups(1900..2000);
        assert!(
            head > tail * 5,
            "expected Zipf skew, head {head} vs tail {tail}"
        );
    }

    #[test]
    fn web_trace_client_fields_valid() {
        let t = small_web();
        assert_eq!(t.client_cluster.len(), t.clients as usize);
        for op in &t.ops {
            assert!(op.client < t.clients);
        }
        for &c in &t.client_cluster {
            assert!(c < t.clusters);
        }
    }

    #[test]
    fn web_trace_deterministic() {
        let a = small_web();
        let b = small_web();
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn with_unique_files_preserves_ratio() {
        let cfg = WebTraceConfig::default().with_unique_files(10_000);
        let ratio = cfg.requests as f64 / cfg.unique_files as f64;
        assert!((ratio - 2.147).abs() < 0.01);
    }

    #[test]
    fn flash_crowd_introduces_every_file_exactly_once() {
        let t = FlashCrowdConfig {
            unique_files: 1_500,
            requests: 10_500,
            ..Default::default()
        }
        .generate();
        let mut inserted = HashSet::new();
        let mut seen = HashSet::new();
        for op in &t.ops {
            if op.is_insert {
                assert!(inserted.insert(op.file), "duplicate insert of {}", op.file);
            } else {
                assert!(seen.contains(&op.file), "lookup before insert");
            }
            seen.insert(op.file);
        }
        assert_eq!(inserted.len(), t.unique_files());
    }

    #[test]
    fn flash_crowd_flips_popularity() {
        let cfg = FlashCrowdConfig {
            unique_files: 2_000,
            requests: 14_000,
            ..Default::default()
        };
        let t = cfg.generate();
        let flip = cfg.flip_index();
        let (hot_lo, hot_n) = cfg.hot_range();
        assert_eq!(hot_n, cfg.hot_set);
        let hot = |f: u32| (f as usize) >= hot_lo && (f as usize) < hot_lo + hot_n;
        let pre: Vec<&TraceOp> = t.ops[..flip].iter().filter(|o| !o.is_insert).collect();
        let post: Vec<&TraceOp> = t.ops[flip..].iter().filter(|o| !o.is_insert).collect();
        let pre_hot = pre.iter().filter(|o| hot(o.file)).count();
        let post_hot = post.iter().filter(|o| hot(o.file)).count();
        // Cold before the flip (the hot files sit right below the
        // introduction frontier, deep in the Zipf tail)...
        assert!(
            (pre_hot as f64) < 0.01 * pre.len() as f64,
            "hot set already popular before the flip: {pre_hot}/{}",
            pre.len()
        );
        // ...and the crowd afterwards: the set takes ~hot_fraction of
        // lookups, and a *single* cold file exceeds the 10% flash-crowd
        // threshold.
        assert!(
            post_hot as f64 > 0.8 * cfg.hot_fraction * post.len() as f64,
            "hot set too cold after the flip: {post_hot}/{}",
            post.len()
        );
        let mut per_file = vec![0usize; cfg.unique_files];
        for o in &post {
            per_file[o.file as usize] += 1;
        }
        let top_hot = (hot_lo..hot_lo + hot_n).map(|i| per_file[i]).max().unwrap();
        assert!(
            top_hot as f64 > 0.10 * post.len() as f64,
            "top hot file only {top_hot}/{} post-flip lookups",
            post.len()
        );
    }

    #[test]
    fn flash_crowd_deterministic() {
        let cfg = FlashCrowdConfig {
            unique_files: 800,
            requests: 5_600,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn fs_trace_insert_only_and_heavier() {
        let t = FsTraceConfig {
            files: 30_000,
            ..Default::default()
        }
        .generate();
        assert!(t.ops.iter().all(|o| o.is_insert));
        assert_eq!(t.ops.len(), 30_000);
        let median = t.median_file_size() as f64;
        assert!(
            (median / 4578.0 - 1.0).abs() < 0.15,
            "median {median} (target 4578)"
        );
        // Heavier tail than the web workload.
        let web = small_web();
        assert!(t.mean_file_size() > web.mean_file_size());
    }

    #[test]
    fn trace_totals_consistent() {
        let t = small_web();
        let sum: u64 = t.files.iter().map(|f| f.size).sum();
        assert_eq!(t.total_bytes(), sum);
        assert_eq!(t.inserts().count(), t.unique_files());
    }

    #[test]
    fn file_names_unique() {
        let t = small_web();
        let names: HashSet<String> = t.files.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), t.files.len());
    }
}
