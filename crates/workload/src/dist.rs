//! Random-variate samplers implemented from scratch: standard normal
//! (Box–Muller), truncated normal, lognormal and Zipf.
//!
//! Only `rand`'s uniform primitives are used; the shaped distributions
//! the experiments need are derived here so the reproduction does not
//! depend on `rand_distr`.

use rand::Rng;

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal distribution truncated to `[lower, upper]` by rejection.
#[derive(Clone, Copy, Debug)]
pub struct TruncatedNormal {
    /// Mean of the underlying normal.
    pub mean: f64,
    /// Standard deviation of the underlying normal.
    pub sd: f64,
    /// Lower truncation bound (inclusive).
    pub lower: f64,
    /// Upper truncation bound (inclusive).
    pub upper: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted, `sd` is not positive, or the
    /// acceptance region is more than 8σ away from the mean (rejection
    /// would practically never terminate).
    pub fn new(mean: f64, sd: f64, lower: f64, upper: f64) -> Self {
        assert!(lower < upper, "bounds inverted");
        assert!(sd > 0.0, "sd must be positive");
        assert!(
            lower <= mean + 8.0 * sd && upper >= mean - 8.0 * sd,
            "acceptance region unreachable"
        );
        TruncatedNormal {
            mean,
            sd,
            lower,
            upper,
        }
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let v = self.mean + self.sd * standard_normal(rng);
            if v >= self.lower && v <= self.upper {
                return v;
            }
        }
    }
}

/// A lognormal distribution (optionally truncated above), parameterized
/// by the μ and σ of the underlying normal.
///
/// The PAST workloads are calibrated through the lognormal identities
/// `median = e^μ` and `mean = e^{μ + σ²/2}`: given the published median
/// and mean, `μ = ln(median)` and `σ = sqrt(2 ln(mean/median))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Location parameter of the underlying normal.
    pub mu: f64,
    /// Scale parameter of the underlying normal.
    pub sigma: f64,
    /// Upper truncation bound (re-draw above this), if any.
    pub max: Option<f64>,
}

impl LogNormal {
    /// Creates a lognormal from μ and σ.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LogNormal {
            mu,
            sigma,
            max: None,
        }
    }

    /// Calibrates μ and σ from a target median and mean (mean > median).
    pub fn from_median_mean(median: f64, mean: f64) -> Self {
        assert!(median > 0.0 && mean > median, "need mean > median > 0");
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal::new(mu, sigma)
    }

    /// Adds an upper truncation bound.
    pub fn with_max(mut self, max: f64) -> Self {
        assert!(max > 0.0);
        self.max = Some(max);
        self
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let v = (self.mu + self.sigma * standard_normal(rng)).exp();
            match self.max {
                Some(m) if v > m => continue,
                _ => return v,
            }
        }
    }
}

/// A Pareto distribution with scale `x_m` and shape `alpha`, optionally
/// truncated above, sampled by inverse CDF.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    /// Scale (minimum value).
    pub x_m: f64,
    /// Shape (smaller = heavier tail).
    pub alpha: f64,
    /// Upper truncation bound (re-draw above), if any.
    pub max: Option<f64>,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_m > 0` and `alpha > 0`.
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m > 0.0 && alpha > 0.0, "invalid Pareto parameters");
        Pareto {
            x_m,
            alpha,
            max: None,
        }
    }

    /// Adds an upper truncation bound.
    pub fn with_max(mut self, max: f64) -> Self {
        assert!(max > self.x_m, "truncation below the scale");
        self.max = Some(max);
        self
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
            let v = self.x_m * u.powf(-1.0 / self.alpha);
            match self.max {
                Some(m) if v > m => continue,
                _ => return v,
            }
        }
    }
}

/// A hybrid file-size model: a lognormal body plus a Pareto tail drawn
/// with probability `tail_prob`.
///
/// Web object and filesystem size distributions are famously
/// lognormal-bodied with Pareto tails; the tail carries a large share of
/// the bytes in a small share of the files. This matters for PAST: its
/// `t_pri`/`t_div` policies shed almost all of the overshoot by
/// rejecting a tiny number of huge files, which is only possible when
/// the byte mass is concentrated in the tail the way real traces
/// concentrate it.
#[derive(Clone, Copy, Debug)]
pub struct SizeModel {
    /// The lognormal body.
    pub body: LogNormal,
    /// Probability a draw comes from the tail.
    pub tail_prob: f64,
    /// The Pareto tail.
    pub tail: Pareto,
}

impl SizeModel {
    /// Creates a hybrid model.
    ///
    /// # Panics
    ///
    /// Panics unless `tail_prob` is a probability.
    pub fn new(body: LogNormal, tail_prob: f64, tail: Pareto) -> Self {
        assert!((0.0..=1.0).contains(&tail_prob), "bad tail probability");
        SizeModel {
            body,
            tail_prob,
            tail,
        }
    }

    /// Samples one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.tail_prob {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        }
    }

    /// Calibrates a hybrid model to published (median, mean, max)
    /// statistics with the given tail parameters: the Pareto tail's mean
    /// is computed analytically and the lognormal body absorbs the rest
    /// of the target mean while pinning the median.
    ///
    /// # Panics
    ///
    /// Panics if the tail already overshoots the target mean.
    pub fn calibrated(
        median: f64,
        mean: f64,
        max: f64,
        tail_prob: f64,
        tail_x_m: f64,
        tail_alpha: f64,
    ) -> Self {
        let tail = Pareto::new(tail_x_m, tail_alpha).with_max(max);
        let tail_mean = truncated_pareto_mean(tail_x_m, tail_alpha, max);
        let body_mean = (mean - tail_prob * tail_mean) / (1.0 - tail_prob);
        assert!(
            body_mean > median,
            "tail too heavy: body mean {body_mean} below median {median}"
        );
        let body = LogNormal::from_median_mean(median, body_mean).with_max(max);
        SizeModel::new(body, tail_prob, tail)
    }
}

/// The mean of a Pareto(x_m, alpha) truncated at `max`.
pub fn truncated_pareto_mean(x_m: f64, alpha: f64, max: f64) -> f64 {
    assert!(x_m > 0.0 && alpha > 0.0 && max > x_m);
    let r = x_m / max;
    if (alpha - 1.0).abs() < 1e-9 {
        // alpha = 1: mean = x_m * ln(max/x_m) / (1 - r).
        x_m * (max / x_m).ln() / (1.0 - r)
    } else {
        (alpha / (alpha - 1.0)) * x_m * (1.0 - r.powf(alpha - 1.0)) / (1.0 - r.powf(alpha))
    }
}

/// A Zipf distribution over ranks `1..=n` with exponent `alpha`:
/// P(rank = r) ∝ r^{-alpha}.
///
/// Web request popularity is Zipf-like with α around 0.8 (Breslau et al.,
/// cited by the paper to explain its caching results). Sampling uses a
/// precomputed CDF with binary search, O(log n) per draw.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad alpha");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The probability of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!(r >= 1 && r <= self.cdf.len());
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = rng();
        let d = TruncatedNormal::new(27.0, 54.0, 6.0, 48.0);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((6.0..=48.0).contains(&v));
        }
    }

    #[test]
    fn truncated_normal_mean_near_center_for_symmetric_cut() {
        let mut rng = rng();
        let d = TruncatedNormal::new(27.0, 10.8, 2.0, 52.0);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 27.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn lognormal_calibration_matches_web_trace_stats() {
        // Paper: NLANR web trace mean 10,517 B, median 1,312 B.
        let mut rng = rng();
        let d = LogNormal::from_median_mean(1312.0, 10517.0).with_max(138.0e6);
        let n = 200_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (median / 1312.0 - 1.0).abs() < 0.1,
            "median {median} vs target 1312"
        );
        // The heavy tail makes the sample mean noisy; accept a wide band.
        assert!(
            (mean / 10517.0 - 1.0).abs() < 0.5,
            "mean {mean} vs target 10517"
        );
    }

    #[test]
    fn lognormal_truncation_enforced() {
        let mut rng = rng();
        let d = LogNormal::from_median_mean(4578.0, 88233.0).with_max(1_000_000.0);
        for _ in 0..20_000 {
            assert!(d.sample(&mut rng) <= 1_000_000.0);
        }
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_mean_below_median() {
        LogNormal::from_median_mean(100.0, 50.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.8);
        let total: f64 = (1..=1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank1_most_popular() {
        let z = Zipf::new(100, 0.8);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(50));
        // Ratio check: p(1)/p(2) = 2^0.8.
        let ratio = z.pmf(1) / z.pmf(2);
        assert!((ratio - 2f64.powf(0.8)).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_match_pmf() {
        let mut rng = rng();
        let z = Zipf::new(50, 0.8);
        let n = 100_000;
        let mut counts = vec![0u32; 51];
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!((1..=50).contains(&r));
            counts[r] += 1;
        }
        let observed_p1 = counts[1] as f64 / n as f64;
        assert!(
            (observed_p1 - z.pmf(1)).abs() < 0.01,
            "p1 observed {observed_p1} expected {}",
            z.pmf(1)
        );
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }
}
