//! Criterion micro-benchmarks for the building blocks: SHA-1 hashing,
//! Schnorr signatures, identifier arithmetic, routing-table operations,
//! leaf-set replica selection, GD-S cache operations and Reed–Solomon
//! coding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use past_crypto::{KeyPair, Scheme, Sha1};
use past_erasure::ReedSolomon;
use past_id::NodeId;
use past_net::Addr;
use past_pastry::{LeafSet, NodeEntry, PastryConfig, PastryState, RoutingTable};
use past_store::{Cache, CachePolicyKind};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha1::digest(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let schnorr = KeyPair::generate(Scheme::Schnorr, &mut rng);
    let keyed = KeyPair::generate(Scheme::Keyed, &mut rng);
    let msg = b"a PAST file certificate body for benchmarking";
    c.bench_function("sign/schnorr", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| schnorr.sign(std::hint::black_box(msg), &mut rng))
    });
    let sig = {
        let mut rng = StdRng::seed_from_u64(3);
        schnorr.sign(msg, &mut rng)
    };
    c.bench_function("verify/schnorr", |b| {
        b.iter(|| schnorr.public().verify(std::hint::black_box(msg), &sig))
    });
    c.bench_function("sign/keyed", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| keyed.sign(std::hint::black_box(msg), &mut rng))
    });
}

fn bench_id_math(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let ids: Vec<(NodeId, NodeId)> = (0..1024)
        .map(|_| (NodeId::random(&mut rng), NodeId::random(&mut rng)))
        .collect();
    let mut i = 0;
    c.bench_function("id/ring_distance", |b| {
        b.iter(|| {
            i = (i + 1) % ids.len();
            let (a, k) = ids[i];
            std::hint::black_box(a.ring_distance(k))
        })
    });
    c.bench_function("id/shared_prefix_digits", |b| {
        b.iter(|| {
            i = (i + 1) % ids.len();
            let (a, k) = ids[i];
            std::hint::black_box(a.shared_prefix_digits(k, 4))
        })
    });
}

fn routing_state(n: usize, seed: u64) -> (PastryState, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PastryConfig::default();
    let own = NodeEntry::new(NodeId::random(&mut rng), Addr(0));
    let mut state = PastryState::new(own, &cfg);
    for a in 1..n {
        let entry = NodeEntry::new(NodeId::random(&mut rng), Addr(a as u32));
        state.on_node_seen(entry, rng.gen::<f64>());
    }
    let keys = (0..1024).map(|_| NodeId::random(&mut rng)).collect();
    (state, keys)
}

fn bench_routing(c: &mut Criterion) {
    let (state, keys) = routing_state(2250, 6);
    let mut i = 0;
    c.bench_function("pastry/next_hop_2250", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(state.next_hop(keys[i], false, 1.0, None))
        })
    });
    c.bench_function("pastry/replica_candidates_k5", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(state.replica_candidates(keys[i], 5))
        })
    });
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("pastry/routing_table_consider", |b| {
        let mut rt = RoutingTable::new(NodeId::random(&mut rng), 4);
        let mut a = 0u32;
        b.iter(|| {
            a = a.wrapping_add(1);
            let e = NodeEntry::new(NodeId::random(&mut rng), Addr(a));
            rt.consider(e, (a % 100) as f64)
        })
    });
    c.bench_function("pastry/leaf_set_insert", |b| {
        let own = NodeId::random(&mut rng);
        b.iter_batched(
            || LeafSet::new(own, 16),
            |mut ls| {
                for a in 0..64u32 {
                    ls.insert(NodeEntry::new(
                        NodeId::from_u128((a as u128) << 90),
                        Addr(a),
                    ));
                }
                ls
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    let fid = |v: u32| {
        let mut bytes = [0u8; 20];
        bytes[..4].copy_from_slice(&v.to_be_bytes());
        past_id::FileId::from_bytes(bytes)
    };
    for kind in [CachePolicyKind::GreedyDualSize, CachePolicyKind::Lru] {
        let label = format!("cache/{kind:?}_insert_evict");
        c.bench_function(&label, |b| {
            b.iter_batched(
                || Cache::new(kind),
                |mut cache| {
                    // Working set twice the budget: constant evictions.
                    for v in 0..512u32 {
                        cache.insert(fid(v), 100, 25_600);
                    }
                    cache
                },
                BatchSize::SmallInput,
            )
        });
        let label = format!("cache/{kind:?}_probe_hit");
        c.bench_function(&label, |b| {
            let mut cache = Cache::new(kind);
            for v in 0..128u32 {
                cache.insert(fid(v), 100, u64::MAX);
            }
            let mut v = 0;
            b.iter(|| {
                v = (v + 1) % 128;
                cache.probe(fid(v))
            })
        });
    }
}

fn bench_reed_solomon(c: &mut Criterion) {
    let rs = ReedSolomon::new(8, 4);
    let data = vec![0x5au8; 64 * 1024];
    let mut g = c.benchmark_group("reed_solomon");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("encode_8+4_64KiB", |b| {
        b.iter(|| rs.encode_bytes(std::hint::black_box(&data)))
    });
    let shards = rs.encode_bytes(&data);
    g.bench_function("reconstruct_4_losses_64KiB", |b| {
        b.iter_batched(
            || {
                let mut opt: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                opt[0] = None;
                opt[3] = None;
                opt[8] = None;
                opt[11] = None;
                opt
            },
            |mut opt| rs.reconstruct(&mut opt).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_signatures,
    bench_id_math,
    bench_routing,
    bench_cache,
    bench_reed_solomon
);
criterion_main!(benches);
