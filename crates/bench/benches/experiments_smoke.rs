//! Criterion smoke benchmarks of the end-to-end experiment pipeline:
//! overlay construction and trace replay at a reduced scale. These keep
//! `cargo bench --workspace` fast while exercising the same code paths
//! as the full table/figure binaries (run those via
//! `cargo run --release -p past-bench --bin <table|fig>`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use past_sim::{ExperimentConfig, Runner};
use past_workload::WebTraceConfig;

fn bench_overlay_build(c: &mut Criterion) {
    let trace = WebTraceConfig::default().with_unique_files(500).generate();
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("overlay_build_100_nodes", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig {
                nodes: 100,
                leaf_set_size: 16,
                ..Default::default()
            };
            Runner::build(cfg, &trace)
        })
    });
    g.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    let trace = WebTraceConfig::default()
        .with_unique_files(2_000)
        .generate();
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("replay_2000_inserts_60_nodes", |b| {
        b.iter_batched(
            || {
                let cfg = ExperimentConfig {
                    nodes: 60,
                    leaf_set_size: 16,
                    ..Default::default()
                };
                Runner::build(cfg, &trace)
            },
            |runner| runner.run(&trace),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("web_trace_50k_files", |b| {
        b.iter(|| {
            WebTraceConfig::default()
                .with_unique_files(50_000)
                .generate()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_overlay_build,
    bench_trace_replay,
    bench_trace_generation
);
criterion_main!(benches);
