//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every binary accepts two environment variables so the full paper-scale
//! runs and quick smoke runs share one code path:
//!
//! - `PAST_NODES` — overlay size (default 2250, the paper's setting).
//! - `PAST_FILES` — unique files in the synthetic NLANR-like trace
//!   (default 1,863,055, the paper's unique-URL count). When scaling
//!   down, keep `PAST_FILES ≈ 830 × PAST_NODES`: the storage policies
//!   respond to the files-per-node ratio (DESIGN.md §2.5). The recorded
//!   results in EXPERIMENTS.md used `PAST_NODES=450 PAST_FILES=373000`.
//!
//! Results are printed as aligned tables and also written as CSV under
//! `results/`.

use std::fmt::Write as _;
use std::io::Write as _;

use past_sim::{ExperimentConfig, ExperimentResult};
use past_workload::{FsTraceConfig, StreamTrace, Trace, WebTraceConfig};

/// Scale parameters shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Unique files in the trace.
    pub files: usize,
}

impl Scale {
    /// Reads the scale from the environment (paper scale by default).
    pub fn from_env() -> Scale {
        let nodes = std::env::var("PAST_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2250);
        let files = std::env::var("PAST_FILES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_863_055);
        Scale { nodes, files }
    }
}

/// The standard web-proxy trace for a scale (NLANR statistics).
pub fn web_trace(scale: Scale) -> Trace {
    WebTraceConfig::default()
        .with_unique_files(scale.files)
        .generate()
}

/// The standard web-proxy trace as a lazy [`StreamTrace`]: the same op
/// sequence as [`web_trace`] (byte-identical; see
/// `past_workload::stream`) without materializing the request vector —
/// the form the 10M-file XL2 replay uses.
pub fn web_stream(scale: Scale) -> StreamTrace {
    WebTraceConfig::default()
        .with_unique_files(scale.files)
        .stream()
}

/// The filesystem trace for a scale.
pub fn fs_trace(scale: Scale) -> Trace {
    FsTraceConfig {
        files: scale.files,
        ..Default::default()
    }
    .generate()
}

/// The default experiment configuration at a scale.
pub fn base_config(scale: Scale) -> ExperimentConfig {
    ExperimentConfig {
        nodes: scale.nodes,
        ..Default::default()
    }
}

/// Formats one experiment's Table 2/3/4-style row.
pub fn storage_row(label: &str, r: &ExperimentResult) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.2}%", r.success_ratio() * 100.0),
        format!("{:.2}%", (1.0 - r.success_ratio()) * 100.0),
        format!("{:.2}%", r.file_diversion_ratio() * 100.0),
        format!("{:.2}%", r.replica_diversion_ratio() * 100.0),
        format!("{:.1}%", r.final_utilization() * 100.0),
    ]
}

/// The header matching [`storage_row`].
pub fn storage_header() -> Vec<String> {
    [
        "Config",
        "Success",
        "Fail",
        "File div.",
        "Replica div.",
        "Util.",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
        }
        println!("{line}");
    }
}

/// The directory bench outputs land in: `$PAST_OUT_DIR` when set,
/// otherwise the tracked defaults (`results/` for CSVs, the working
/// directory for `BENCH_*.json`). Scratch runs at non-default scales
/// should set `PAST_OUT_DIR` so they don't dirty the tree.
pub fn out_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("PAST_OUT_DIR").map(std::path::PathBuf::from)
}

/// Resolves the path for a root-level artifact such as
/// `BENCH_churn.json`, honouring `PAST_OUT_DIR`.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    match out_dir() {
        Some(dir) => {
            let _ = std::fs::create_dir_all(&dir);
            dir.join(name)
        }
        None => std::path::PathBuf::from(name),
    }
}

/// Writes rows as CSV under `results/<name>.csv` (or
/// `$PAST_OUT_DIR/<name>.csv`).
pub fn write_csv(name: &str, header: &[String], rows: &[Vec<String>]) {
    let dir = out_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut out = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    println!("(wrote {})", path.display());
}

/// Progress logger for long runs.
pub fn progress_logger(label: &'static str) -> impl FnMut(usize, usize) + 'static {
    move |done, total| {
        if done % 20_000 == 0 && done > 0 {
            eprintln!("[{label}] {done}/{total} trace ops");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_row_matches_header_shape() {
        let r = ExperimentResult::default();
        let row = storage_row("defaults", &r);
        assert_eq!(row.len(), storage_header().len());
        assert_eq!(row[0], "defaults");
        // An empty result renders as all-zero percentages, not NaN.
        assert_eq!(row[1], "0.00%");
        assert_eq!(row[5], "0.0%");
    }

    #[test]
    fn write_csv_emits_header_and_rows() {
        let header: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        write_csv("bench_lib_selftest", &header, &rows);
        let path = std::path::Path::new("results/bench_lib_selftest.csv");
        let body = std::fs::read_to_string(path).expect("csv written");
        assert_eq!(body, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }
}
