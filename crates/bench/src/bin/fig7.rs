//! Figure 7: insertion failures by file size versus utilization for the
//! *filesystem* workload (paper: same 2250 nodes, d1 capacities ×10).
//!
//! Paper shape: same qualitative behaviour as Figure 6 with a much
//! heavier-tailed size distribution; failure ratio below 0.01 until very
//! high utilization.

use past_bench::{fs_trace, print_table, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = fs_trace(scale);
    let cfg = ExperimentConfig {
        nodes: scale.nodes,
        // The paper scales d1 by 10 for this workload; the runner's
        // trace-relative scaling already accounts for the larger files,
        // so the distribution shape carries over unchanged.
        ..Default::default()
    };
    let result = Runner::build(cfg, &trace)
        .with_progress(past_bench::progress_logger("fig7"))
        .run(&trace);
    eprintln!("fig7 run done in {:.1}s", result.wall_seconds);

    let scatter = result.failure_scatter();
    let header: Vec<String> = ["utilization", "file size (bytes)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = scatter
        .iter()
        .map(|(u, s)| vec![format!("{u:.4}"), format!("{s}")])
        .collect();
    write_csv("fig7_scatter", &header, &rows);

    let curve = result.cumulative_failure_curve(50);
    let fr_header: Vec<String> = ["utilization", "cumulative failure ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let fr_rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(u, r)| vec![format!("{u:.2}"), format!("{r:.6}")])
        .collect();
    write_csv("fig7_failure_ratio", &fr_header, &fr_rows);

    let summary_header: Vec<String> = ["metric", "value"].iter().map(|s| s.to_string()).collect();
    let summary = vec![
        vec![
            "success ratio".to_string(),
            format!("{:.2}%", result.success_ratio() * 100.0),
        ],
        vec![
            "final utilization".to_string(),
            format!("{:.1}%", result.final_utilization() * 100.0),
        ],
        vec![
            "replica diversion ratio".to_string(),
            format!("{:.2}%", result.replica_diversion_ratio() * 100.0),
        ],
        vec!["failures total".to_string(), format!("{}", scatter.len())],
    ];
    print_table(
        "Figure 7: insertion failures vs utilization (filesystem workload)",
        &summary_header,
        &summary,
    );
    past_bench::write_csv("fig7_summary", &summary_header, &summary);
}
