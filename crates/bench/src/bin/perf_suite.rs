//! Perf-trajectory suite: fixed-seed insert/lookup/churn workloads at
//! two scales, self-reporting wall time, peak RSS (from
//! `/proc/self/status` — `/usr/bin/time` is absent on this box),
//! simulator events/sec, and protocol totals. Writes `BENCH_perf.json`
//! (honours `PAST_OUT_DIR`).
//!
//! If `results/perf_baseline.json` exists (a committed run from before
//! the hot-path optimizations), its content is embedded under
//! `"baseline"` and a per-workload `speedup_vs_baseline` is computed,
//! so one artifact carries the before/after comparison.
//!
//! Beyond the legacy-engine rows, the full suite sweeps the sharded
//! conservative-lookahead engine over shard counts {1, 2, 4, 8} on an
//! open-loop (pipelined) insert replay — the injection mode that keeps
//! enough events in flight for shards to matter. Every row records its
//! `shards` value (0 = legacy single-threaded engine) and the report
//! records `host_cpus`, so scaling numbers are honest about the
//! parallelism the host could physically offer.
//!
//! Env knobs:
//! - `PAST_NODES`/`PAST_FILES`: replace the two built-in scales
//!   (small = 60/5000, large = 450/90000) with one custom scale
//!   labelled `env` (used by the CI perf smoke).
//! - `PAST_SHARDS`: run every workload on the sharded engine with this
//!   shard count instead of the legacy engine (the CI perf smoke runs
//!   the suite at 1 and 2 shards and diffs the counters).
//! - `PAST_XL`: additionally run the 10,000-node / 1,000,000-file
//!   open-loop insert workload (`xl` scale) on the sharded engine.
//! - `PAST_XL2`: additionally run the 10,000-node / **10,000,000**-file
//!   open-loop insert workload (`xl2`) against the lazy streaming
//!   trace — the memory-wall row. Per-event records are thinned
//!   (1-in-1024); the exact aggregate counters are unaffected.
//! - `PAST_SHARD_THREADS`: worker threads for the sharded engine
//!   (default: available cores − 1, capped at shards − 1).
//! - `PAST_OUT_DIR`: redirect `BENCH_perf.json` and the CSV.
//!
//! # Peak-RSS semantics (schema 3)
//!
//! Schema 2 reported `VmHWM` verbatim: a **process-wide** high-water
//! mark, so every workload after the biggest one inherited its peak.
//! Schema 3 resets the kernel watermark (`/proc/self/clear_refs`) at
//! each workload's start, making `peak_rss_kb` a **per-workload**
//! peak. Each row carries `peak_semantics`: `"since_reset"` when the
//! reset succeeded, `"process_wide"` when the kernel refused it.
//!
//! With the `count-alloc` feature the binary installs `past-obs`'s
//! counting allocator and prints per-site allocation totals to stderr
//! after each trace workload (never into the JSON — the counts depend
//! on allocator internals, not on the protocol).

use std::io::Write as _;
use std::time::Instant;

use past_bench::{artifact_path, base_config, print_table, web_stream, web_trace, write_csv, Scale};
use past_net::{FaultPlan, SimDuration};
use past_obs::mem;
use past_sim::{ChurnConfig, ChurnRunner, Runner};
use past_store::CachePolicyKind;
use past_workload::Workload;

#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOC: past_obs::mem::count::CountingAlloc = past_obs::mem::count::CountingAlloc;

/// Evaluates an expression with its allocations billed to a
/// `past_obs::mem::count::Site` (no-op without the feature).
macro_rules! alloc_site {
    ($site:ident, $e:expr) => {{
        #[cfg(feature = "count-alloc")]
        {
            past_obs::mem::count::with_site(past_obs::mem::count::Site::$site, || $e)
        }
        #[cfg(not(feature = "count-alloc"))]
        {
            $e
        }
    }};
}

/// Prints the cumulative per-site allocation totals (feature-gated).
fn report_alloc_sites(label: &str) {
    #[cfg(feature = "count-alloc")]
    for (site, calls, bytes) in past_obs::mem::count::site_totals() {
        eprintln!(
            "[perf_suite] alloc after {label}: {site} {calls} calls, {:.1} MB",
            bytes as f64 / (1024.0 * 1024.0)
        );
    }
    #[cfg(not(feature = "count-alloc"))]
    let _ = label;
}

struct Measured {
    name: &'static str,
    scale_label: &'static str,
    nodes: usize,
    files: usize,
    seed: u64,
    /// Engine selector: 0 = legacy single-threaded, n ≥ 1 = sharded.
    shards: usize,
    build_seconds: f64,
    wall_seconds: f64,
    events: u64,
    delivered: u64,
    inserts_ok: u64,
    inserts_failed: u64,
    lookups: u64,
    lookups_ok: u64,
    rss_kb: u64,
    peak_rss_kb: u64,
    /// `"since_reset"` (per-workload peak) or `"process_wide"` (the
    /// kernel refused the watermark reset — schema-2 semantics).
    peak_semantics: &'static str,
}

/// Resets the kernel RSS watermark at a workload boundary and names
/// the semantics the subsequent `VmHWM` read will have.
fn begin_peak_window() -> &'static str {
    if mem::reset_peak() {
        "since_reset"
    } else {
        "process_wide"
    }
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Inter-op injection gap for the open-loop replay: short enough to
/// keep tens of inserts in flight, long enough that the run does not
/// degenerate into one giant event window.
const PIPELINE_GAP: SimDuration = SimDuration::from_millis(2);

/// Insert-heavy (storage experiment) or lookup-heavy (caching
/// experiment) trace replay against a freshly built overlay.
#[allow(clippy::too_many_arguments)]
fn run_trace_workload(
    name: &'static str,
    scale_label: &'static str,
    scale: Scale,
    replay_lookups: bool,
    seed: u64,
    shards: usize,
    pipelined: bool,
    streaming: bool,
    record_every: usize,
) -> Measured {
    eprintln!(
        "[perf_suite] {name} @ {scale_label} ({} nodes, {} files, {} shards{}) ...",
        scale.nodes,
        scale.files,
        shards,
        if streaming { ", streaming" } else { "" }
    );
    let peak_semantics = begin_peak_window();
    // The streaming trace holds only packed per-file state (~5 B/file)
    // and derives requests lazily; the materialized trace is the
    // byte-identical legacy representation.
    let trace: Box<dyn Workload> = if streaming {
        alloc_site!(TraceBuild, Box::new(web_stream(scale)))
    } else {
        alloc_site!(TraceBuild, Box::new(web_trace(scale)))
    };
    let mut cfg = base_config(scale);
    cfg.replay_lookups = replay_lookups;
    if replay_lookups {
        // Exercise the caching hot path (pass-through cache_file).
        cfg.cache_policy = CachePolicyKind::GreedyDualSize;
    }
    cfg.seed = seed;
    cfg.shards = shards;
    let t0 = Instant::now();
    let runner =
        alloc_site!(OverlayBuild, Runner::build(cfg, trace.as_ref())).with_record_sampling(record_every);
    let build_seconds = t0.elapsed().as_secs_f64();
    let result = alloc_site!(
        Replay,
        if pipelined {
            runner.run_pipelined(trace.as_ref(), PIPELINE_GAP)
        } else {
            runner.run(trace.as_ref())
        }
    );
    report_alloc_sites(name);
    Measured {
        name,
        scale_label,
        nodes: scale.nodes,
        files: scale.files,
        seed,
        shards,
        build_seconds,
        wall_seconds: result.wall_seconds,
        events: result.net.events,
        delivered: result.net.delivered,
        inserts_ok: result.inserts_ok,
        inserts_failed: result.inserts_total - result.inserts_ok,
        lookups: result.lookups_total,
        lookups_ok: result.lookups_ok,
        rss_kb: mem::rss_kb(),
        peak_rss_kb: mem::peak_rss_kb(),
        peak_semantics,
    }
}

/// Churn workload: inserts, 60 s of Poisson churn + 5% loss while
/// serving lookups, then repair — the maintenance-plane hot path.
fn run_churn_workload(
    scale_label: &'static str,
    scale: Scale,
    seed: u64,
    shards: usize,
) -> Measured {
    let nodes = (scale.nodes / 8).clamp(20, 60);
    let files = (scale.files / 100).clamp(8, 60);
    eprintln!(
        "[perf_suite] churn @ {scale_label} ({nodes} nodes, {files} files, {shards} shards) ..."
    );
    let peak_semantics = begin_peak_window();
    let cfg = ChurnConfig {
        nodes,
        files,
        seed,
        shards,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut r = ChurnRunner::build(cfg);
    let build_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let inserted = r.insert_files() as u64;
    let plan = r.poisson_plan(
        SimDuration::from_secs(60),
        SimDuration::from_secs(15),
        SimDuration::from_secs(60),
    );
    r.set_loss_probability(0.05);
    r.run_with_faults(plan, SimDuration::from_secs(10));
    r.lookup_round(20, SimDuration::from_secs(2));
    r.run_for(SimDuration::from_secs(10));
    r.set_loss_probability(0.0);
    r.run_with_faults(FaultPlan::new(), SimDuration::ZERO);
    let _ = r.time_to_full_replication(SimDuration::from_secs(1), SimDuration::from_secs(120));
    r.heal(SimDuration::from_secs(10));
    let wall_seconds = t1.elapsed().as_secs_f64();

    let (lookups, lookups_ok) = r.lookup_totals();
    let net = r.net_stats();
    Measured {
        name: "churn",
        scale_label,
        nodes,
        files,
        seed,
        shards,
        build_seconds,
        wall_seconds,
        events: net.events,
        delivered: net.delivered,
        inserts_ok: inserted,
        inserts_failed: files as u64 - inserted,
        lookups: lookups as u64,
        lookups_ok: lookups_ok as u64,
        rss_kb: mem::rss_kb(),
        peak_rss_kb: mem::peak_rss_kb(),
        peak_semantics,
    }
}

/// Finds the workload matching (name, scale) in a previously written
/// perf report and returns its `wall_seconds`. The format is our own
/// (see `workload_json`), so a positional scan is reliable.
fn baseline_wall(baseline: &str, name: &str, scale_label: &str) -> Option<f64> {
    let needle = format!("{{\"name\": \"{name}\", \"scale\": \"{scale_label}\"");
    let at = baseline.find(&needle)?;
    let rest = &baseline[at..];
    let key = "\"wall_seconds\": ";
    let rest = &rest[rest.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn workload_json(m: &Measured, baseline: Option<&str>) -> String {
    let speedup = baseline
        .and_then(|b| baseline_wall(b, m.name, m.scale_label))
        .map(|before| {
            if m.wall_seconds > 0.0 {
                format!("{:.2}", before / m.wall_seconds)
            } else {
                "null".to_string()
            }
        })
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"name\": \"{}\", \"scale\": \"{}\", \"nodes\": {}, \"files\": {}, \
         \"seed\": {}, \"shards\": {}, \"build_seconds\": {:.3}, \"wall_seconds\": {:.3}, \
         \"events\": {}, \"delivered\": {}, \"events_per_sec\": {:.0}, \
         \"inserts_ok\": {}, \"inserts_failed\": {}, \"lookups\": {}, \
         \"lookups_ok\": {}, \"rss_kb\": {}, \"peak_rss_kb\": {}, \
         \"peak_semantics\": \"{}\", \"speedup_vs_baseline\": {}}}",
        m.name,
        m.scale_label,
        m.nodes,
        m.files,
        m.seed,
        m.shards,
        m.build_seconds,
        m.wall_seconds,
        m.events,
        m.delivered,
        m.events_per_sec(),
        m.inserts_ok,
        m.inserts_failed,
        m.lookups,
        m.lookups_ok,
        m.rss_kb,
        m.peak_rss_kb,
        m.peak_semantics,
        speedup,
    )
}

fn main() {
    let env_scale =
        std::env::var_os("PAST_NODES").is_some() || std::env::var_os("PAST_FILES").is_some();
    // Engine override for the whole suite (0 = legacy engine).
    let env_shards: usize = std::env::var("PAST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // Small before large: VmHWM is a process-wide high-water mark.
    let scales: Vec<(&'static str, Scale)> = if env_scale {
        let mut s = Scale::from_env();
        // Scale::from_env defaults to full paper scale; when only one
        // knob is set, keep the other proportionate (830 files/node).
        if std::env::var_os("PAST_FILES").is_none() {
            s.files = s.nodes * 830;
        }
        if std::env::var_os("PAST_NODES").is_none() {
            s.nodes = (s.files / 830).max(10);
        }
        vec![("env", s)]
    } else {
        vec![
            (
                "small",
                Scale {
                    nodes: 60,
                    files: 5_000,
                },
            ),
            (
                "large",
                Scale {
                    nodes: 450,
                    files: 90_000,
                },
            ),
        ]
    };

    let baseline = std::fs::read_to_string("results/perf_baseline.json").ok();
    let mut measured: Vec<Measured> = Vec::new();
    for &(label, scale) in &scales {
        measured.push(run_trace_workload(
            "insert_heavy",
            label,
            scale,
            false,
            2001,
            env_shards,
            false,
            false,
            1,
        ));
        measured.push(run_trace_workload(
            "lookup_heavy",
            label,
            scale,
            true,
            2002,
            env_shards,
            false,
            false,
            1,
        ));
        measured.push(run_churn_workload(label, scale, 42, env_shards));
    }

    // Shard-count sweep: the same open-loop insert replay at 1, 2, 4
    // and 8 shards. The engine's determinism contract makes the rows
    // directly comparable — same seed, byte-identical counters — so
    // wall-time differences are pure engine scaling. Skipped under the
    // CI env scale (the smoke compares two full-suite runs instead).
    if !env_scale {
        let sweep_scale = Scale {
            nodes: 450,
            files: 90_000,
        };
        for shards in [1usize, 2, 4, 8] {
            measured.push(run_trace_workload(
                "insert_pipelined",
                "large",
                sweep_scale,
                false,
                2003,
                shards,
                true,
                false,
                1,
            ));
        }
    }

    // The headline scale: 10,000 nodes replaying a 1,000,000-file
    // insert workload open-loop on the sharded engine. Opt-in (the
    // default suite stays minutes-scale) but CI-completable.
    if std::env::var_os("PAST_XL").is_some() {
        let xl = Scale {
            nodes: 10_000,
            files: 1_000_000,
        };
        let shards = if env_shards > 0 { env_shards } else { 8 };
        measured.push(run_trace_workload(
            "insert_pipelined",
            "xl",
            xl,
            false,
            2004,
            shards,
            true,
            false,
            1,
        ));
    }

    // The memory-wall scale: 10,000 nodes replaying a 10,000,000-file
    // insert workload open-loop against the *streaming* trace. The
    // materialized representation would spend minutes and hundreds of
    // MB building a ~21M-entry request vector up front; the stream
    // derives the identical op sequence lazily from packed per-file
    // state. Per-event records are thinned 1-in-1024 (the exact
    // counters below are unaffected) so the result vectors stay small.
    if std::env::var_os("PAST_XL2").is_some() {
        let xl2 = Scale {
            nodes: 10_000,
            files: 10_000_000,
        };
        let shards = if env_shards > 0 { env_shards } else { 8 };
        measured.push(run_trace_workload(
            "insert_pipelined",
            "xl2",
            xl2,
            false,
            2005,
            shards,
            true,
            true,
            1024,
        ));
    }

    let header: Vec<String> = [
        "workload",
        "scale",
        "nodes",
        "files",
        "shards",
        "wall (s)",
        "events/s",
        "inserts ok",
        "lookups ok",
        "peak RSS (MB)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.scale_label.to_string(),
                m.nodes.to_string(),
                m.files.to_string(),
                m.shards.to_string(),
                format!("{:.2}", m.wall_seconds),
                format!("{:.0}", m.events_per_sec()),
                m.inserts_ok.to_string(),
                format!("{}/{}", m.lookups_ok, m.lookups),
                format!("{:.1}", m.peak_rss_kb as f64 / 1024.0),
            ]
        })
        .collect();
    print_table("perf_suite", &header, &rows);
    write_csv("perf_suite", &header, &rows);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"perf_suite\",\n  \"schema\": 3,\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, m) in measured.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&workload_json(m, baseline.as_deref()));
        json.push_str(if i + 1 == measured.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    match &baseline {
        Some(b) => {
            json.push_str("  \"baseline\": ");
            // The baseline file is itself a perf_suite report (valid
            // JSON), so it embeds verbatim as a value.
            json.push_str(b.trim_end());
            json.push('\n');
        }
        None => json.push_str("  \"baseline\": null\n"),
    }
    json.push_str("}\n");

    let path = artifact_path("BENCH_perf.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_perf.json");
    f.write_all(json.as_bytes()).expect("write BENCH_perf.json");
    eprintln!("wrote {}", path.display());
}
