//! Figure 6: file insertion failures by file size versus the
//! utilization at which they occurred, plus the windowed failure ratio
//! (NLANR web workload, t_pri = 0.1, t_div = 0.05).
//!
//! Paper shape: as utilization rises, ever smaller files fail; a file of
//! average size (10,517 B) is first rejected only at 90.5% utilization,
//! no file under 0.5 MB fails before ~80%, and the failure ratio stays
//! below 0.05 until ~95%.

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    let mean_size = trace.mean_file_size();
    let cfg = ExperimentConfig {
        nodes: scale.nodes,
        ..Default::default()
    };
    let result = Runner::build(cfg, &trace)
        .with_progress(past_bench::progress_logger("fig6"))
        .run(&trace);
    eprintln!("fig6 run done in {:.1}s", result.wall_seconds);

    // Scatter: every failed insertion.
    let scatter = result.failure_scatter();
    let header: Vec<String> = ["utilization", "file size (bytes)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = scatter
        .iter()
        .map(|(u, s)| vec![format!("{u:.4}"), format!("{s}")])
        .collect();
    write_csv("fig6_scatter", &header, &rows);

    // Windowed failure ratio (right axis of the paper's figure).
    let grid = 50;
    let curve = result.cumulative_failure_curve(grid);
    let fr_header: Vec<String> = ["utilization", "cumulative failure ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let fr_rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(u, r)| vec![format!("{u:.2}"), format!("{r:.6}")])
        .collect();
    write_csv("fig6_failure_ratio", &fr_header, &fr_rows);

    // Headline numbers matching the paper's prose.
    let first_mean_fail = result.first_failure_at_or_above(0); // any size
    let first_avg_file_fail = result
        .inserts
        .iter()
        .filter(|r| !r.success && (r.size as f64) <= mean_size)
        .map(|r| r.utilization)
        .min_by(f64::total_cmp);
    let first_small_fail = result
        .inserts
        .iter()
        .filter(|r| !r.success && r.size < 512 * 1024)
        .map(|r| r.utilization)
        .min_by(f64::total_cmp);
    let summary_header: Vec<String> = ["metric", "value"].iter().map(|s| s.to_string()).collect();
    let summary = vec![
        vec![
            "first failure (any size)".to_string(),
            format!(
                "{:?}",
                first_mean_fail.map(|u| format!("{:.1}%", u * 100.0))
            ),
        ],
        vec![
            "first failure of file <= mean size".to_string(),
            format!(
                "{:?}",
                first_avg_file_fail.map(|u| format!("{:.1}%", u * 100.0))
            ),
        ],
        vec![
            "first failure of file < 0.5 MB".to_string(),
            format!(
                "{:?}",
                first_small_fail.map(|u| format!("{:.1}%", u * 100.0))
            ),
        ],
        vec!["failures total".to_string(), format!("{}", scatter.len())],
        vec![
            "final utilization".to_string(),
            format!("{:.1}%", result.final_utilization() * 100.0),
        ],
    ];
    print_table(
        "Figure 6: insertion failures vs utilization (web workload)",
        &summary_header,
        &summary,
    );
    past_bench::write_csv("fig6_summary", &summary_header, &summary);
}
