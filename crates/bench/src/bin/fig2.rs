//! Figure 2: cumulative failure ratio versus storage utilization while
//! varying t_pri ∈ {0.05, 0.1, 0.2, 0.5} (t_div = 0.05, d1, l = 32).
//!
//! Paper shape: failure ratio stays below ~10⁻³ until utilization
//! approaches 80–90%, then rises sharply; smaller t_pri fails *more*
//! small files at low utilization but keeps high-utilization failures
//! lower.

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    let t_pris = [0.05, 0.1, 0.2, 0.5];
    let grid = 50;
    let mut curves = Vec::new();
    for &t_pri in &t_pris {
        let cfg = ExperimentConfig {
            nodes: scale.nodes,
            t_pri,
            t_div: 0.05,
            ..Default::default()
        };
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("fig2"))
            .run(&trace);
        eprintln!("t_pri={t_pri}: done in {:.1}s", result.wall_seconds);
        curves.push(result.cumulative_failure_curve(grid));
    }
    let header: Vec<String> = std::iter::once("utilization".to_string())
        .chain(t_pris.iter().map(|t| format!("t_pri={t}")))
        .collect();
    let mut rows = Vec::new();
    for g in 0..=grid {
        let mut row = vec![format!("{:.2}", curves[0][g].0)];
        for c in &curves {
            row.push(format!("{:.6}", c[g].1));
        }
        rows.push(row);
    }
    print_table(
        "Figure 2: cumulative failure ratio vs utilization (t_pri sweep)",
        &header,
        &rows,
    );
    write_csv("fig2", &header, &rows);
}
