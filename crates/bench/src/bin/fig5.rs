//! Figure 5: cumulative ratio of replica diversions versus storage
//! utilization (t_pri = 0.1, t_div = 0.05, d1, l = 32).
//!
//! Paper shape: fewer than 10% of replicas are diverted at 80%
//! utilization, rising toward ~16% near capacity.

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    let cfg = ExperimentConfig {
        nodes: scale.nodes,
        ..Default::default()
    };
    let result = Runner::build(cfg, &trace)
        .with_progress(past_bench::progress_logger("fig5"))
        .run(&trace);
    eprintln!(
        "fig5 run done in {:.1}s (final replica-diversion ratio {:.3})",
        result.wall_seconds,
        result.replica_diversion_ratio()
    );
    let curve = result.replica_diversion_curve(50);
    let header: Vec<String> = ["utilization", "replica diversion ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(u, r)| vec![format!("{u:.2}"), format!("{r:.6}")])
        .collect();
    print_table(
        "Figure 5: cumulative replica diversion ratio vs utilization",
        &header,
        &rows,
    );
    write_csv("fig5", &header, &rows);
}
