//! Availability under churn: lookup success rate and
//! time-to-rereplication across a (churn rate × message loss) grid.
//!
//! For each cell the overlay absorbs 60 s of Poisson churn (plus global
//! message loss) while serving lookups, then the faults stop and the
//! harness measures how long the maintenance plane takes to restore the
//! k-copies invariant (the auditor's replication check). Results go to
//! stdout, `results/churn_availability.csv`, and `BENCH_churn.json`.
//!
//! A second section compares **warm vs cold restarts** (same seed, same
//! churn schedule, `warm_restart` toggled) at mtbf 900/300/60 s with no
//! message loss: lookup success, time-to-rereplication, and maintenance
//! bytes split into re-replication vs refresh traffic. It runs at a
//! floor of 60 nodes / 24 files so replicas are sparse relative to the
//! overlay (see the comment in `main`).
//!
//! Environment knobs: `PAST_CHURN_NODES` (default 30),
//! `PAST_CHURN_FILES` (default 8), and `PAST_CHURN_SMOKE=1` to skip the
//! grid and run only the warm-vs-cold pair at mtbf 60 s (the CI smoke).

use std::io::Write as _;

use past_net::{FaultPlan, SimDuration};
use past_sim::{ChurnConfig, ChurnRunner};

use past_bench::{artifact_path, print_table, write_csv};

struct Cell {
    mtbf_s: u64,
    loss: f64,
    lookups: usize,
    lookups_ok: usize,
    rereplication_s: Option<f64>,
    under_replicated: usize,
    maint_sent: u64,
    maint_retries: u64,
    maint_exhausted: u64,
    crashes: u64,
    lost: u64,
}

/// One warm-vs-cold comparison run (no message loss; the warm/cold pair
/// shares a seed, so the churn schedule and workload are identical).
struct WarmRow {
    mtbf_s: u64,
    warm: bool,
    lookups: usize,
    lookups_ok: usize,
    rereplication_s: Option<f64>,
    under_replicated: usize,
    maint_sent: u64,
    bytes_rereplication: u64,
    bytes_refresh: u64,
    restarts_warm: u64,
    restarts_cold: u64,
    crashes: u64,
    downtime_mean_s: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_cell(nodes: usize, files: usize, mtbf_s: u64, loss: f64) -> Cell {
    let mut cfg = ChurnConfig {
        nodes,
        files,
        seed: (1000 + mtbf_s) ^ (loss * 100.0) as u64,
        ..Default::default()
    };
    // Anti-entropy backs up the acked retries during sustained churn.
    cfg.past.anti_entropy_period = SimDuration::from_secs(10);
    let mut r = ChurnRunner::build(cfg);
    // PAST_METRICS=1 records a past-obs report per grid cell into
    // results/metrics_churn_mtbf<m>_loss<l>.json (off by default: the
    // bench's wall-clock numbers are taken without recording).
    let metrics_on = env_usize("PAST_METRICS", 0) != 0;
    if metrics_on {
        let label = format!("churn_mtbf{}_loss{}", mtbf_s, (loss * 100.0) as u32);
        r.enable_metrics(&label);
    }
    let inserted = r.insert_files();
    assert!(inserted > 0, "no insert succeeded before churn");

    // 60 s churn window: 10 s head start, then 20 lookups spaced 2 s
    // apart run *inside* the window (the fault plan stays installed
    // until heal clears it), then the final 10 s play out.
    let churn_span = SimDuration::from_secs(60);
    let plan = r.poisson_plan(
        SimDuration::from_secs(mtbf_s),
        SimDuration::from_secs(15),
        churn_span,
    );
    r.set_loss_probability(loss);
    r.run_with_faults(plan, SimDuration::from_secs(10));
    r.lookup_round(20, SimDuration::from_secs(2));
    r.run_for(SimDuration::from_secs(10));
    let (lookups, lookups_ok) = r.lookup_totals();

    // Faults stop but the currently-dead nodes STAY dead (clearing the
    // plan cancels their pending recoveries): time-to-rereplication is
    // how long maintenance takes to restore min(k, live) copies on the
    // survivors. Healing first would be trivial — recovered nodes bring
    // their replicas back with them.
    r.set_loss_probability(0.0);
    r.run_with_faults(FaultPlan::new(), SimDuration::ZERO);
    let repaired =
        r.time_to_full_replication(SimDuration::from_secs(1), SimDuration::from_secs(300));
    r.heal(SimDuration::from_secs(10));
    if metrics_on {
        r.snapshot_metrics();
        r.finish_metrics();
    }
    let report = r.audit();
    let maint = r.maint_totals();
    let net = r.net_stats();
    Cell {
        mtbf_s,
        loss,
        lookups,
        lookups_ok,
        rereplication_s: repaired.map(|d| d.micros() as f64 / 1e6),
        under_replicated: report.under_replicated.len(),
        maint_sent: maint.sent,
        maint_retries: maint.retries,
        maint_exhausted: maint.exhausted,
        crashes: net.crashes,
        lost: net.lost,
    }
}

fn run_warm_cell(nodes: usize, files: usize, mtbf_s: u64, warm: bool) -> WarmRow {
    let mut cfg = ChurnConfig {
        nodes,
        files,
        // Same seed for the warm and cold halves of a pair: identical
        // overlay, churn schedule and lookup workload — only the
        // restart mode differs.
        seed: 7000 + mtbf_s,
        ..Default::default()
    };
    cfg.past.anti_entropy_period = SimDuration::from_secs(10);
    cfg.past.warm_restart = warm;
    cfg.pastry.warm_restart = warm;
    cfg.pastry.track_reliability = warm;
    let mut r = ChurnRunner::build(cfg);
    let inserted = r.insert_files();
    assert!(inserted > 0, "no insert succeeded before churn");

    // 300 s churn window with 30 s mean downtime (well past the 15 s
    // failure detector, so every outage is noticed). The long window is
    // what separates the restart modes: at mtbf 60 s nearly every node
    // crashes at least once, and a cold restart permanently loses its
    // background-sweep timers while a warm one re-arms them. 10 s head
    // start, 120 lookups spaced 2 s apart inside the window, 50 s tail.
    let churn_span = SimDuration::from_secs(300);
    let plan = r.poisson_plan(
        SimDuration::from_secs(mtbf_s),
        SimDuration::from_secs(30),
        churn_span,
    );
    r.run_with_faults(plan, SimDuration::from_secs(10));
    r.lookup_round(120, SimDuration::from_secs(2));
    r.run_for(SimDuration::from_secs(50));
    let (lookups, lookups_ok) = r.lookup_totals();

    r.run_with_faults(FaultPlan::new(), SimDuration::ZERO);
    let repaired =
        r.time_to_full_replication(SimDuration::from_secs(1), SimDuration::from_secs(300));
    r.heal(SimDuration::from_secs(10));
    let report = r.audit();
    let maint = r.maint_totals();
    let net = r.net_stats();
    let (restarts_warm, restarts_cold) = r.restart_totals();
    let downtime_mean_s = r
        .downtime_summary()
        .map(|(_, mean_us, _)| mean_us as f64 / 1e6)
        .unwrap_or(0.0);
    WarmRow {
        mtbf_s,
        warm,
        lookups,
        lookups_ok,
        rereplication_s: repaired.map(|d| d.micros() as f64 / 1e6),
        under_replicated: report.under_replicated.len(),
        maint_sent: maint.sent,
        bytes_rereplication: maint.bytes_rereplication,
        bytes_refresh: maint.bytes_refresh,
        restarts_warm,
        restarts_cold,
        crashes: net.crashes,
        downtime_mean_s,
    }
}

fn main() {
    let nodes = env_usize("PAST_CHURN_NODES", 30);
    let files = env_usize("PAST_CHURN_FILES", 8);
    let smoke = env_usize("PAST_CHURN_SMOKE", 0) != 0;
    let mtbfs = [240u64, 120, 60];
    let losses = [0.0f64, 0.05, 0.1];

    let mut cells = Vec::new();
    if !smoke {
        for &mtbf in &mtbfs {
            for &loss in &losses {
                eprintln!("churn cell: mtbf={mtbf}s loss={loss} ...");
                cells.push(run_cell(nodes, files, mtbf, loss));
            }
        }
    }

    // The warm-vs-cold section runs at a larger scale than the grid
    // (floor of 60 nodes / 24 files): with 30 nodes and 8 files almost
    // every node holds a copy of every file (k = 5 replicas plus
    // caches), so lookups succeed regardless of restart mode and the
    // comparison degenerates into a tie. Sparser replicas expose the
    // root-miss windows that warm restarts close.
    let warm_nodes = nodes.max(60);
    let warm_files = files.max(24);
    let warm_mtbfs: &[u64] = if smoke { &[60] } else { &[900, 300, 60] };
    let mut warm_rows = Vec::new();
    for &mtbf in warm_mtbfs {
        for &warm in &[false, true] {
            let mode = if warm { "warm" } else { "cold" };
            eprintln!("warm-vs-cold: mtbf={mtbf}s mode={mode} ...");
            warm_rows.push(run_warm_cell(warm_nodes, warm_files, mtbf, warm));
        }
    }

    let header: Vec<String> = [
        "mtbf (s)",
        "loss",
        "lookup ok",
        "rereplication (s)",
        "under-rep",
        "maint sent",
        "retries",
        "exhausted",
        "crashes",
        "lost msgs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.mtbf_s.to_string(),
                format!("{:.2}", c.loss),
                format!("{}/{}", c.lookups_ok, c.lookups),
                c.rereplication_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "timeout".into()),
                c.under_replicated.to_string(),
                c.maint_sent.to_string(),
                c.maint_retries.to_string(),
                c.maint_exhausted.to_string(),
                c.crashes.to_string(),
                c.lost.to_string(),
            ]
        })
        .collect();
    print_table("Availability under churn", &header, &rows);
    write_csv("churn_availability", &header, &rows);

    let warm_header: Vec<String> = [
        "mtbf (s)",
        "mode",
        "lookup ok",
        "rereplication (s)",
        "under-rep",
        "maint sent",
        "rerepl bytes",
        "refresh bytes",
        "restarts w/c",
        "crashes",
        "downtime mean (s)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let warm_table: Vec<Vec<String>> = warm_rows
        .iter()
        .map(|r| {
            vec![
                r.mtbf_s.to_string(),
                if r.warm { "warm" } else { "cold" }.to_string(),
                format!("{}/{}", r.lookups_ok, r.lookups),
                r.rereplication_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "timeout".into()),
                r.under_replicated.to_string(),
                r.maint_sent.to_string(),
                r.bytes_rereplication.to_string(),
                r.bytes_refresh.to_string(),
                format!("{}/{}", r.restarts_warm, r.restarts_cold),
                r.crashes.to_string(),
                format!("{:.1}", r.downtime_mean_s),
            ]
        })
        .collect();
    print_table("Warm vs cold restarts", &warm_header, &warm_table);
    write_csv("churn_warm_vs_cold", &warm_header, &warm_table);

    // Hand-rolled JSON (the workspace has no serde): one object per
    // grid cell, machine-readable for downstream tooling.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"churn_availability\",\n");
    json.push_str(&format!("  \"nodes\": {nodes},\n  \"files\": {files},\n"));
    json.push_str(&format!(
        "  \"warm_nodes\": {warm_nodes},\n  \"warm_files\": {warm_files},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let rate = if c.lookups > 0 {
            c.lookups_ok as f64 / c.lookups as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"mtbf_s\": {}, \"loss\": {:.2}, \"lookups\": {}, \
             \"lookup_success_rate\": {:.4}, \"time_to_rereplication_s\": {}, \
             \"under_replicated_after_heal\": {}, \"maint_sent\": {}, \
             \"maint_retries\": {}, \"maint_exhausted\": {}, \
             \"crashes\": {}, \"lost_messages\": {}}}{}\n",
            c.mtbf_s,
            c.loss,
            c.lookups,
            rate,
            c.rereplication_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "null".into()),
            c.under_replicated,
            c.maint_sent,
            c.maint_retries,
            c.maint_exhausted,
            c.crashes,
            c.lost,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"warm_vs_cold\": [\n");
    for (i, r) in warm_rows.iter().enumerate() {
        let rate = if r.lookups > 0 {
            r.lookups_ok as f64 / r.lookups as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"mtbf_s\": {}, \"warm_restart\": {}, \"lookups\": {}, \
             \"lookup_success_rate\": {:.4}, \"time_to_rereplication_s\": {}, \
             \"under_replicated_after_heal\": {}, \"maint_sent\": {}, \
             \"maint_bytes_rereplication\": {}, \"maint_bytes_refresh\": {}, \
             \"restarts_warm\": {}, \"restarts_cold\": {}, \
             \"crashes\": {}, \"downtime_mean_s\": {:.1}}}{}\n",
            r.mtbf_s,
            r.warm,
            r.lookups,
            rate,
            r.rereplication_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "null".into()),
            r.under_replicated,
            r.maint_sent,
            r.bytes_rereplication,
            r.bytes_refresh,
            r.restarts_warm,
            r.restarts_cold,
            r.crashes,
            r.downtime_mean_s,
            if i + 1 == warm_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = artifact_path("BENCH_churn.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_churn.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_churn.json");
    eprintln!("wrote {}", path.display());
}
