//! Availability under churn: lookup success rate and
//! time-to-rereplication across a (churn rate × message loss) grid.
//!
//! For each cell the overlay absorbs 60 s of Poisson churn (plus global
//! message loss) while serving lookups, then the faults stop and the
//! harness measures how long the maintenance plane takes to restore the
//! k-copies invariant (the auditor's replication check). Results go to
//! stdout, `results/churn_availability.csv`, and `BENCH_churn.json`.
//!
//! Environment knobs: `PAST_CHURN_NODES` (default 30) and
//! `PAST_CHURN_FILES` (default 8).

use std::io::Write as _;

use past_net::{FaultPlan, SimDuration};
use past_sim::{ChurnConfig, ChurnRunner};

use past_bench::{artifact_path, print_table, write_csv};

struct Cell {
    mtbf_s: u64,
    loss: f64,
    lookups: usize,
    lookups_ok: usize,
    rereplication_s: Option<f64>,
    under_replicated: usize,
    maint_sent: u64,
    maint_retries: u64,
    maint_exhausted: u64,
    crashes: u64,
    lost: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_cell(nodes: usize, files: usize, mtbf_s: u64, loss: f64) -> Cell {
    let mut cfg = ChurnConfig {
        nodes,
        files,
        seed: (1000 + mtbf_s) ^ (loss * 100.0) as u64,
        ..Default::default()
    };
    // Anti-entropy backs up the acked retries during sustained churn.
    cfg.past.anti_entropy_period = SimDuration::from_secs(10);
    let mut r = ChurnRunner::build(cfg);
    // PAST_METRICS=1 records a past-obs report per grid cell into
    // results/metrics_churn_mtbf<m>_loss<l>.json (off by default: the
    // bench's wall-clock numbers are taken without recording).
    let metrics_on = env_usize("PAST_METRICS", 0) != 0;
    if metrics_on {
        let label = format!("churn_mtbf{}_loss{}", mtbf_s, (loss * 100.0) as u32);
        r.enable_metrics(&label);
    }
    let inserted = r.insert_files();
    assert!(inserted > 0, "no insert succeeded before churn");

    // 60 s churn window: 10 s head start, then 20 lookups spaced 2 s
    // apart run *inside* the window (the fault plan stays installed
    // until heal clears it), then the final 10 s play out.
    let churn_span = SimDuration::from_secs(60);
    let plan = r.poisson_plan(
        SimDuration::from_secs(mtbf_s),
        SimDuration::from_secs(15),
        churn_span,
    );
    r.set_loss_probability(loss);
    r.run_with_faults(plan, SimDuration::from_secs(10));
    r.lookup_round(20, SimDuration::from_secs(2));
    r.run_for(SimDuration::from_secs(10));
    let (lookups, lookups_ok) = r.lookup_totals();

    // Faults stop but the currently-dead nodes STAY dead (clearing the
    // plan cancels their pending recoveries): time-to-rereplication is
    // how long maintenance takes to restore min(k, live) copies on the
    // survivors. Healing first would be trivial — recovered nodes bring
    // their replicas back with them.
    r.set_loss_probability(0.0);
    r.run_with_faults(FaultPlan::new(), SimDuration::ZERO);
    let repaired =
        r.time_to_full_replication(SimDuration::from_secs(1), SimDuration::from_secs(300));
    r.heal(SimDuration::from_secs(10));
    if metrics_on {
        r.snapshot_metrics();
        r.finish_metrics();
    }
    let report = r.audit();
    let maint = r.maint_totals();
    let net = r.net_stats();
    Cell {
        mtbf_s,
        loss,
        lookups,
        lookups_ok,
        rereplication_s: repaired.map(|d| d.micros() as f64 / 1e6),
        under_replicated: report.under_replicated.len(),
        maint_sent: maint.sent,
        maint_retries: maint.retries,
        maint_exhausted: maint.exhausted,
        crashes: net.crashes,
        lost: net.lost,
    }
}

fn main() {
    let nodes = env_usize("PAST_CHURN_NODES", 30);
    let files = env_usize("PAST_CHURN_FILES", 8);
    let mtbfs = [240u64, 120, 60];
    let losses = [0.0f64, 0.05, 0.1];

    let mut cells = Vec::new();
    for &mtbf in &mtbfs {
        for &loss in &losses {
            eprintln!("churn cell: mtbf={mtbf}s loss={loss} ...");
            cells.push(run_cell(nodes, files, mtbf, loss));
        }
    }

    let header: Vec<String> = [
        "mtbf (s)",
        "loss",
        "lookup ok",
        "rereplication (s)",
        "under-rep",
        "maint sent",
        "retries",
        "exhausted",
        "crashes",
        "lost msgs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.mtbf_s.to_string(),
                format!("{:.2}", c.loss),
                format!("{}/{}", c.lookups_ok, c.lookups),
                c.rereplication_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "timeout".into()),
                c.under_replicated.to_string(),
                c.maint_sent.to_string(),
                c.maint_retries.to_string(),
                c.maint_exhausted.to_string(),
                c.crashes.to_string(),
                c.lost.to_string(),
            ]
        })
        .collect();
    print_table("Availability under churn", &header, &rows);
    write_csv("churn_availability", &header, &rows);

    // Hand-rolled JSON (the workspace has no serde): one object per
    // grid cell, machine-readable for downstream tooling.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"churn_availability\",\n");
    json.push_str(&format!("  \"nodes\": {nodes},\n  \"files\": {files},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let rate = if c.lookups > 0 {
            c.lookups_ok as f64 / c.lookups as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"mtbf_s\": {}, \"loss\": {:.2}, \"lookups\": {}, \
             \"lookup_success_rate\": {:.4}, \"time_to_rereplication_s\": {}, \
             \"under_replicated_after_heal\": {}, \"maint_sent\": {}, \
             \"maint_retries\": {}, \"maint_exhausted\": {}, \
             \"crashes\": {}, \"lost_messages\": {}}}{}\n",
            c.mtbf_s,
            c.loss,
            c.lookups,
            rate,
            c.rereplication_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "null".into()),
            c.under_replicated,
            c.maint_sent,
            c.maint_retries,
            c.maint_exhausted,
            c.crashes,
            c.lost,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = artifact_path("BENCH_churn.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_churn.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_churn.json");
    eprintln!("wrote {}", path.display());
}
