//! Table 4: sensitivity to t_div ∈ {0.1, 0.05, 0.01, 0.005} with
//! t_pri = 0.1 (web workload, d1, l = 32).
//!
//! Paper reference: success 93.7%→99.6%, utilization 99.8%→90.5% as
//! t_div shrinks.

use past_bench::{print_table, storage_header, storage_row, web_trace, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "table4: {} nodes, {} unique files",
        scale.nodes,
        trace.unique_files()
    );
    let mut rows = Vec::new();
    for t_div in [0.1, 0.05, 0.01, 0.005] {
        let cfg = ExperimentConfig {
            nodes: scale.nodes,
            t_pri: 0.1,
            t_div,
            ..Default::default()
        };
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("table4"))
            .run(&trace);
        eprintln!("t_div={t_div}: done in {:.1}s", result.wall_seconds);
        rows.push(storage_row(&format!("t_div={t_div}"), &result));
    }
    print_table(
        "Table 4: varying t_div (t_pri=0.1, d1, l=32)",
        &storage_header(),
        &rows,
    );
    past_bench::write_csv("table4", &storage_header(), &rows);
}
