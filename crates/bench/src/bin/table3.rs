//! Table 3: sensitivity to t_pri ∈ {0.05, 0.1, 0.2, 0.5} with
//! t_div = 0.05 (web workload, d1, l = 32).
//!
//! Paper reference: success falls from 99.73% to 88.02% while
//! utilization rises from 97.4% to 99.7% as t_pri grows.

use past_bench::{print_table, storage_header, storage_row, web_trace, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "table3: {} nodes, {} unique files",
        scale.nodes,
        trace.unique_files()
    );
    let mut rows = Vec::new();
    for t_pri in [0.5, 0.2, 0.1, 0.05] {
        let cfg = ExperimentConfig {
            nodes: scale.nodes,
            t_pri,
            t_div: 0.05,
            ..Default::default()
        };
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("table3"))
            .run(&trace);
        eprintln!("t_pri={t_pri}: done in {:.1}s", result.wall_seconds);
        rows.push(storage_row(&format!("t_pri={t_pri}"), &result));
    }
    print_table(
        "Table 3: varying t_pri (t_div=0.05, d1, l=32)",
        &storage_header(),
        &rows,
    );
    past_bench::write_csv("table3", &storage_header(), &rows);
}
