//! Table 1: the four node storage-size distributions d1–d4 (parameters
//! and realized totals for 2250 sampled nodes).
//!
//! Paper reference totals: 61,009 / 61,154 / 61,493 / 59,595 MB.

use past_bench::{print_table, write_csv, Scale};
use past_workload::{CapacityDistribution, MB};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let mut rng = StdRng::seed_from_u64(2001);
    let header: Vec<String> = [
        "Dist",
        "m (MB)",
        "sigma (MB)",
        "Lower",
        "Upper",
        "Total capacity (MB)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for dist in CapacityDistribution::table1() {
        let caps = dist.sample_nodes(scale.nodes, &mut rng);
        let total_mb: u64 = caps.iter().sum::<u64>() / MB;
        rows.push(vec![
            dist.name.clone(),
            format!("{:.0}", dist.mean / MB as f64),
            format!("{:.1}", dist.sd / MB as f64),
            format!("{:.0}", dist.lower / MB as f64),
            format!("{:.0}", dist.upper / MB as f64),
            format!("{total_mb}"),
        ]);
    }
    print_table(
        &format!(
            "Table 1: node storage-size distributions ({} nodes)",
            scale.nodes
        ),
        &header,
        &rows,
    );
    write_csv("table1", &header, &rows);
}
