//! Ablation: replica diversion and file diversion toggled independently
//! (DESIGN.md §4). The paper's baseline disables both; this sweep shows
//! each mechanism's individual contribution to utilization and insert
//! success.

use past_bench::{print_table, storage_header, storage_row, web_trace, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "ablation: {} nodes, {} unique files",
        scale.nodes,
        trace.unique_files()
    );
    let variants: Vec<(&str, ExperimentConfig)> = vec![
        (
            "both on (paper)",
            ExperimentConfig {
                nodes: scale.nodes,
                ..Default::default()
            },
        ),
        (
            "replica div. only",
            ExperimentConfig {
                nodes: scale.nodes,
                max_file_diversions: 0,
                ..Default::default()
            },
        ),
        (
            "file div. only",
            ExperimentConfig {
                nodes: scale.nodes,
                t_pri: 1.0,
                t_div: 0.0,
                ..Default::default()
            },
        ),
        (
            "both off (baseline)",
            ExperimentConfig {
                nodes: scale.nodes,
                ..Default::default()
            }
            .no_diversion(),
        ),
    ];
    let mut rows = Vec::new();
    for (label, cfg) in variants {
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("ablation"))
            .run(&trace);
        eprintln!("{label}: done in {:.1}s", result.wall_seconds);
        rows.push(storage_row(label, &result));
    }
    print_table(
        "Ablation: replica diversion x file diversion",
        &storage_header(),
        &rows,
    );
    past_bench::write_csv("ablation_diversion", &storage_header(), &rows);
}
