//! Figure 4: ratio of inserted files diverted once, twice and three
//! times, plus cumulative insertion failures, versus storage utilization
//! (t_pri = 0.1, t_div = 0.05, d1, l = 32).
//!
//! Paper shape: file diversions are negligible below ~83% utilization;
//! single diversions dominate, with 2- and 3-fold diversions appearing
//! only near capacity.

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    let cfg = ExperimentConfig {
        nodes: scale.nodes,
        ..Default::default()
    };
    let result = Runner::build(cfg, &trace)
        .with_progress(past_bench::progress_logger("fig4"))
        .run(&trace);
    eprintln!("fig4 run done in {:.1}s", result.wall_seconds);
    let grid = 50;
    let curve = result.diversion_histogram_curve(grid);
    let header: Vec<String> = [
        "utilization",
        "1 redirect",
        "2 redirects",
        "3 redirects",
        "failure",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(u, r)| {
            vec![
                format!("{u:.2}"),
                format!("{:.6}", r[0]),
                format!("{:.6}", r[1]),
                format!("{:.6}", r[2]),
                format!("{:.6}", r[3]),
            ]
        })
        .collect();
    print_table(
        "Figure 4: file diversions and insertion failures vs utilization",
        &header,
        &rows,
    );
    write_csv("fig4", &header, &rows);
}
