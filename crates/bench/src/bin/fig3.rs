//! Figure 3: cumulative failure ratio versus storage utilization while
//! varying t_div ∈ {0.005, 0.01, 0.05, 0.1} (t_pri = 0.1, d1, l = 32).

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    let t_divs = [0.005, 0.01, 0.05, 0.1];
    let grid = 50;
    let mut curves = Vec::new();
    for &t_div in &t_divs {
        let cfg = ExperimentConfig {
            nodes: scale.nodes,
            t_pri: 0.1,
            t_div,
            ..Default::default()
        };
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("fig3"))
            .run(&trace);
        eprintln!("t_div={t_div}: done in {:.1}s", result.wall_seconds);
        curves.push(result.cumulative_failure_curve(grid));
    }
    let header: Vec<String> = std::iter::once("utilization".to_string())
        .chain(t_divs.iter().map(|t| format!("t_div={t}")))
        .collect();
    let mut rows = Vec::new();
    for g in 0..=grid {
        let mut row = vec![format!("{:.2}", curves[0][g].0)];
        for c in &curves {
            row.push(format!("{:.6}", c[g].1));
        }
        rows.push(row);
    }
    print_table(
        "Figure 3: cumulative failure ratio vs utilization (t_div sweep)",
        &header,
        &rows,
    );
    write_csv("fig3", &header, &rows);
}
