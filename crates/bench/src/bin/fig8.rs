//! Figure 8: global cache hit ratio and average routing hops versus
//! storage utilization, for GreedyDual-Size, LRU and no caching
//! (full NLANR-like replay: inserts + lookups, 775 clients on 8
//! geographic sites, c = 1, t_pri = 0.1, t_div = 0.05).
//!
//! Paper shape: hit rate falls as utilization rises (caches shrink);
//! GD-S beats LRU on both metrics; even at 99% utilization the average
//! hop count with caching stays below the no-caching line, which itself
//! is flat near ⌈log₁₆ 2250⌉ until replica diversion adds extra hops.

use past_bench::{print_table, web_trace, write_csv, Scale};
use past_sim::{ExperimentConfig, Runner, TopologyKind};
use past_store::CachePolicyKind;

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "fig8: {} nodes, {} unique files, {} total requests",
        scale.nodes,
        trace.unique_files(),
        trace.ops.len()
    );
    let policies = [
        ("GD-S", CachePolicyKind::GreedyDualSize),
        ("LRU", CachePolicyKind::Lru),
        ("None", CachePolicyKind::None),
    ];
    let buckets = 20;
    let mut curves = Vec::new();
    for (label, policy) in policies {
        let cfg = ExperimentConfig {
            nodes: scale.nodes,
            cache_policy: policy,
            replay_lookups: true,
            topology: TopologyKind::Clustered { clusters: 8 },
            ..Default::default()
        };
        let result = Runner::build(cfg, &trace)
            .with_progress(past_bench::progress_logger("fig8"))
            .run(&trace);
        eprintln!(
            "{label}: done in {:.1}s ({} lookups, hit ratio {:.3})",
            result.wall_seconds,
            result.lookups.len(),
            result.lookup_hit_ratio()
        );
        curves.push((label, result.cache_curve(buckets)));
    }
    let header: Vec<String> = [
        "utilization",
        "GD-S hit rate",
        "LRU hit rate",
        "GD-S hops",
        "LRU hops",
        "None hops",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // Align buckets across the three runs (each reports only non-empty
    // buckets, so join on the bucket center).
    let centers: Vec<f64> = curves[0].1.iter().map(|c| c.0).collect();
    let find = |curve: &[(f64, f64, f64, u64)], u: f64| {
        curve
            .iter()
            .find(|c| (c.0 - u).abs() < 1e-9)
            .map(|c| (c.1, c.2))
    };
    let mut rows = Vec::new();
    for &u in &centers {
        let gds = find(&curves[0].1, u);
        let lru = find(&curves[1].1, u);
        let none = find(&curves[2].1, u);
        rows.push(vec![
            format!("{u:.3}"),
            gds.map(|v| format!("{:.4}", v.0)).unwrap_or_default(),
            lru.map(|v| format!("{:.4}", v.0)).unwrap_or_default(),
            gds.map(|v| format!("{:.3}", v.1)).unwrap_or_default(),
            lru.map(|v| format!("{:.3}", v.1)).unwrap_or_default(),
            none.map(|v| format!("{:.3}", v.1)).unwrap_or_default(),
        ]);
    }
    print_table(
        "Figure 8: cache hit ratio and routing hops vs utilization",
        &header,
        &rows,
    );
    write_csv("fig8", &header, &rows);
}
