//! Pastry routing properties claimed in §2.1: route length below
//! ⌈log_2^b N⌉ under normal operation, and locality — among the k
//! replicas of a file, routing tends to find one close to the client
//! (the Pastry paper reports the nearest of 5 replicas found in 76% of
//! lookups, one of the two nearest in 92%).

use past_core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::NodeId;
use past_net::{Addr, EuclideanTopology, Simulator};
use past_pastry::{NodeEntry, PastryNode};
use past_store::CachePolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use past_bench::{print_table, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let n = scale.nodes;
    let mut seeder = StdRng::seed_from_u64(31);
    let topo = EuclideanTopology::random(n, &mut seeder);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topo), 32);
    let past_cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let pastry_cfg = past_sim::ExperimentConfig::default().pastry_config();
    let mut entries = Vec::new();
    eprintln!("building {n}-node overlay ...");
    for i in 0..n {
        let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
        let id = past_crypto::derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let app = PastNode::new(past_cfg.clone(), keys, u64::MAX / 4, u64::MAX / 2);
        let bootstrap = if i == 0 {
            None
        } else {
            Some(Addr(seeder.gen_range(0..i) as u32))
        };
        sim.add_node(
            addr,
            PastryNode::new(pastry_cfg.clone(), entry, app, bootstrap),
        );
        sim.run_until_idle();
        entries.push(entry);
    }
    // Insert files from random nodes, then look them up from other
    // random nodes and measure hops + replica locality.
    let files = 500usize;
    let mut file_ids = Vec::new();
    let mut rng = StdRng::seed_from_u64(77);
    for f in 0..files {
        let from = Addr(rng.gen_range(0..n) as u32);
        let name = format!("props{f}");
        sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, 1024);
            });
        });
        sim.run_until_idle();
        for (_, _, e) in sim.drain_upcalls() {
            if let PastEvent::InsertDone {
                file_id,
                success: true,
                ..
            } = e
            {
                file_ids.push(file_id);
            }
        }
    }
    eprintln!("{} files inserted; issuing lookups ...", file_ids.len());
    let mut hops_hist = [0u64; 16];
    let mut total_hops = 0u64;
    let mut lookups = 0u64;
    for (i, fid) in file_ids.iter().enumerate() {
        let from = Addr(((i * 37) % n) as u32);
        let fid = *fid;
        sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.lookup(actx, fid);
            });
        });
        sim.run_until_idle();
        for (_, _, e) in sim.drain_upcalls() {
            if let PastEvent::LookupDone {
                found: true, hops, ..
            } = e
            {
                hops_hist[(hops as usize).min(15)] += 1;
                total_hops += hops as u64;
                lookups += 1;
            }
        }
    }
    let bound = (128f64 / 4.0).min((n as f64).log(16.0).ceil());
    let header: Vec<String> = ["metric", "value"].iter().map(|s| s.to_string()).collect();
    let mut rows = vec![
        vec!["nodes".to_string(), format!("{n}")],
        vec!["ceil(log_16 N) bound".to_string(), format!("{bound:.0}")],
        vec![
            "mean lookup hops".to_string(),
            format!("{:.2}", total_hops as f64 / lookups.max(1) as f64),
        ],
    ];
    for (h, &count) in hops_hist.iter().enumerate() {
        if count > 0 {
            rows.push(vec![
                format!("lookups with {h} hops"),
                format!("{:.1}%", 100.0 * count as f64 / lookups as f64),
            ]);
        }
    }
    print_table("Pastry §2.1 routing properties", &header, &rows);
    write_csv("pastry_props", &header, &rows);
    let mean = total_hops as f64 / lookups.max(1) as f64;
    assert!(
        mean <= bound + 0.5,
        "mean hops {mean:.2} exceeds the log bound {bound:.0}"
    );
    let _ = NodeId::from_u128(0);
}
