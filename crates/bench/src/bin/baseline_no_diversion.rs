//! §5.1 baseline: replica and file diversion disabled (t_pri = 1,
//! t_div = 0, no re-salting).
//!
//! Paper reference: 51.1% of insertions fail and final utilization is
//! only 60.8%, demonstrating the need for explicit storage management.

use past_bench::{print_table, storage_header, storage_row, web_trace, Scale};
use past_sim::{ExperimentConfig, Runner};

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "baseline: {} nodes, {} unique files",
        scale.nodes,
        trace.unique_files()
    );
    let cfg = ExperimentConfig {
        nodes: scale.nodes,
        ..Default::default()
    }
    .no_diversion();
    let result = Runner::build(cfg, &trace)
        .with_progress(past_bench::progress_logger("baseline"))
        .run(&trace);
    let rows = vec![storage_row("no diversion", &result)];
    print_table(
        "Baseline (replica+file diversion disabled) — paper: 51.1% fail, 60.8% util",
        &storage_header(),
        &rows,
    );
    past_bench::write_csv("baseline_no_diversion", &storage_header(), &rows);
}
