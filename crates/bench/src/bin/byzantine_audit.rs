//! Byzantine fault tolerance: residual corruption and detection latency
//! across a malicious-fraction sweep, with the audit defense on vs off.
//!
//! For each fraction in {0%, 5%, 10%, 20%} the same seeded overlay is
//! run twice: once undefended and once with the full defense stack
//! (periodic sampled possession audits, lookup content verification,
//! reliability tracking, routing-table demotion). Each run inserts the
//! working set, flips the sampled adversaries on (the behavior mix from
//! `ChurnRunner::byzantine_plan`: content corrupters, replica droppers,
//! ack-then-discarders, free-space liars), serves a detection window,
//! and then measures the residual corrupted-lookup rate over a final
//! lookup round. Results go to stdout, `results/byzantine_audit.csv`,
//! and `BENCH_byzantine.json`.
//!
//! The overlay is sized so every node sees every other through its leaf
//! set: shunning a convicted holder then reroutes around it in one hop,
//! which is what lets the defended runs reach zero residual corruption.
//!
//! Environment knobs: `PAST_BYZ_NODES` (default 16), `PAST_BYZ_FILES`
//! (default 6), `PAST_BYZ_SEED` (default 39), and `PAST_BYZ_SMOKE=1` to
//! run only the 10% fraction (the CI smoke gate).

use std::io::Write as _;

use past_net::SimDuration;
use past_sim::{ChurnConfig, ChurnRunner};

use past_bench::{artifact_path, print_table, write_csv};

struct Row {
    fraction: f64,
    audits: bool,
    malicious: usize,
    lookups: usize,
    lookups_ok: usize,
    corrupted: u64,
    detection_latency_s: Option<f64>,
    challenges: u64,
    passed: u64,
    failed: u64,
    timeouts: u64,
    shunned: usize,
    replicas_on_malicious: usize,
    under_replicated: usize,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(nodes: usize, files: usize, seed: u64, fraction: f64, audits: bool) -> Row {
    let mut cfg = ChurnConfig {
        nodes,
        files,
        seed,
        ..Default::default()
    };
    if audits {
        cfg.past.audit_period = SimDuration::from_secs(10);
        cfg.past.audit_timeout = SimDuration::from_secs(2);
        cfg.past.verify_lookup_content = true;
        cfg.pastry.track_reliability = true;
        cfg.pastry.demote_unreliable = true;
    }
    let mut r = ChurnRunner::build(cfg);
    let inserted = r.insert_files();
    assert!(inserted > 0, "no insert succeeded before the adversary");

    let plan = r.byzantine_plan(fraction);
    r.apply_byzantine(&plan);

    // Detection window: audits sweep, convict and repair while the
    // overlay idles, then the residual rate is measured over a final
    // lookup round (40 lookups spaced 1 s apart).
    r.run_for(SimDuration::from_secs(120));
    r.discard_upcalls();
    r.lookup_round(40, SimDuration::from_secs(1));

    let (lookups, lookups_ok) = r.lookup_totals();
    let (challenges, passed, failed, timeouts) = r.audit_totals();
    let shunned: usize = r
        .entries()
        .iter()
        .filter_map(|e| r.engine().node(e.addr))
        .map(|n| n.shunned().len())
        .sum();
    let report = r.audit();
    Row {
        fraction,
        audits,
        malicious: r.malicious().len(),
        lookups,
        lookups_ok,
        corrupted: r.corrupted_lookups(),
        detection_latency_s: r.detection_latency().map(|d| d.micros() as f64 / 1e6),
        challenges,
        passed,
        failed,
        timeouts,
        shunned,
        replicas_on_malicious: report.replicas_on_malicious,
        under_replicated: report.under_replicated.len(),
    }
}

fn main() {
    let nodes = env_u64("PAST_BYZ_NODES", 16) as usize;
    let files = env_u64("PAST_BYZ_FILES", 6) as usize;
    let seed = env_u64("PAST_BYZ_SEED", 39);
    let smoke = env_u64("PAST_BYZ_SMOKE", 0) != 0;
    let fractions: &[f64] = if smoke {
        &[0.10]
    } else {
        &[0.0, 0.05, 0.10, 0.20]
    };

    let mut rows = Vec::new();
    for &fraction in fractions {
        for &audits in &[false, true] {
            let mode = if audits { "audits" } else { "undefended" };
            eprintln!("byzantine cell: fraction={fraction:.2} mode={mode} ...");
            rows.push(run(nodes, files, seed, fraction, audits));
        }
    }

    let header: Vec<String> = [
        "malicious",
        "mode",
        "lookup ok",
        "corrupted",
        "detect (s)",
        "challenges",
        "pass/fail/timeout",
        "shunned",
        "replicas on mal",
        "under-rep",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}% ({})", r.fraction * 100.0, r.malicious),
                if r.audits { "audits" } else { "undefended" }.to_string(),
                format!("{}/{}", r.lookups_ok, r.lookups),
                r.corrupted.to_string(),
                r.detection_latency_s
                    .map(|s| format!("{s:.1}"))
                    .unwrap_or_else(|| "-".into()),
                r.challenges.to_string(),
                format!("{}/{}/{}", r.passed, r.failed, r.timeouts),
                r.shunned.to_string(),
                r.replicas_on_malicious.to_string(),
                r.under_replicated.to_string(),
            ]
        })
        .collect();
    print_table("Byzantine faults: residual corruption vs audits", &header, &table);
    write_csv("byzantine_audit", &header, &table);

    // Hand-rolled JSON (the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"byzantine_audit\",\n");
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"files\": {files},\n  \"seed\": {seed},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let residual_rate = if r.lookups > 0 {
            r.corrupted as f64 / r.lookups as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"fraction\": {:.2}, \"audits\": {}, \"malicious\": {}, \
             \"lookups\": {}, \"lookups_ok\": {}, \"corrupted_lookups\": {}, \
             \"residual_corruption_rate\": {:.4}, \"detection_latency_s\": {}, \
             \"challenges\": {}, \"passed\": {}, \"failed\": {}, \"timeouts\": {}, \
             \"shunned\": {}, \"replicas_on_malicious\": {}, \
             \"under_replicated\": {}}}{}\n",
            r.fraction,
            r.audits,
            r.malicious,
            r.lookups,
            r.lookups_ok,
            r.corrupted,
            residual_rate,
            r.detection_latency_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "null".into()),
            r.challenges,
            r.passed,
            r.failed,
            r.timeouts,
            r.shunned,
            r.replicas_on_malicious,
            r.under_replicated,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = artifact_path("BENCH_byzantine.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_byzantine.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_byzantine.json");
    eprintln!("wrote {}", path.display());
}
