//! Table 2: insert statistics and final utilization for node-capacity
//! distributions d1–d4 × leaf-set sizes {16, 32}, with t_pri = 0.1 and
//! t_div = 0.05 on the web-proxy workload.
//!
//! Paper reference values (l = 32): success 97.9–99.4%, file diversion
//! 3.1–4.1%, replica diversion 15.0–23.3%, utilization 98.1–99.3%.

use past_bench::{print_table, storage_header, storage_row, web_trace, Scale};
use past_sim::{ExperimentConfig, Runner};
use past_workload::CapacityDistribution;

fn main() {
    let scale = Scale::from_env();
    let trace = web_trace(scale);
    eprintln!(
        "table2: {} nodes, {} unique files ({} bytes)",
        scale.nodes,
        trace.unique_files(),
        trace.total_bytes()
    );
    let mut rows = Vec::new();
    for l in [16usize, 32] {
        for dist in CapacityDistribution::table1() {
            let label = format!("{} l={l}", dist.name);
            let cfg = ExperimentConfig {
                nodes: scale.nodes,
                leaf_set_size: l,
                capacity: dist,
                ..Default::default()
            };
            let runner =
                Runner::build(cfg, &trace).with_progress(past_bench::progress_logger("table2"));
            let result = runner.run(&trace);
            eprintln!("{label}: done in {:.1}s", result.wall_seconds);
            rows.push(storage_row(&label, &result));
        }
    }
    print_table(
        "Table 2: storage distributions x leaf-set size (t_pri=0.1, t_div=0.05)",
        &storage_header(),
        &rows,
    );
    past_bench::write_csv("table2", &storage_header(), &rows);
}
