//! Flash-crowd serving study: route-through cache absorption and the
//! cache-size frontier (ROADMAP item 5).
//!
//! A [`FlashCrowdConfig`] trace flips popularity mid-run — a handful of
//! previously cold files suddenly takes half the lookups — and the
//! sweep asks which replacement policy and cache budget hold the hot
//! node's served load flat as the crowd arrives. Policies: GreedyDual-
//! Size and LRU (the paper's §4.4 pair), popularity-proportional random
//! (the Sarshar–Roychowdhury cache rule, arXiv cs/0210010) and no
//! caching. The budget axis is the cache admission fraction `c` (the
//! share of a node's free space lookups may fill), the skew axis is the
//! post-flip Zipf parameter.
//!
//! Every run is open-loop (pipelined) with windowed time-series
//! metrics ([`ExperimentConfig::obs_window`]): per fixed sim-time
//! window the report records lookups completed, cache hits, hop sum
//! and the per-node served-load spread (total / distinct nodes / max),
//! so hit rate and load concentration can be charted *across* the flip.
//!
//! Output: `BENCH_flashcrowd.json` (committed baseline; honours
//! `PAST_OUT_DIR`) + `results/flash_crowd.csv`. Wall-clock time is
//! deliberately excluded from the JSON so reruns are byte-identical.
//!
//! Env knobs:
//! - `PAST_FC_SMOKE=1` — small fixed-seed sweep for CI: one budget ×
//!   one skew across all four policies, a smaller overlay, no XL
//!   section. Gates (nonzero GDS absorption, GDS hot-node peak below
//!   the no-cache row, engine-equality of the baseline block) hold at
//!   smoke scale too.
//! - `PAST_SHARDS` — run the frontier grid on the sharded engine with
//!   this shard count (default: legacy single-threaded engine).
//! - `PAST_OUT_DIR` — redirect both artifacts.

use std::io::Write as _;

use past_bench::{artifact_path, print_table, write_csv};
use past_net::SimDuration;
use past_sim::{ExperimentConfig, ExperimentResult, Runner, TopologyKind};
use past_store::CachePolicyKind;
use past_workload::{FlashCrowdConfig, WebTraceConfig};

/// Open-loop injection gap (matches the perf suite).
const PIPELINE_GAP: SimDuration = SimDuration::from_millis(2);

/// Windows across the whole replay: enough resolution to see the flip
/// without ballooning the committed artifact.
const WINDOWS_PER_RUN: u64 = 40;

/// Hit-rate threshold defining "the crowd is absorbed".
const ABSORB_THRESHOLD: f64 = 0.5;

fn policy_label(p: CachePolicyKind) -> &'static str {
    match p {
        CachePolicyKind::GreedyDualSize => "gds",
        CachePolicyKind::Lru => "lru",
        CachePolicyKind::PopularityRandom => "poprand",
        CachePolicyKind::None => "none",
    }
}

/// One window of one run, replay-relative.
struct WindowRow {
    /// Window start, seconds since replay start.
    t_s: f64,
    /// Lookups completed in the window.
    done: u64,
    /// ... of which answered from a cache.
    cached: u64,
    /// Sum of hop counts over the window's completions.
    hops: u64,
    /// Lookup answers served, summed over all nodes.
    served_total: u64,
    /// Distinct nodes that served at least one answer.
    served_nodes: u64,
    /// The busiest single node's served count (the hot node).
    served_max: u64,
}

/// One cell of the frontier: a full pipelined replay plus the derived
/// flash-crowd statistics.
struct Cell {
    policy: CachePolicyKind,
    budget: f64,
    alpha_after: f64,
    lookups_total: u64,
    lookups_ok: u64,
    /// Cache hit rate over all found lookups.
    hit_rate: f64,
    /// Cache hit rate over post-flip windows only.
    hit_rate_post: f64,
    /// Origin-replica load absorbed after the flip: the fraction of
    /// post-flip completions answered by caches instead of replicas.
    absorbed_post: f64,
    /// Busiest single node's served count in any post-flip window.
    hot_peak_post: u64,
    /// Peak post-flip load concentration: max over windows of
    /// (busiest node / mean served per serving node).
    spread_peak_post: f64,
    hops_mean: f64,
    hops_p50: u32,
    hops_p95: u32,
    /// Seconds from the flip until a window first reaches
    /// [`ABSORB_THRESHOLD`] cache-hit rate (None = never absorbed).
    time_to_absorb_s: Option<f64>,
    windows: Vec<WindowRow>,
}

/// Extracts the per-window rows and flash-crowd statistics from one
/// run's windowed series.
fn analyze(
    policy: CachePolicyKind,
    budget: f64,
    alpha_after: f64,
    result: &ExperimentResult,
    flip_index: usize,
) -> Cell {
    let series = result
        .windows
        .as_ref()
        .expect("flash_crowd runs always set obs_window");
    let width = series.width_us;
    let start = result.replay_start_us;
    let flip_us = start + flip_index as u64 * PIPELINE_GAP.micros();
    let flip_bucket = flip_us / width;
    let empty = std::collections::BTreeMap::new();
    let done = series.counters.get("past.win.lookup").unwrap_or(&empty);
    let cached = series
        .counters
        .get("past.win.lookup.cached")
        .unwrap_or(&empty);
    let hops = series.counters.get("past.win.lookup.hops").unwrap_or(&empty);
    let served = series.node_stats.get("past.win.served");

    // Union of bucket keys across the four series.
    let mut buckets: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    buckets.extend(done.keys().copied());
    if let Some(s) = served {
        buckets.extend(s.keys().copied());
    }
    let mut windows = Vec::with_capacity(buckets.len());
    let (mut post_done, mut post_cached) = (0u64, 0u64);
    let mut hot_peak_post = 0u64;
    let mut spread_peak_post = 0.0f64;
    let mut time_to_absorb_s = None;
    for &b in &buckets {
        let d = done.get(&b).copied().unwrap_or(0);
        let c = cached.get(&b).copied().unwrap_or(0);
        let h = hops.get(&b).copied().unwrap_or(0);
        let s = served.and_then(|s| s.get(&b).copied()).unwrap_or_default();
        if b >= flip_bucket {
            post_done += d;
            post_cached += c;
            hot_peak_post = hot_peak_post.max(s.max);
            if s.nodes > 0 {
                let mean = s.total as f64 / s.nodes as f64;
                spread_peak_post = spread_peak_post.max(s.max as f64 / mean);
            }
            if time_to_absorb_s.is_none() && d > 0 && c as f64 / d as f64 >= ABSORB_THRESHOLD {
                let t = (b * width).saturating_sub(flip_us);
                time_to_absorb_s = Some(t as f64 / 1e6);
            }
        }
        windows.push(WindowRow {
            t_s: (b * width).saturating_sub(start) as f64 / 1e6,
            done: d,
            cached: c,
            hops: h,
            served_total: s.total,
            served_nodes: s.nodes,
            served_max: s.max,
        });
    }

    let (all_done, all_cached) = (
        done.values().sum::<u64>(),
        cached.values().sum::<u64>(),
    );
    let mut hop_samples: Vec<u32> = result
        .lookups
        .iter()
        .filter(|r| r.found)
        .map(|r| r.hops)
        .collect();
    hop_samples.sort_unstable();
    let pct = |q: f64| -> u32 {
        if hop_samples.is_empty() {
            return 0;
        }
        hop_samples[((hop_samples.len() - 1) as f64 * q).round() as usize]
    };
    let hops_mean = if hop_samples.is_empty() {
        0.0
    } else {
        hop_samples.iter().map(|&h| h as u64).sum::<u64>() as f64 / hop_samples.len() as f64
    };
    let rate = |c: u64, d: u64| if d == 0 { 0.0 } else { c as f64 / d as f64 };
    Cell {
        policy,
        budget,
        alpha_after,
        lookups_total: result.lookups_total,
        lookups_ok: result.lookups_ok,
        hit_rate: rate(all_cached, all_done),
        hit_rate_post: rate(post_cached, post_done),
        absorbed_post: rate(post_cached, post_done),
        hot_peak_post,
        spread_peak_post,
        hops_mean,
        hops_p50: pct(0.50),
        hops_p95: pct(0.95),
        time_to_absorb_s,
        windows,
    }
}

/// Runs one frontier cell: pipelined flash-crowd replay with windowed
/// metrics on.
fn run_cell(
    nodes: usize,
    unique_files: usize,
    policy: CachePolicyKind,
    budget: f64,
    alpha_after: f64,
    shards: usize,
    seed: u64,
) -> Cell {
    let wl = FlashCrowdConfig {
        zipf_alpha_after: alpha_after,
        ..FlashCrowdConfig::default()
    }
    .with_unique_files(unique_files);
    let requests = wl.requests as u64;
    let trace = wl.stream();
    let window_us = (requests * PIPELINE_GAP.micros() / WINDOWS_PER_RUN).max(1_000_000);
    let cfg = ExperimentConfig {
        nodes,
        cache_policy: policy,
        cache_fraction: budget,
        replay_lookups: true,
        topology: TopologyKind::Clustered { clusters: 8 },
        seed,
        shards,
        obs_window: SimDuration(window_us),
        ..Default::default()
    };
    let label = format!(
        "fc_{}_c{budget}_a{alpha_after}",
        policy_label(policy)
    );
    eprintln!(
        "[flash_crowd] {label}: {nodes} nodes, {} files, {requests} requests, {shards} shards ...",
        wl.unique_files
    );
    let result = Runner::build(cfg, &trace)
        .with_metrics_quiet(&label, usize::MAX)
        .run_pipelined(&trace, PIPELINE_GAP);
    eprintln!(
        "[flash_crowd] {label}: {:.1}s wall, {} lookups ok",
        result.wall_seconds, result.lookups_ok
    );
    analyze(policy, budget, alpha_after, &result, wl.flip_index())
}

/// Counters that must be byte-identical across engines and shard
/// counts for a default-knob run (all flash-crowd knobs off).
#[derive(PartialEq, Eq, Clone)]
struct BaselineCounters {
    inserts_total: u64,
    inserts_ok: u64,
    lookups_total: u64,
    lookups_ok: u64,
    replicas_stored: u64,
    stored_bytes: u64,
}

/// One default-knob replay (web trace, default cache policy,
/// `obs_window` zero) on the requested engine. Per-op mode (`run`) is
/// the legacy-vs-sharded parity surface — the gated workload consumes
/// no simulator randomness, so both engines must agree exactly.
/// Pipelined mode is pinned shard-count-invariant (the engines differ
/// legitimately in open-loop event ordering).
fn baseline_run(nodes: usize, unique_files: usize, shards: usize, pipelined: bool) -> BaselineCounters {
    let trace = WebTraceConfig::default()
        .with_unique_files(unique_files)
        .generate();
    let cfg = ExperimentConfig {
        nodes,
        replay_lookups: true,
        cache_policy: CachePolicyKind::GreedyDualSize,
        topology: TopologyKind::Clustered { clusters: 8 },
        seed: 2002,
        shards,
        ..Default::default()
    };
    let runner = Runner::build(cfg, &trace);
    let result = if pipelined {
        runner.run_pipelined(&trace, PIPELINE_GAP)
    } else {
        runner.run(&trace)
    };
    BaselineCounters {
        inserts_total: result.inserts_total,
        inserts_ok: result.inserts_ok,
        lookups_total: result.lookups_total,
        lookups_ok: result.lookups_ok,
        replicas_stored: result.replicas_stored,
        stored_bytes: result.stored_bytes,
    }
}

fn cell_json(c: &Cell, with_windows: bool) -> String {
    let mut s = format!(
        "{{\"policy\": \"{}\", \"budget\": {:.2}, \"alpha_after\": {:.2}, \
         \"lookups_total\": {}, \"lookups_ok\": {}, \"hit_rate\": {:.4}, \
         \"hit_rate_post_flip\": {:.4}, \"absorbed_post_flip\": {:.4}, \
         \"hot_node_peak_post_flip\": {}, \"load_spread_peak_post_flip\": {:.2}, \
         \"hops_mean\": {:.3}, \"hops_p50\": {}, \"hops_p95\": {}, \
         \"time_to_absorb_s\": {}",
        policy_label(c.policy),
        c.budget,
        c.alpha_after,
        c.lookups_total,
        c.lookups_ok,
        c.hit_rate,
        c.hit_rate_post,
        c.absorbed_post,
        c.hot_peak_post,
        c.spread_peak_post,
        c.hops_mean,
        c.hops_p50,
        c.hops_p95,
        c.time_to_absorb_s
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "null".to_string()),
    );
    if with_windows {
        // Compact per-window rows:
        // [t_s, done, cached, hops_sum, served_total, served_nodes, served_max]
        s.push_str(", \"windows\": [");
        for (i, w) in c.windows.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "[{:.1}, {}, {}, {}, {}, {}, {}]",
                w.t_s, w.done, w.cached, w.hops, w.served_total, w.served_nodes, w.served_max
            ));
        }
        s.push(']');
    }
    s.push('}');
    s
}

fn cell_row(c: &Cell) -> Vec<String> {
    vec![
        policy_label(c.policy).to_string(),
        format!("{:.2}", c.budget),
        format!("{:.2}", c.alpha_after),
        c.lookups_ok.to_string(),
        format!("{:.4}", c.hit_rate),
        format!("{:.4}", c.hit_rate_post),
        c.hot_peak_post.to_string(),
        format!("{:.2}", c.spread_peak_post),
        format!("{:.3}", c.hops_mean),
        c.hops_p50.to_string(),
        c.hops_p95.to_string(),
        c.time_to_absorb_s
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "never".to_string()),
    ]
}

fn main() {
    let smoke = std::env::var_os("PAST_FC_SMOKE").is_some();
    let env_shards: usize = std::env::var("PAST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let (nodes, unique_files) = if smoke { (100, 2_000) } else { (2_000, 20_000) };
    let budgets: &[f64] = if smoke { &[1.0] } else { &[0.1, 0.5, 1.0] };
    let skews: &[f64] = if smoke { &[1.1] } else { &[0.7, 1.1] };
    let policies = [
        CachePolicyKind::GreedyDualSize,
        CachePolicyKind::Lru,
        CachePolicyKind::PopularityRandom,
        CachePolicyKind::None,
    ];

    // The frontier grid. `None` ignores the budget axis (nothing is
    // ever cached), so it runs once per skew at budget 1.0.
    let mut cells: Vec<Cell> = Vec::new();
    for &alpha_after in skews {
        for &policy in &policies {
            let cell_budgets: &[f64] = if policy == CachePolicyKind::None {
                &[1.0]
            } else {
                budgets
            };
            for &budget in cell_budgets {
                cells.push(run_cell(
                    nodes,
                    unique_files,
                    policy,
                    budget,
                    alpha_after,
                    env_shards,
                    0xf1a5,
                ));
            }
        }
    }

    // The headline scale: 10,000 nodes on the sharded engine, GDS
    // versus no caching — the "does route-through caching absorb a
    // flash crowd at scale" row. Skipped in the CI smoke.
    let mut xl_cells: Vec<Cell> = Vec::new();
    if !smoke {
        for policy in [CachePolicyKind::GreedyDualSize, CachePolicyKind::None] {
            xl_cells.push(run_cell(10_000, 100_000, policy, 1.0, 1.1, 8, 0xf1a5));
        }
    }

    // Engine-equality baseline: a default-knob run (web trace, no
    // obs_window, no new policy) must produce identical counters (a)
    // per-op on the legacy engine (twice — rerun determinism) and the
    // sharded engine at 1 and 2 shards (the engines agree exactly on
    // gated per-op workloads), and (b) pipelined across shard counts
    // (open-loop event ordering differs legitimately between engines,
    // so pipelined parity is per-engine — the PR-5 contract).
    let (b_nodes, b_files) = if smoke { (50, 1_200) } else { (60, 2_500) };
    eprintln!("[flash_crowd] baseline engine-equality block ({b_nodes} nodes, {b_files} files)");
    let baseline_runs = [
        ("legacy", 0usize, "per_op", baseline_run(b_nodes, b_files, 0, false)),
        ("legacy_rerun", 0, "per_op", baseline_run(b_nodes, b_files, 0, false)),
        ("sharded_1", 1, "per_op", baseline_run(b_nodes, b_files, 1, false)),
        ("sharded_2", 2, "per_op", baseline_run(b_nodes, b_files, 2, false)),
        ("pipelined_1", 1, "pipelined", baseline_run(b_nodes, b_files, 1, true)),
        ("pipelined_2", 2, "pipelined", baseline_run(b_nodes, b_files, 2, true)),
    ];
    let baseline_equal = baseline_runs
        .iter()
        .filter(|(_, _, mode, _)| *mode == "per_op")
        .all(|(_, _, _, c)| *c == baseline_runs[0].3)
        && baseline_runs[4].3 == baseline_runs[5].3;

    // Gates (also asserted by CI): GDS absorbs the flash crowd — its
    // hot node's served-load peak stays strictly below the no-cache
    // row's, and a nonzero share of post-flip load is absorbed.
    let find = |set: &[Cell], p: CachePolicyKind, a: f64| -> (u64, f64) {
        set.iter()
            .filter(|c| c.policy == p && (c.alpha_after - a).abs() < 1e-9 && c.budget >= 1.0 - 1e-9)
            .map(|c| (c.hot_peak_post, c.absorbed_post))
            .next()
            .unwrap_or((0, 0.0))
    };
    let skew = *skews.last().unwrap();
    let (gds_peak, gds_absorbed) = find(&cells, CachePolicyKind::GreedyDualSize, skew);
    let (none_peak, _) = find(&cells, CachePolicyKind::None, skew);
    let gds_absorbs = gds_absorbed > 0.0 && gds_peak < none_peak;
    eprintln!(
        "[flash_crowd] gate: gds absorbed {gds_absorbed:.3}, hot peak {gds_peak} vs no-cache {none_peak} -> {}",
        if gds_absorbs { "PASS" } else { "FAIL" }
    );

    // Table + CSV.
    let header: Vec<String> = [
        "policy",
        "budget",
        "alpha_after",
        "lookups_ok",
        "hit_rate",
        "hit_rate_post",
        "hot_peak_post",
        "spread_peak",
        "hops_mean",
        "hops_p50",
        "hops_p95",
        "absorb (s)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows: Vec<Vec<String>> = cells.iter().map(cell_row).collect();
    for c in &xl_cells {
        let mut row = cell_row(c);
        row[0] = format!("xl/{}", row[0]);
        rows.push(row);
    }
    print_table("flash_crowd: the cache-size frontier", &header, &rows);
    write_csv("flash_crowd", &header, &rows);

    // JSON artifact. Deterministic: no wall-clock anywhere.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"flash_crowd\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"pipeline_gap_us\": {},\n  \"absorb_threshold\": {ABSORB_THRESHOLD},\n",
        PIPELINE_GAP.micros()
    ));
    json.push_str(&format!(
        "  \"frontier\": {{\"nodes\": {nodes}, \"unique_files\": {unique_files}, \"shards\": {env_shards}, \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&cell_json(c, true));
        json.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]},\n");
    if xl_cells.is_empty() {
        json.push_str("  \"xl\": null,\n");
    } else {
        json.push_str("  \"xl\": {\"nodes\": 10000, \"unique_files\": 100000, \"shards\": 8, \"cells\": [\n");
        for (i, c) in xl_cells.iter().enumerate() {
            json.push_str("    ");
            json.push_str(&cell_json(c, true));
            json.push_str(if i + 1 == xl_cells.len() { "\n" } else { ",\n" });
        }
        json.push_str("  ]},\n");
    }
    json.push_str(&format!(
        "  \"baseline\": {{\"nodes\": {b_nodes}, \"unique_files\": {b_files}, \"all_equal\": {baseline_equal}, \"runs\": [\n"
    ));
    for (i, (label, shards, mode, c)) in baseline_runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{label}\", \"shards\": {shards}, \"mode\": \"{mode}\", \
             \"inserts_total\": {}, \
             \"inserts_ok\": {}, \"lookups_total\": {}, \"lookups_ok\": {}, \
             \"replicas_stored\": {}, \"stored_bytes\": {}}}{}\n",
            c.inserts_total,
            c.inserts_ok,
            c.lookups_total,
            c.lookups_ok,
            c.replicas_stored,
            c.stored_bytes,
            if i + 1 == baseline_runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"gates\": {{\"gds_absorbed_post_flip\": {gds_absorbed:.4}, \"gds_hot_peak\": {gds_peak}, \
         \"none_hot_peak\": {none_peak}, \"gds_absorbs\": {gds_absorbs}}}\n"
    ));
    json.push_str("}\n");

    let path = artifact_path("BENCH_flashcrowd.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_flashcrowd.json");
    f.write_all(json.as_bytes()).expect("write BENCH_flashcrowd.json");
    eprintln!("wrote {}", path.display());

    assert!(baseline_equal, "engine-equality baseline diverged");
    assert!(gds_absorbs, "GDS failed to absorb the flash crowd");
}
