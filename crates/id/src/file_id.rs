//! The 160-bit file identifier.

use std::fmt;


use crate::node_id::NodeId;

/// Number of bytes in a [`FileId`] (160 bits, the width of a SHA-1 digest).
pub const FILE_ID_BYTES: usize = 20;

/// A quasi-unique 160-bit file identifier.
///
/// PAST computes the fileId as the SHA-1 hash of the file's textual name,
/// the owner's public key, and a randomly chosen salt (the salt is re-drawn
/// on *file diversion*, which re-routes an insert to a different part of
/// the namespace). Files are immutable: a file cannot be inserted twice
/// under the same fileId.
///
/// Only the 128 most significant bits participate in routing; they form
/// the [`NodeId`]-typed key returned by [`FileId::as_key`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId([u8; FILE_ID_BYTES]);

impl FileId {
    /// Creates a file identifier from 20 big-endian bytes.
    pub const fn from_bytes(bytes: [u8; FILE_ID_BYTES]) -> Self {
        FileId(bytes)
    }

    /// Returns the identifier's bytes.
    pub const fn as_bytes(&self) -> &[u8; FILE_ID_BYTES] {
        &self.0
    }

    /// Returns the 128 most significant bits as the routing key.
    ///
    /// PAST's storage invariant is defined on this key: the file's `k`
    /// replicas live on the `k` nodes whose nodeIds are numerically
    /// closest to it.
    pub fn as_key(&self) -> NodeId {
        let mut msb = [0u8; 16];
        msb.copy_from_slice(&self.0[..16]);
        NodeId::from_bytes(msb)
    }

    /// Builds a file id whose 128 msbs equal `key` and whose low 32 bits
    /// are `suffix`; handy for tests that need a file targeting an exact
    /// region of the namespace.
    pub fn from_key(key: NodeId, suffix: u32) -> Self {
        let mut bytes = [0u8; FILE_ID_BYTES];
        bytes[..16].copy_from_slice(&key.to_bytes());
        bytes[16..].copy_from_slice(&suffix.to_be_bytes());
        FileId(bytes)
    }
}

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileId(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn key_takes_high_128_bits() {
        let mut bytes = [0u8; FILE_ID_BYTES];
        bytes[0] = 0xab;
        bytes[15] = 0xcd;
        bytes[16] = 0xff; // Must not influence the key.
        let id = FileId::from_bytes(bytes);
        let key = id.as_key();
        assert_eq!(key.to_bytes()[0], 0xab);
        assert_eq!(key.to_bytes()[15], 0xcd);
    }

    #[test]
    fn from_key_roundtrips() {
        let key = NodeId::from_u128(0xdead_beef);
        let id = FileId::from_key(key, 7);
        assert_eq!(id.as_key(), key);
        assert_eq!(&id.as_bytes()[16..], &7u32.to_be_bytes());
    }

    #[test]
    fn display_is_hex() {
        let id = FileId::from_bytes([0u8; FILE_ID_BYTES]);
        assert_eq!(id.to_string().len(), 40);
        assert!(id.to_string().chars().all(|c| c == '0'));
    }

    proptest! {
        #[test]
        fn prop_from_key_preserves_key(raw: u128, suffix: u32) {
            let key = NodeId::from_u128(raw);
            prop_assert_eq!(FileId::from_key(key, suffix).as_key(), key);
        }

        #[test]
        fn prop_byte_roundtrip(bytes: [u8; FILE_ID_BYTES]) {
            let id = FileId::from_bytes(bytes);
            prop_assert_eq!(id.as_bytes(), &bytes);
        }
    }
}
