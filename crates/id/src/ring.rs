//! Distance helpers on the circular 128-bit namespace.

/// Clockwise distance from `a` to `b`: how far one must travel in the
/// direction of increasing identifiers (wrapping at 2^128) to reach `b`.
pub fn cw_distance(a: u128, b: u128) -> u128 {
    b.wrapping_sub(a)
}

/// Counter-clockwise distance from `a` to `b`.
pub fn ccw_distance(a: u128, b: u128) -> u128 {
    a.wrapping_sub(b)
}

/// Absolute ring distance: the shorter of the two ways around.
pub fn ring_distance(a: u128, b: u128) -> u128 {
    let cw = cw_distance(a, b);
    let ccw = ccw_distance(a, b);
    cw.min(ccw)
}

/// Total order on ids by their distance to a fixed key, tie-broken by the
/// raw id value.
///
/// Sorting a slice of ids with [`RingOrd::cmp_by_distance`] puts the
/// numerically closest id to `key` first — exactly the order in which PAST
/// selects the `k` replica holders for a file.
#[derive(Clone, Copy, Debug)]
pub struct RingOrd {
    key: u128,
}

impl RingOrd {
    /// Creates an ordering centered on `key`.
    pub fn new(key: u128) -> Self {
        RingOrd { key }
    }

    /// Compares two ids by distance to the key.
    pub fn cmp_by_distance(&self, a: u128, b: u128) -> std::cmp::Ordering {
        let da = ring_distance(a, self.key);
        let db = ring_distance(b, self.key);
        da.cmp(&db).then(a.cmp(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cw_distance_simple() {
        assert_eq!(cw_distance(3, 10), 7);
        assert_eq!(cw_distance(10, 3), u128::MAX - 6);
    }

    #[test]
    fn ring_ord_sorts_by_closeness() {
        let ord = RingOrd::new(100);
        let mut ids = vec![0u128, 90, 105, 100, 250];
        ids.sort_by(|a, b| ord.cmp_by_distance(*a, *b));
        assert_eq!(ids, vec![100, 105, 90, 0, 250]);
    }

    #[test]
    fn ring_ord_wraps() {
        let ord = RingOrd::new(u128::MAX);
        let mut ids = vec![0u128, u128::MAX - 3, 5];
        ids.sort_by(|a, b| ord.cmp_by_distance(*a, *b));
        assert_eq!(ids, vec![0, u128::MAX - 3, 5]);
    }

    proptest! {
        #[test]
        fn prop_ring_ord_is_total(key: u128, mut ids: Vec<u128>) {
            let ord = RingOrd::new(key);
            ids.sort_by(|a, b| ord.cmp_by_distance(*a, *b));
            for w in ids.windows(2) {
                let d0 = ring_distance(w[0], key);
                let d1 = ring_distance(w[1], key);
                prop_assert!(d0 < d1 || (d0 == d1 && w[0] <= w[1]));
            }
        }

        #[test]
        fn prop_triangle_inequality(a: u128, b: u128, c: u128) {
            // Ring distance is a metric on the circle.
            let ab = ring_distance(a, b);
            let bc = ring_distance(b, c);
            let ac = ring_distance(a, c);
            // Use saturating add: distances are < 2^127 so no overflow in u128.
            prop_assert!(ac <= ab.saturating_add(bc));
        }
    }
}
