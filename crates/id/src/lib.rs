//! Identifier arithmetic for the PAST/Pastry reproduction.
//!
//! PAST (Rowstron & Druschel, SOSP 2001) assigns every storage node a
//! 128-bit *nodeId* and every file a 160-bit *fileId*. NodeIds live on a
//! circular namespace ranging from 0 to 2^128 − 1; a file is stored on the
//! `k` nodes whose nodeIds are numerically closest to the 128 most
//! significant bits of its fileId.
//!
//! This crate provides:
//!
//! - [`NodeId`]: a point on the 128-bit circular namespace, with ring
//!   distance, numerical-closeness comparison, and base-2^b digit access
//!   (Pastry routes by resolving one base-2^b digit per hop).
//! - [`FileId`]: a 160-bit file identifier, convertible to the [`NodeId`]
//!   key formed from its 128 most significant bits.
//! - [`Digits`]: helpers for base-2^b digit manipulation shared by both.
//!
//! # Examples
//!
//! ```
//! use past_id::NodeId;
//!
//! let a = NodeId::from_u128(0x1000);
//! let b = NodeId::from_u128(0x1008);
//! assert_eq!(a.ring_distance(b), 8);
//! // With b = 4 (hex digits), the two ids share 31 of their 32 digits.
//! assert_eq!(a.shared_prefix_digits(b, 4), 31);
//! ```

mod digits;
mod file_id;
mod hash;
mod node_id;
mod ring;

pub use digits::Digits;
pub use file_id::{FileId, FILE_ID_BYTES};
pub use hash::{IdHashMap, IdHashSet, IdHasher};
pub use node_id::{NodeId, NODE_ID_BITS, NODE_ID_BYTES};
pub use ring::{ccw_distance, cw_distance, ring_distance, RingOrd};
