//! The 128-bit node identifier.

use std::fmt;

use rand::Rng;

use crate::digits::Digits;
use crate::ring;

/// Number of bits in a [`NodeId`].
pub const NODE_ID_BITS: u32 = 128;

/// Number of bytes in a [`NodeId`].
pub const NODE_ID_BYTES: usize = 16;

/// A 128-bit identifier on the circular Pastry namespace.
///
/// The namespace ranges from 0 to 2^128 − 1 and wraps around; all distance
/// computations are performed modulo 2^128. NodeIds are assigned
/// quasi-randomly (the paper uses the SHA-1 hash of the node's public key)
/// so that adjacent nodeIds are diverse in geography, ownership and
/// jurisdiction.
///
/// `NodeId` is also used as the *routing key* derived from a file
/// identifier: PAST stores a file on the `k` nodes whose nodeIds are
/// numerically closest to the 128 most significant bits of the fileId
/// (see [`crate::FileId::as_key`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u128);

impl NodeId {
    /// The smallest identifier (all zero bits).
    pub const MIN: NodeId = NodeId(0);

    /// The largest identifier (all one bits).
    pub const MAX: NodeId = NodeId(u128::MAX);

    /// Creates an identifier from a raw 128-bit value.
    pub const fn from_u128(raw: u128) -> Self {
        NodeId(raw)
    }

    /// Returns the raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Creates an identifier from 16 big-endian bytes.
    pub fn from_bytes(bytes: [u8; NODE_ID_BYTES]) -> Self {
        NodeId(u128::from_be_bytes(bytes))
    }

    /// Returns the identifier as 16 big-endian bytes.
    pub fn to_bytes(self) -> [u8; NODE_ID_BYTES] {
        self.0.to_be_bytes()
    }

    /// Draws a uniformly distributed identifier from `rng`.
    ///
    /// The paper relies on nodeIds and fileIds being uniformly distributed
    /// in their domains; that property makes the number of files per node
    /// roughly balanced before any explicit load balancing.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        NodeId(rng.gen())
    }

    /// Returns the absolute distance to `other` on the ring (the shorter
    /// way around).
    pub fn ring_distance(self, other: NodeId) -> u128 {
        ring::ring_distance(self.0, other.0)
    }

    /// Returns the clockwise (increasing id, wrapping) distance to `other`.
    pub fn cw_distance(self, other: NodeId) -> u128 {
        ring::cw_distance(self.0, other.0)
    }

    /// Returns the counter-clockwise distance to `other`.
    pub fn ccw_distance(self, other: NodeId) -> u128 {
        ring::ccw_distance(self.0, other.0)
    }

    /// Returns `true` if `self` is numerically closer to `key` than
    /// `other` is, breaking exact ties toward the smaller raw id so that
    /// closeness induces a total order.
    pub fn closer_to(self, key: NodeId, other: NodeId) -> bool {
        let da = self.ring_distance(key);
        let db = other.ring_distance(key);
        da < db || (da == db && self.0 < other.0)
    }

    /// Extracts digit `index` (0 = most significant) in base 2^b.
    ///
    /// # Panics
    ///
    /// Panics if `b` is 0, larger than 32, does not divide 128, or if
    /// `index` is out of range for that base.
    pub fn digit(self, index: u32, b: u32) -> u32 {
        Digits::check_base(b);
        let count = NODE_ID_BITS / b;
        assert!(index < count, "digit index {index} out of range for b={b}");
        let shift = NODE_ID_BITS - (index + 1) * b;
        ((self.0 >> shift) & ((1u128 << b) - 1)) as u32
    }

    /// Number of base-2^b digits in an id.
    pub fn digit_count(b: u32) -> u32 {
        Digits::check_base(b);
        NODE_ID_BITS / b
    }

    /// Length of the common prefix with `other`, in base-2^b digits.
    pub fn shared_prefix_digits(self, other: NodeId, b: u32) -> u32 {
        Digits::check_base(b);
        let diff = self.0 ^ other.0;
        if diff == 0 {
            return NODE_ID_BITS / b;
        }
        diff.leading_zeros() / b
    }

    /// Returns a copy of `self` with digit `index` (base 2^b) replaced by
    /// `value`, useful for synthesizing routing-table probes and tests.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^b` or the index is out of range.
    pub fn with_digit(self, index: u32, b: u32, value: u32) -> NodeId {
        Digits::check_base(b);
        let count = NODE_ID_BITS / b;
        assert!(index < count, "digit index {index} out of range for b={b}");
        assert!(value < (1 << b), "digit value {value} out of range for b={b}");
        let shift = NODE_ID_BITS - (index + 1) * b;
        let mask = ((1u128 << b) - 1) << shift;
        NodeId((self.0 & !mask) | ((value as u128) << shift))
    }

    /// Formats the identifier as base-2^b digits (for diagnostics
    /// mirroring the paper's base-4 examples).
    pub fn to_digit_string(self, b: u32) -> String {
        Digits::check_base(b);
        let count = NODE_ID_BITS / b;
        let mut s = String::with_capacity(count as usize);
        for i in 0..count {
            let d = self.digit(i, b);
            if d < 10 {
                s.push((b'0' + d as u8) as char);
            } else {
                s.push((b'a' + (d - 10) as u8) as char);
            }
        }
        s
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:032x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl From<u128> for NodeId {
    fn from(raw: u128) -> Self {
        NodeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ring_distance_is_shorter_way_around() {
        let a = NodeId::from_u128(1);
        let b = NodeId::MAX;
        assert_eq!(a.ring_distance(b), 2);
        assert_eq!(b.ring_distance(a), 2);
    }

    #[test]
    fn ring_distance_to_self_is_zero() {
        let a = NodeId::from_u128(42);
        assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn cw_and_ccw_distances_wrap() {
        let a = NodeId::from_u128(10);
        let b = NodeId::from_u128(4);
        assert_eq!(a.cw_distance(b), u128::MAX - 5);
        assert_eq!(a.ccw_distance(b), 6);
    }

    #[test]
    fn digit_extraction_matches_hex() {
        let id = NodeId::from_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(id.digit(0, 4), 0x0);
        assert_eq!(id.digit(1, 4), 0x1);
        assert_eq!(id.digit(15, 4), 0xf);
        assert_eq!(id.digit(31, 4), 0xf);
    }

    #[test]
    fn digit_extraction_base2() {
        let id = NodeId::from_u128(1u128 << 127);
        assert_eq!(id.digit(0, 1), 1);
        assert_eq!(id.digit(1, 1), 0);
    }

    #[test]
    fn shared_prefix_digits_examples() {
        let a = NodeId::from_u128(0x1000);
        let b = NodeId::from_u128(0x1008);
        assert_eq!(a.shared_prefix_digits(b, 4), 31);
        assert_eq!(a.shared_prefix_digits(a, 4), 32);
        let c = NodeId::from_u128(1u128 << 127);
        assert_eq!(a.shared_prefix_digits(c, 4), 0);
    }

    #[test]
    fn with_digit_roundtrip() {
        let id = NodeId::from_u128(0);
        let id2 = id.with_digit(3, 4, 0xa);
        assert_eq!(id2.digit(3, 4), 0xa);
        assert_eq!(id2.digit(2, 4), 0);
        assert_eq!(id2.with_digit(3, 4, 0), id);
    }

    #[test]
    fn closer_to_is_total_on_ties() {
        let key = NodeId::from_u128(100);
        let a = NodeId::from_u128(95);
        let b = NodeId::from_u128(105);
        // Equal distance: the tie breaks toward the smaller raw id.
        assert!(a.closer_to(key, b));
        assert!(!b.closer_to(key, a));
    }

    #[test]
    fn digit_string_matches_paper_notation() {
        // The paper's example node 10233102 is base 4 over 16-bit ids; we
        // check our rendering over the high digits of a 128-bit id.
        let id = NodeId::from_u128(0x4e4d_2000_0000_0000_0000_0000_0000_0000);
        // 0x4e4d = 0b01_00_11_10_01_00_11_01 = digits 1,0,3,2,1,0,3,1 in base 4.
        let s = id.to_digit_string(2);
        assert!(s.starts_with("10321031"));
    }

    #[test]
    fn byte_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let id = NodeId::random(&mut rng);
            assert_eq!(NodeId::from_bytes(id.to_bytes()), id);
        }
    }

    #[test]
    #[should_panic]
    fn digit_index_out_of_range_panics() {
        NodeId::from_u128(0).digit(32, 4);
    }

    #[test]
    #[should_panic]
    fn bad_base_panics() {
        NodeId::from_u128(0).digit(0, 3);
    }

    proptest! {
        #[test]
        fn prop_ring_distance_symmetric(a: u128, b: u128) {
            let (a, b) = (NodeId::from_u128(a), NodeId::from_u128(b));
            prop_assert_eq!(a.ring_distance(b), b.ring_distance(a));
        }

        #[test]
        fn prop_ring_distance_at_most_half(a: u128, b: u128) {
            let (a, b) = (NodeId::from_u128(a), NodeId::from_u128(b));
            prop_assert!(a.ring_distance(b) <= 1u128 << 127);
        }

        #[test]
        fn prop_cw_plus_ccw_is_zero_mod_ring(a: u128, b: u128) {
            let (a, b) = (NodeId::from_u128(a), NodeId::from_u128(b));
            let cw = a.cw_distance(b);
            let ccw = a.ccw_distance(b);
            if a != b {
                prop_assert_eq!(cw.wrapping_add(ccw), 0u128);
            } else {
                prop_assert_eq!(cw, 0); prop_assert_eq!(ccw, 0);
            }
        }

        #[test]
        fn prop_shared_prefix_consistent_with_digits(a: u128, b: u128, bb in prop::sample::select(vec![1u32, 2, 4, 8])) {
            let (a, b) = (NodeId::from_u128(a), NodeId::from_u128(b));
            let p = a.shared_prefix_digits(b, bb);
            for i in 0..p {
                prop_assert_eq!(a.digit(i, bb), b.digit(i, bb));
            }
            if p < NodeId::digit_count(bb) {
                prop_assert_ne!(a.digit(p, bb), b.digit(p, bb));
            }
        }

        #[test]
        fn prop_digit_reassembly(a: u128, bb in prop::sample::select(vec![1u32, 2, 4, 8])) {
            let id = NodeId::from_u128(a);
            let mut acc: u128 = 0;
            for i in 0..NodeId::digit_count(bb) {
                acc = (acc << bb) | id.digit(i, bb) as u128;
            }
            prop_assert_eq!(acc, a);
        }

        #[test]
        fn prop_closer_to_antisymmetric(a: u128, b: u128, key: u128) {
            let (a, b, key) = (NodeId::from_u128(a), NodeId::from_u128(b), NodeId::from_u128(key));
            if a != b {
                prop_assert_ne!(a.closer_to(key, b), b.closer_to(key, a));
            }
        }
    }
}
