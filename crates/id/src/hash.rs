//! Fast deterministic hashing for identifier-keyed collections.
//!
//! NodeIds and fileIds are (truncated) SHA-1 outputs, already uniformly
//! distributed — running them through SipHash buys no collision
//! resistance and showed up as a double-digit share of replay profiles.
//! [`IdHasher`] is an FxHash-style word-folding hasher: a few
//! multiply/rotate instructions per 8-byte word, no per-map random
//! state. It is deterministic across runs, which this repo can afford
//! because no simulation output depends on map iteration order (batches
//! that cross the network are explicitly sorted before sending).
//!
//! Not DoS-resistant — for simulation-internal keys only, never for
//! keys an adversary could choose.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by identifiers, using [`IdHasher`].
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<IdHasher>>;
/// `HashSet` of identifiers, using [`IdHasher`].
pub type IdHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<IdHasher>>;

/// FxHash multiplier (64-bit golden-ratio-derived odd constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-folding hasher for identifier keys. See the module docs for
/// the determinism and threat-model caveats.
#[derive(Default)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
            // Zero padding alone would collide [0; 9] with [0; 16];
            // binding the length keeps raw `write` calls sound.
            self.fold(bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = IdHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        let a = NodeId::from_u128(0xdead_beef);
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&NodeId::from_u128(0xdead_beee)));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_slices_bind_every_byte_and_length() {
        let mut h1 = IdHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = IdHasher::default();
        h2.write(&[1, 2, 4]);
        assert_ne!(h1.finish(), h2.finish());

        let mut h3 = IdHasher::default();
        h3.write(&[0; 9]);
        let mut h4 = IdHasher::default();
        h4.write(&[0; 16]);
        assert_ne!(h3.finish(), h4.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: IdHashMap<NodeId, u32> = IdHashMap::default();
        for i in 0..1000u32 {
            m.insert(NodeId::from_u128(i as u128), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&NodeId::from_u128(123)), Some(&123));
    }
}
