//! Base-2^b digit utilities shared by node and file identifiers.
//!
//! Pastry interprets identifiers as strings of digits with base 2^b
//! (b is a configuration parameter with typical value 4). Each routing
//! step resolves at least one more digit of the destination key.

/// Namespace for digit-base helpers.
pub struct Digits;

impl Digits {
    /// Valid digit bases: b must be in 1..=8 and divide 128 so that an id
    /// decomposes into a whole number of digits.
    pub const VALID_BASES: [u32; 4] = [1, 2, 4, 8];

    /// Panics unless `b` is a supported digit width.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not one of 1, 2, 4, 8.
    pub fn check_base(b: u32) {
        assert!(
            Self::VALID_BASES.contains(&b),
            "digit base b={b} unsupported (must be one of {:?})",
            Self::VALID_BASES
        );
    }

    /// Number of distinct digit values for width `b` (i.e. 2^b).
    pub fn radix(b: u32) -> u32 {
        Self::check_base(b);
        1 << b
    }

    /// Number of routing-table columns per row: 2^b − 1 (one per digit
    /// value other than the node's own digit at that row).
    pub fn columns(b: u32) -> u32 {
        Self::radix(b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_values() {
        assert_eq!(Digits::radix(1), 2);
        assert_eq!(Digits::radix(2), 4);
        assert_eq!(Digits::radix(4), 16);
        assert_eq!(Digits::radix(8), 256);
    }

    #[test]
    fn columns_is_radix_minus_one() {
        for b in Digits::VALID_BASES {
            assert_eq!(Digits::columns(b), Digits::radix(b) - 1);
        }
    }

    #[test]
    #[should_panic]
    fn base_zero_rejected() {
        Digits::check_base(0);
    }

    #[test]
    #[should_panic]
    fn base_three_rejected() {
        Digits::check_base(3);
    }
}
