//! Focused integration tests for the corners of §3.3–§3.5: pointer
//! chains under failures, reclaim of diverted files, fileId collisions,
//! hit-kind reporting, and background migration.

use past_core::{HitKind, PastConfig, PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::FileId;
use past_net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past_pastry::{NodeEntry, PastryConfig, PastryNode};
use past_store::CachePolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct World {
    sim: Simulator<PastOverlayNode>,
    entries: Vec<NodeEntry>,
    bounded: bool,
}

fn build(
    n: usize,
    seed: u64,
    past_cfg: &PastConfig,
    pastry_cfg: &PastryConfig,
    capacity: impl Fn(usize) -> u64,
) -> World {
    let mut seeder = StdRng::seed_from_u64(seed);
    let topo = EuclideanTopology::random(n, &mut seeder);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topo), seed);
    let mut entries = Vec::new();
    for i in 0..n {
        let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
        let id = past_crypto::derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let app = PastNode::new(past_cfg.clone(), keys, capacity(i), u64::MAX / 2);
        let bootstrap = (i > 0).then(|| Addr(seeder.gen_range(0..i) as u32));
        sim.add_node(addr, PastryNode::new(pastry_cfg.clone(), entry, app, bootstrap));
        if pastry_cfg.keep_alive_period.micros() == 0 {
            sim.run_until_idle();
        } else {
            sim.run_for(SimDuration::from_secs(1));
        }
        entries.push(entry);
    }
    let bounded = pastry_cfg.keep_alive_period.micros() > 0;
    World {
        sim,
        entries,
        bounded,
    }
}

impl World {
    fn settle(&mut self) {
        if self.bounded {
            self.sim.run_for(SimDuration::from_secs(10));
        } else {
            self.sim.run_until_idle();
        }
    }

    fn insert(&mut self, from: Addr, name: &str, size: u64) -> (Option<FileId>, Vec<PastEvent>) {
        let name = name.to_string();
        self.sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, size);
            });
        });
        self.settle();
        let events = self.events();
        let fid = events.iter().find_map(|e| match e {
            PastEvent::InsertDone {
                file_id,
                success: true,
                ..
            } => Some(*file_id),
            _ => None,
        });
        (fid, events)
    }

    fn lookup(&mut self, from: Addr, fid: FileId) -> Option<(u32, Option<HitKind>)> {
        self.sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.lookup(actx, fid);
            });
        });
        self.settle();
        self.events().iter().find_map(|e| match e {
            PastEvent::LookupDone {
                found: true,
                hops,
                kind,
                ..
            } => Some((*hops, *kind)),
            _ => None,
        })
    }

    fn events(&mut self) -> Vec<PastEvent> {
        self.sim
            .drain_upcalls()
            .into_iter()
            .map(|(_, _, e)| e)
            .collect()
    }

    fn holders(&self, fid: FileId) -> Vec<Addr> {
        self.entries
            .iter()
            .filter(|e| {
                self.sim.is_up(e.addr)
                    && self
                        .sim
                        .node(e.addr)
                        .map(|n| n.app().store().holds_replica(fid))
                        .unwrap_or(false)
            })
            .map(|e| e.addr)
            .collect()
    }

    fn pointer_owners(&self, fid: FileId) -> Vec<Addr> {
        self.entries
            .iter()
            .filter(|e| {
                self.sim
                    .node(e.addr)
                    .map(|n| n.app().store().pointers().any(|(id, _)| *id == fid))
                    .unwrap_or(false)
            })
            .map(|e| e.addr)
            .collect()
    }
}

fn static_cfg() -> (PastConfig, PastryConfig) {
    (
        PastConfig {
            cache_policy: CachePolicyKind::None,
            ..Default::default()
        },
        PastryConfig {
            leaf_set_size: 16,
            neighborhood_size: 16,
            keep_alive_period: SimDuration::ZERO,
            ..Default::default()
        },
    )
}

fn churn_cfg() -> (PastConfig, PastryConfig) {
    (
        PastConfig {
            cache_policy: CachePolicyKind::None,
            ..Default::default()
        },
        PastryConfig {
            leaf_set_size: 16,
            neighborhood_size: 16,
            keep_alive_period: SimDuration::from_secs(5),
            failure_timeout: SimDuration::from_secs(15),
            per_hop_acks: true,
            ..Default::default()
        },
    )
}

/// Forces replica diversion by making most nodes too small for the file
/// and returns a file that has at least one diverted replica.
fn insert_with_diversion(w: &mut World) -> (FileId, Vec<PastEvent>) {
    for i in 0..50 {
        let (fid, events) = w.insert(Addr(1), &format!("div{i}"), 30_000);
        if let Some(fid) = fid {
            // Check the world state, not the event stream: a
            // `diverted: true` store event may belong to an earlier,
            // aborted attempt whose replica was discarded again.
            let diverted = w.entries.iter().any(|e| {
                w.sim
                    .node(e.addr)
                    .map(|n| n.app().store().diverted_here().any(|(id, _)| *id == fid))
                    .unwrap_or(false)
            });
            if diverted {
                return (fid, events);
            }
        }
    }
    panic!("could not provoke a replica diversion");
}

fn diversion_world(seed: u64, cfgs: (PastConfig, PastryConfig)) -> World {
    build(40, seed, &cfgs.0, &cfgs.1, |i| {
        if i % 2 == 0 {
            120_000 // small: rejects 30 kB primaries (t_pri = 0.1)
        } else {
            40_000_000
        }
    })
}

#[test]
fn diverted_file_reclaims_cleanly() {
    let (p, r) = static_cfg();
    let mut w = diversion_world(61, (p, r));
    let (fid, _) = insert_with_diversion(&mut w);
    assert!(!w.pointer_owners(fid).is_empty(), "diversion leaves a pointer");
    // Owner reclaims; replicas, diverted replicas and pointers all go.
    w.sim.invoke(Addr(1), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.reclaim(actx, fid);
        });
    });
    w.settle();
    let ok = w
        .events()
        .iter()
        .any(|e| matches!(e, PastEvent::ReclaimDone { ok: true, .. }));
    assert!(ok, "reclaim of diverted file failed");
    assert!(w.holders(fid).is_empty(), "replicas must be dropped");
    assert!(
        w.pointer_owners(fid).is_empty(),
        "pointers must be cleaned up"
    );
}

#[test]
fn diverted_lookup_reports_extra_hop_kind() {
    let (p, r) = static_cfg();
    let mut w = diversion_world(62, (p, r));
    let (fid, _) = insert_with_diversion(&mut w);
    // Look up from many distinct nodes; at least one lookup should be
    // served through the pointer indirection (HitKind::Diverted).
    let mut kinds = Vec::new();
    for i in 0..40u32 {
        if let Some((_, kind)) = w.lookup(Addr(i), fid) {
            kinds.push(kind);
        }
    }
    assert!(!kinds.is_empty());
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, Some(HitKind::Diverted) | Some(HitKind::Primary))),
        "lookups must be served from replicas: {kinds:?}"
    );
}

#[test]
fn holder_failure_recreates_diverted_replica() {
    let (p, r) = churn_cfg();
    let mut w = diversion_world(63, (p, r));
    let (fid, _) = insert_with_diversion(&mut w);
    // Find the node B that holds a diverted replica.
    let b = *w
        .entries
        .iter()
        .find(|e| {
            w.sim
                .node(e.addr)
                .map(|n| {
                    n.app()
                        .store()
                        .diverted_here()
                        .any(|(id, _)| *id == fid)
                })
                .unwrap_or(false)
        })
        .expect("a diverted holder exists");
    w.sim.fail_node(b.addr);
    w.sim.run_for(SimDuration::from_secs(120));
    w.events();
    // §3.3 condition (1): failure of B causes a replacement replica.
    let live = w.holders(fid);
    assert!(
        live.len() >= 4,
        "replication collapsed after holder failure: {live:?}"
    );
    // The file stays retrievable.
    let found = (0..8u32).any(|i| w.lookup(Addr(30 + i % 9), fid).is_some());
    assert!(found, "file unreachable after holder failure");
}

#[test]
fn pointer_owner_failure_keeps_replica_reachable() {
    let (p, r) = churn_cfg();
    let mut w = diversion_world(64, (p, r));
    let (fid, _) = insert_with_diversion(&mut w);
    // Find node A (a pointer owner) and fail it: §3.3 condition (2) —
    // the backup pointer on C keeps the diverted replica reachable.
    let a = *w.pointer_owners(fid).first().expect("pointer owner exists");
    w.sim.fail_node(a);
    w.sim.run_for(SimDuration::from_secs(120));
    w.events();
    let found = (0..10u32)
        .filter(|i| Addr(*i) != a)
        .any(|i| w.lookup(Addr(i), fid).is_some());
    assert!(found, "diverted replica unreachable after A's failure");
}

#[test]
fn duplicate_insert_of_same_file_id_is_rejected() {
    let (p, r) = static_cfg();
    let mut w = build(30, 65, &p, &r, |_| 50_000_000);
    // Same name + same owner + same salt sequence ⇒ the same fileId on
    // the first attempt; the coordinator must reject the second insert
    // ("rare fileId collisions ... lead to the rejection of the later
    // inserted file"). The retries (different salts) also collide with
    // nothing, so attempt 1 fails but re-salts eventually succeed —
    // meaning the *collision* path shows up as attempts > 1.
    let (fid1, _) = w.insert(Addr(4), "same-name", 1_000);
    let fid1 = fid1.expect("first insert succeeds");
    let (fid2, events2) = w.insert(Addr(4), "same-name", 1_000);
    match fid2 {
        Some(fid2) => {
            assert_ne!(fid1, fid2, "second insert must land under a new fileId");
            let attempts = events2.iter().find_map(|e| match e {
                PastEvent::InsertDone { attempts, .. } => Some(*attempts),
                _ => None,
            });
            assert!(attempts.unwrap() > 1, "collision must cost an attempt");
        }
        None => {
            // Fully rejected is also acceptable behaviour.
        }
    }
}

#[test]
fn migration_moves_files_to_responsible_nodes() {
    let (mut p, r) = churn_cfg();
    p.migration_period = SimDuration::from_secs(20);
    p.migration_batch = 8;
    let mut w = build(25, 66, &p, &r, |_| 50_000_000);
    let mut fids = Vec::new();
    for i in 0..20 {
        if let (Some(fid), _) = w.insert(Addr(2), &format!("mig{i}"), 5_000) {
            fids.push(fid);
        }
    }
    // Run a long quiet period: the migration sweeps should not disturb
    // anything (steady state has nothing to migrate), and every file
    // stays retrievable.
    w.sim.run_for(SimDuration::from_secs(300));
    w.events();
    for fid in &fids {
        assert!(
            w.lookup(Addr(11), *fid).is_some(),
            "file lost during migration sweeps"
        );
        assert!(w.holders(*fid).len() >= 5, "replication dropped");
    }
}

#[test]
fn zero_byte_files_roundtrip() {
    let (p, r) = static_cfg();
    let mut w = build(25, 67, &p, &r, |_| 50_000_000);
    let (fid, _) = w.insert(Addr(0), "empty-file", 0);
    let fid = fid.expect("zero-byte insert succeeds (NLANR has them)");
    assert!(w.lookup(Addr(13), fid).is_some());
    assert_eq!(w.holders(fid).len(), 5);
}

#[test]
fn lookup_kind_cached_after_popularity() {
    let (mut p, r) = static_cfg();
    p.cache_policy = CachePolicyKind::GreedyDualSize;
    let mut w = build(40, 68, &p, &r, |_| 50_000_000);
    let (fid, _) = w.insert(Addr(5), "popular", 2_000);
    let fid = fid.expect("insert ok");
    let mut saw_cached = false;
    for round in 0..3 {
        for i in 0..20u32 {
            if let Some((_, kind)) = w.lookup(Addr(i), fid) {
                if round > 0 && matches!(kind, Some(HitKind::Cached)) {
                    saw_cached = true;
                }
            }
        }
    }
    assert!(saw_cached, "repeated lookups never hit a cache");
}
