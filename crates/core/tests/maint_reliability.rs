//! Reliable maintenance under message loss: inserts and lookups issued
//! over a lossy network eventually succeed thanks to client timeouts
//! (re-salt retries), per-hop routing retransmissions, and the acked
//! maintenance plane — and the retry counters reflect the work done.

use past_core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::FileId;
use past_net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past_pastry::{NodeEntry, PastryConfig, PastryNode};
use past_store::CachePolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(n: usize, seed: u64) -> (Simulator<PastOverlayNode>, Vec<NodeEntry>) {
    let past_cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        // Arm the client timeout so lost replies surface as retries
        // instead of hung operations.
        client_timeout: SimDuration::from_secs(5),
        ..Default::default()
    };
    let pastry_cfg = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        // Keep-alives stay off (the queue must drain), but per-hop acks
        // retransmit routed messages the lossy network eats.
        keep_alive_period: SimDuration::ZERO,
        per_hop_acks: true,
        ..Default::default()
    };
    let mut seeder = StdRng::seed_from_u64(seed);
    let topo = EuclideanTopology::random(n, &mut seeder);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topo), seed ^ 0x1055);
    let mut entries = Vec::new();
    for i in 0..n {
        let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
        let id = past_crypto::derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let app = PastNode::new(past_cfg.clone(), keys, 40_000_000, u64::MAX / 2);
        let bootstrap = if i == 0 {
            None
        } else {
            Some(Addr(seeder.gen_range(0..i) as u32))
        };
        sim.add_node(addr, PastryNode::new(pastry_cfg.clone(), entry, app, bootstrap));
        sim.run_until_idle();
        entries.push(entry);
    }
    sim.drain_upcalls();
    (sim, entries)
}

#[test]
fn inserts_and_lookups_survive_twenty_percent_loss() {
    let (mut sim, entries) = build(25, 42);
    // The overlay is built loss-free; the workload runs over a network
    // that drops one message in five.
    sim.set_loss_probability(0.2);

    // A single insert attempt needs ~2k+2 consecutive direct messages
    // to survive, so at 20% loss most protocol-level attempts fail; the
    // client timeout turns each failure into a clean retry. Each file
    // is re-submitted until it sticks.
    let mut stored: Vec<FileId> = Vec::new();
    let total = 6;
    let mut submissions = 0u32;
    for i in 0..total {
        let mut done = None;
        for round in 0..12 {
            let name = format!("lossy{i}.{round}");
            submissions += 1;
            sim.invoke(Addr(0), move |node, ctx| {
                node.invoke_app(ctx, |app, actx| {
                    app.insert(actx, &name, 20_000);
                });
            });
            sim.run_until_idle();
            for (_, _, ev) in sim.drain_upcalls() {
                if let PastEvent::InsertDone {
                    file_id,
                    success: true,
                    ..
                } = ev
                {
                    done = Some(file_id);
                }
            }
            if done.is_some() {
                break;
            }
        }
        let fid = done.unwrap_or_else(|| panic!("file {i} never inserted under 20% loss"));
        stored.push(fid);
    }
    assert!(
        submissions > total,
        "every insert succeeded first try — loss never bit"
    );

    // Lookups retry from different access points until the file is
    // found (a lost reply shows up as `found: false` after the client
    // timeout).
    let mut rng = StdRng::seed_from_u64(7);
    for &fid in &stored {
        let mut found = false;
        for _ in 0..6 {
            let from = entries[rng.gen_range(0..entries.len())].addr;
            sim.invoke(from, move |node, ctx| {
                node.invoke_app(ctx, |app, actx| {
                    app.lookup(actx, fid);
                });
            });
            sim.run_until_idle();
            found = sim.drain_upcalls().iter().any(|(_, _, ev)| {
                matches!(ev, PastEvent::LookupDone { found: true, .. })
            });
            if found {
                break;
            }
        }
        assert!(found, "file {fid} unreachable despite retries");
    }

    // The loss actually happened, and the recovery machinery carried
    // real traffic: the network dropped messages and the maintenance
    // plane retransmitted.
    assert!(sim.stats().lost > 0, "no message was ever lost at 20%");
    let maint_retries: u64 = entries
        .iter()
        .filter_map(|e| sim.node(e.addr))
        .map(|n| n.app().maint_stats().retries)
        .sum();
    assert!(
        maint_retries > 0,
        "20% loss must force maintenance retransmissions"
    );
    let maint_acked: u64 = entries
        .iter()
        .filter_map(|e| sim.node(e.addr))
        .map(|n| n.app().maint_stats().acked)
        .sum();
    assert!(maint_acked > 0, "maintenance acks never arrived");
}
