//! End-to-end PAST tests over the emulated network: insert/lookup/
//! reclaim, replica diversion, file diversion, caching and replica
//! maintenance under churn.

use past_core::{HitKind, PastConfig, PastEvent, PastNode, PastOverlayNode};
use past_crypto::{KeyPair, Scheme};
use past_id::{FileId, NodeId};
use past_net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past_pastry::{NodeEntry, PastryConfig, PastryNode};
use past_store::CachePolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Overlay {
    sim: Simulator<PastOverlayNode>,
    entries: Vec<NodeEntry>,
    /// With keep-alives armed the event queue never drains; bounded
    /// overlays settle by running a fixed window instead.
    bounded: bool,
}

fn pastry_cfg() -> PastryConfig {
    PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::ZERO,
        ..Default::default()
    }
}

fn build(n: usize, seed: u64, past_cfg: &PastConfig, capacity: impl Fn(usize) -> u64) -> Overlay {
    build_with_pastry(n, seed, past_cfg, &pastry_cfg(), capacity)
}

fn build_with_pastry(
    n: usize,
    seed: u64,
    past_cfg: &PastConfig,
    pastry: &PastryConfig,
    capacity: impl Fn(usize) -> u64,
) -> Overlay {
    let mut seeder = StdRng::seed_from_u64(seed);
    let topo = EuclideanTopology::random(n, &mut seeder);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topo), seed ^ 0x5a5a);
    let mut entries = Vec::new();
    for i in 0..n {
        let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
        let id = past_crypto::derive_node_id(&keys.public());
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let app = PastNode::new(past_cfg.clone(), keys, capacity(i), u64::MAX / 2);
        let bootstrap = if i == 0 {
            None
        } else {
            Some(Addr(seeder.gen_range(0..i) as u32))
        };
        sim.add_node(addr, PastryNode::new(pastry.clone(), entry, app, bootstrap));
        if pastry.keep_alive_period.micros() == 0 {
            sim.run_until_idle();
        } else {
            sim.run_for(SimDuration::from_secs(1));
        }
        entries.push(entry);
    }
    let bounded = pastry.keep_alive_period.micros() > 0;
    Overlay {
        sim,
        entries,
        bounded,
    }
}

impl Overlay {
    fn settle(&mut self) {
        if self.bounded {
            self.sim.run_for(SimDuration::from_secs(10));
        } else {
            self.sim.run_until_idle();
        }
    }

    fn insert(&mut self, from: Addr, name: &str, size: u64) -> Vec<PastEvent> {
        let name = name.to_string();
        self.sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, size);
            });
        });
        self.settle();
        self.events()
    }

    fn lookup(&mut self, from: Addr, file_id: FileId) -> Vec<PastEvent> {
        self.sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.lookup(actx, file_id);
            });
        });
        self.settle();
        self.events()
    }

    fn reclaim(&mut self, from: Addr, file_id: FileId) -> Vec<PastEvent> {
        self.sim.invoke(from, move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.reclaim(actx, file_id);
            });
        });
        self.settle();
        self.events()
    }

    fn events(&mut self) -> Vec<PastEvent> {
        self.sim
            .drain_upcalls()
            .into_iter()
            .map(|(_, _, e)| e)
            .collect()
    }

    fn replica_holders(&self, file_id: FileId) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|e| {
                self.sim
                    .node(e.addr)
                    .map(|n| n.app().store().holds_replica(file_id))
                    .unwrap_or(false)
            })
            .map(|e| e.id)
            .collect()
    }

    /// The paper's storage invariant, checked against ground truth: each
    /// of the k live nodes closest to the fileId holds the replica or a
    /// pointer to a live diverted replica.
    fn check_storage_invariant(&self, file_id: FileId, k: usize) -> Result<(), String> {
        let key = file_id.as_key();
        let mut live: Vec<NodeEntry> = self
            .entries
            .iter()
            .filter(|e| self.sim.is_up(e.addr))
            .copied()
            .collect();
        live.sort_by(|a, b| {
            a.id.ring_distance(key)
                .cmp(&b.id.ring_distance(key))
                .then(a.id.cmp(&b.id))
        });
        for e in live.iter().take(k) {
            let node = self.sim.node(e.addr).expect("live node");
            let store = node.app().store();
            let has = store.holds_replica(file_id)
                || store
                    .pointers()
                    .any(|(id, holder)| *id == file_id && self.holder_has(*holder, file_id));
            if !has {
                return Err(format!("node {} lacks replica/pointer", e.id));
            }
        }
        Ok(())
    }

    fn holder_has(&self, holder: NodeEntry, file_id: FileId) -> bool {
        self.sim
            .node(holder.addr)
            .map(|n| n.app().store().holds_replica(file_id))
            .unwrap_or(false)
    }
}

fn insert_done(events: &[PastEvent]) -> Option<(FileId, u32, bool)> {
    events.iter().find_map(|e| match e {
        PastEvent::InsertDone {
            file_id,
            attempts,
            success,
            ..
        } => Some((*file_id, *attempts, *success)),
        _ => None,
    })
}

fn lookup_done(events: &[PastEvent]) -> Option<(bool, u32, Option<HitKind>)> {
    events.iter().find_map(|e| match e {
        PastEvent::LookupDone {
            found, hops, kind, ..
        } => Some((*found, *hops, *kind)),
        _ => None,
    })
}

#[test]
fn insert_stores_k_replicas() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(30, 1, &cfg, |_| 50_000_000);
    let events = o.insert(Addr(3), "hello.txt", 10_000);
    let (fid, attempts, ok) = insert_done(&events).expect("insert completed");
    assert!(ok, "insert failed: {events:?}");
    assert_eq!(attempts, 1, "no file diversion expected");
    let stored = events
        .iter()
        .filter(|e| matches!(e, PastEvent::ReplicaStored { diverted: false, .. }))
        .count();
    assert_eq!(stored, 5, "k = 5 primary replicas");
    assert_eq!(o.replica_holders(fid).len(), 5);
    o.check_storage_invariant(fid, 5).unwrap();
}

#[test]
fn replicas_land_on_numerically_closest_nodes() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(40, 2, &cfg, |_| 50_000_000);
    let events = o.insert(Addr(0), "placement", 1_000);
    let (fid, _, ok) = insert_done(&events).unwrap();
    assert!(ok);
    let key = fid.as_key();
    let mut by_distance: Vec<NodeId> = o.entries.iter().map(|e| e.id).collect();
    by_distance.sort_by_key(|id| id.ring_distance(key));
    let holders = o.replica_holders(fid);
    // All 5 holders must be within the 7 ground-truth closest (leaf-set
    // views may differ slightly from ground truth at the margin).
    for h in &holders {
        let rank = by_distance.iter().position(|id| id == h).unwrap();
        assert!(rank < 7, "replica on distant node (rank {rank})");
    }
}

#[test]
fn lookup_finds_file_with_bounded_hops() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(40, 3, &cfg, |_| 50_000_000);
    let events = o.insert(Addr(7), "findme", 2_000);
    let (fid, _, ok) = insert_done(&events).unwrap();
    assert!(ok);
    for addr in [Addr(0), Addr(20), Addr(39)] {
        let events = o.lookup(addr, fid);
        let (found, hops, kind) = lookup_done(&events).expect("lookup completed");
        assert!(found, "file not found from {addr}");
        assert!(hops <= 4, "hops {hops} too high for N=40");
        assert!(kind.is_some());
    }
}

#[test]
fn lookup_missing_file_misses() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(25, 4, &cfg, |_| 50_000_000);
    let bogus = FileId::from_key(NodeId::from_u128(12345), 0);
    let events = o.lookup(Addr(5), bogus);
    let (found, _, kind) = lookup_done(&events).expect("lookup completed");
    assert!(!found);
    assert!(kind.is_none());
}

#[test]
fn reclaim_frees_replicas_and_quota() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(30, 5, &cfg, |_| 50_000_000);
    let events = o.insert(Addr(2), "temp.dat", 5_000);
    let (fid, _, ok) = insert_done(&events).unwrap();
    assert!(ok);
    let used_before = o.sim.node(Addr(2)).unwrap().app().quota().used();
    assert_eq!(used_before, 5 * 5_000);
    let events = o.reclaim(Addr(2), fid);
    let reclaimed = events.iter().any(
        |e| matches!(e, PastEvent::ReclaimDone { ok: true, freed, .. } if *freed == 25_000),
    );
    assert!(reclaimed, "reclaim failed: {events:?}");
    assert_eq!(o.replica_holders(fid).len(), 0, "all replicas dropped");
    assert_eq!(o.sim.node(Addr(2)).unwrap().app().quota().used(), 0);
    // Weak semantics: a subsequent lookup may fail (here, with no caches,
    // it must).
    let events = o.lookup(Addr(9), fid);
    assert!(!lookup_done(&events).unwrap().0);
}

#[test]
fn replica_diversion_engages_on_full_nodes() {
    // Nodes have small disks: with t_pri = 0.1 a 30 kB file needs
    // 300 kB free, which half the nodes lack.
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(40, 6, &cfg, |i| {
        if i % 2 == 0 {
            100_000 // Small: rejects 30 kB primaries.
        } else {
            10_000_000
        }
    });
    let mut diverted_total = 0;
    let mut inserted = Vec::new();
    for n in 0..20 {
        let events = o.insert(Addr(1), &format!("file{n}"), 30_000);
        if let Some((fid, _, true)) = insert_done(&events) {
            inserted.push(fid);
            diverted_total += events
                .iter()
                .filter(|e| matches!(e, PastEvent::ReplicaStored { diverted: true, .. }))
                .count();
        }
    }
    assert!(!inserted.is_empty(), "some inserts must succeed");
    assert!(
        diverted_total > 0,
        "replica diversion never engaged despite full nodes"
    );
    for fid in &inserted {
        o.check_storage_invariant(*fid, 5).unwrap();
        let events = o.lookup(Addr(30), *fid);
        assert!(lookup_done(&events).unwrap().0, "diverted file not found");
    }
}

#[test]
fn file_diversion_retries_and_fails_cleanly() {
    // Every node is tiny: a 50 kB file can never be stored anywhere
    // (t_pri = 0.1 of 100 kB = 10 kB), so all 4 attempts fail.
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut o = build(25, 7, &cfg, |_| 100_000);
    let events = o.insert(Addr(0), "too-big", 50_000);
    let (_, attempts, ok) = insert_done(&events).unwrap();
    assert!(!ok);
    assert_eq!(attempts, 4, "3 re-salts after the initial attempt");
    // Failed attempts must not leak replicas.
    let leaked: usize = o
        .entries
        .iter()
        .map(|e| o.sim.node(e.addr).unwrap().app().store().primary_count())
        .sum();
    assert_eq!(leaked, 0, "aborted inserts leaked replicas");
    // Quota was refunded.
    assert_eq!(o.sim.node(Addr(0)).unwrap().app().quota().used(), 0);
}

#[test]
fn quota_exhaustion_rejects_insert_locally() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let mut seeder = StdRng::seed_from_u64(8);
    let topo = EuclideanTopology::random(5, &mut seeder);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topo), 8);
    // One node with a 1000-byte quota.
    let keys = KeyPair::generate(Scheme::Keyed, &mut seeder);
    let id = past_crypto::derive_node_id(&keys.public());
    let app = PastNode::new(cfg.clone(), keys, 10_000_000, 1_000);
    sim.add_node(
        Addr(0),
        PastryNode::new(pastry_cfg(), NodeEntry::new(id, Addr(0)), app, None),
    );
    sim.run_until_idle();
    sim.invoke(Addr(0), |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            // 5 × 300 = 1500 > 1000: quota refuses before routing.
            app.insert(actx, "f", 300);
        });
    });
    sim.run_until_idle();
    let events: Vec<PastEvent> = sim.drain_upcalls().into_iter().map(|(_, _, e)| e).collect();
    assert!(events.iter().any(|e| matches!(
        e,
        PastEvent::InsertDone {
            success: false,
            attempts: 0,
            ..
        }
    )));
}

#[test]
fn caching_reduces_hops_for_popular_file() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::GreedyDualSize,
        ..Default::default()
    };
    let mut o = build(50, 9, &cfg, |_| 50_000_000);
    let events = o.insert(Addr(10), "hot", 4_000);
    let (fid, _, ok) = insert_done(&events).unwrap();
    assert!(ok);
    // Many lookups from many clients populate caches along the paths.
    let mut first_hops = Vec::new();
    let mut later_hops = Vec::new();
    for round in 0..3 {
        for i in 0..25u32 {
            let events = o.lookup(Addr(i), fid);
            let (found, hops, _) = lookup_done(&events).unwrap();
            assert!(found);
            if round == 0 {
                first_hops.push(hops);
            } else {
                later_hops.push(hops);
            }
        }
    }
    let avg = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len() as f64;
    assert!(
        avg(&later_hops) <= avg(&first_hops),
        "caching should not increase fetch distance (first {:.2}, later {:.2})",
        avg(&first_hops),
        avg(&later_hops)
    );
    // At least some later lookups must be served from caches.
    let cached_hits: usize = o
        .entries
        .iter()
        .map(|e| o.sim.node(e.addr).unwrap().app().store().cache().stats().0 as usize)
        .sum();
    assert!(cached_hits > 0, "no cache hits recorded");
}

#[test]
fn maintenance_restores_replicas_after_failure() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let pastry = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::from_secs(5),
        failure_timeout: SimDuration::from_secs(15),
        ..Default::default()
    };
    let mut o = build_with_pastry(30, 10, &cfg, &pastry, |_| 50_000_000);
    o.sim.run_for(SimDuration::from_secs(30));
    o.events();
    let all = o.insert(Addr(4), "durable", 8_000);
    let (fid, _, ok) = insert_done(&all).expect("insert completed");
    assert!(ok);
    let holders = o.replica_holders(fid);
    assert_eq!(holders.len(), 5);
    // Fail one replica holder.
    let victim = *o.entries.iter().find(|e| e.id == holders[0]).unwrap();
    o.sim.fail_node(victim.addr);
    // Let failure detection and §3.5 re-replication run.
    o.sim.run_for(SimDuration::from_secs(120));
    o.events();
    let live_holders: Vec<NodeId> = o
        .replica_holders(fid)
        .into_iter()
        .filter(|id| *id != victim.id)
        .collect();
    assert!(
        live_holders.len() >= 5,
        "replication not restored: {} live holders",
        live_holders.len()
    );
    o.check_storage_invariant(fid, 5).unwrap();
}

#[test]
fn settle_on_insert_is_deterministic() {
    let cfg = PastConfig {
        cache_policy: CachePolicyKind::None,
        ..Default::default()
    };
    let run = |seed| {
        let mut o = build(20, seed, &cfg, |_| 50_000_000);
        let events = o.insert(Addr(0), "det", 1_234);
        insert_done(&events).unwrap()
    };
    assert_eq!(run(42), run(42));
}
