//! The PAST node: a Pastry [`Application`] implementing the paper's
//! insert/lookup/reclaim operations, storage management (replica and
//! file diversion) and caching.


use past_crypto::{
    Digest, FileCertificate, KeyPair, QuotaLedger, ReclaimCertificate, SharedFileCert,
    SharedReceipt, SharedReclaimCert, VerifyMemo,
};
use past_id::{FileId, IdHashMap, NodeId};
use past_net::ByzantineBehavior;
use past_pastry::{AppCtx, Application, NodeEntry};
use past_store::{NodeStore, Resolution};

use crate::audit::{corrupted_proof, honest_proof, AuditBook, AuditStats, AuditVerdict};
use crate::config::PastConfig;
use crate::events::PastEvent;
use crate::messages::{HitKind, MsgKind, PastMsg, ReqId};
use crate::obs;

/// Context alias used by every PAST handler.
pub(crate) type PCtx<'a, 'b> = AppCtx<'a, 'b, PastMsg, PastEvent>;

/// Timer token for the background migration sweep.
pub(crate) const MIGRATION_TOKEN: u64 = 0;
/// Timer token for the anti-entropy sweep.
pub(crate) const ANTI_ENTROPY_TOKEN: u64 = 1;
/// Timer token for the sampled storage-audit sweep.
pub(crate) const AUDIT_SWEEP_TOKEN: u64 = 2;
/// Audit-challenge timeout tokens: `AUDIT_TIMEOUT_BASE + audit seq`
/// (the namespace spans up to `TIMEOUT_BASE`, far beyond any sim's
/// challenge count).
pub(crate) const AUDIT_TIMEOUT_BASE: u64 = 1 << 10;
/// Client timeout tokens: `TIMEOUT_BASE + seq`.
pub(crate) const TIMEOUT_BASE: u64 = 1 << 20;
/// Maintenance retransmission tokens: `MAINT_RETRY_BASE + maint seq`.
pub(crate) const MAINT_RETRY_BASE: u64 = 1 << 36;

/// A client operation awaiting completion.
#[derive(Clone, Debug)]
pub(crate) enum PendingOp {
    /// An insert, possibly across several salt attempts.
    Insert {
        /// File name (re-hashed on each re-salt).
        name: String,
        /// File size.
        size: u64,
        /// Attempts made so far (1-based once routed).
        attempts: u32,
        /// Certificate of the current attempt.
        cert: SharedFileCert,
    },
    /// A lookup.
    Lookup {
        /// The requested file.
        file_id: FileId,
        /// Re-routes issued after a corrupted answer (content
        /// verification mode only; capped at `k`).
        retries: u32,
    },
    /// A reclaim.
    Reclaim {
        /// The reclaimed file.
        file_id: FileId,
    },
}

/// Coordinator-side state for one insert attempt.
#[derive(Clone, Debug)]
pub(crate) struct InsertCoord {
    /// The fileId this coordinator is inserting. Re-salted attempts
    /// reuse the client's request seq, so results from an earlier
    /// attempt that raced to the same root must not be credited here.
    pub file_id: FileId,
    /// The replica set this coordinator selected.
    pub expected: Vec<NodeEntry>,
    /// Receipts collected so far.
    pub receipts: Vec<SharedReceipt>,
    /// Nodes that confirmed storage (for discards on abort).
    pub stored: Vec<NodeEntry>,
}

/// Node-A-side state for one pending replica diversion.
#[derive(Clone, Debug)]
pub(crate) struct PendingDiversion {
    /// The insert operation (`None` for §3.5 maintenance re-creation).
    pub req: Option<ReqId>,
    /// The certificate.
    pub cert: SharedFileCert,
    /// The coordinator expecting this node's ReplicateResult.
    pub coordinator: Option<NodeEntry>,
}

/// Counters for the reliable maintenance plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Maintenance messages sent (first transmissions).
    pub sent: u64,
    /// Retransmissions after a missed ack.
    pub retries: u64,
    /// Messages acknowledged by their receiver.
    pub acked: u64,
    /// Messages abandoned after the retry budget ran out.
    pub exhausted: u64,
    /// File bytes shipped to restore a lost replica (failure recovery
    /// and migration pulls). First transmissions only; retries are
    /// visible through `retries`.
    pub bytes_rereplication: u64,
    /// File bytes re-shipped by the anti-entropy sweep to refresh
    /// copies the receiver may already hold (including fetches answered
    /// for a warm-restart advertisement).
    pub bytes_refresh: u64,
}

/// An unacknowledged reliable maintenance message.
#[derive(Clone, Debug)]
pub(crate) struct PendingMaint {
    /// Destination.
    pub to: NodeEntry,
    /// The enveloped message, kept for retransmission.
    pub kind: MsgKind,
    /// Retransmissions so far.
    pub attempts: u32,
    /// Delay before the next retransmission (doubles each retry).
    pub backoff: past_net::SimDuration,
}

/// A PAST storage node (and client access point).
pub struct PastNode {
    pub(crate) cfg: PastConfig,
    /// The node's smartcard key pair (signs receipts; owns inserted
    /// files when this node acts as a client).
    pub(crate) keys: KeyPair,
    /// The local storage manager.
    pub(crate) store: NodeStore<NodeEntry>,
    /// Certificates backing A→B pointers (needed to re-create replicas
    /// when the holder fails).
    pub(crate) pointer_certs: IdHashMap<FileId, SharedFileCert>,
    /// Where the backup (C) pointer for each of our diversions lives.
    pub(crate) pointer_backup_at: IdHashMap<FileId, NodeEntry>,
    /// Certificates backing backup pointers held at this node (role C).
    pub(crate) backup_certs: IdHashMap<FileId, SharedFileCert>,
    /// Which diverting node (A) installed each backup pointer held
    /// here, so promotion happens only when that node fails.
    pub(crate) backup_owner: IdHashMap<FileId, NodeId>,
    /// Last known free space of other nodes (piggybacked on messages).
    pub(crate) free_info: IdHashMap<NodeId, u64>,
    /// Client storage quota.
    pub(crate) quota: QuotaLedger,
    /// Client-side sequence counter.
    pub(crate) next_seq: u64,
    /// Client-side pending operations, by sequence number.
    pub(crate) pending: IdHashMap<u64, PendingOp>,
    /// Coordinator state for in-flight insert attempts.
    pub(crate) coords: IdHashMap<(NodeId, u64), InsertCoord>,
    /// Node-A state for in-flight diversions, keyed by fileId.
    pub(crate) diversions: IdHashMap<FileId, PendingDiversion>,
    /// Unacked reliable maintenance messages, by maintenance seq.
    pub(crate) maint_pending: IdHashMap<u64, PendingMaint>,
    /// Next maintenance sequence number.
    pub(crate) next_maint_seq: u64,
    /// Reliable-maintenance counters.
    pub(crate) maint_stats: MaintStats,
    /// Resume point of the anti-entropy sweep (last fileId audited).
    pub(crate) anti_entropy_cursor: Option<FileId>,
    /// Memoized signature verifications (see [`VerifyMemo`]).
    pub(crate) verify_memo: VerifyMemo,
    /// This node's Byzantine strategy (all-false = honest).
    pub(crate) malice: ByzantineBehavior,
    /// Outstanding possession challenges this node issued as auditor.
    pub(crate) audits: AuditBook,
    /// Audit counters (auditor side).
    pub(crate) audit_stats: AuditStats,
    /// Resume point of the audit sweep (last fileId challenged).
    pub(crate) audit_cursor: Option<FileId>,
}

impl PastNode {
    /// Creates a PAST node with the given configuration, signing keys,
    /// advertised capacity (bytes) and client quota (bytes).
    pub fn new(cfg: PastConfig, keys: KeyPair, capacity: u64, quota: u64) -> Self {
        cfg.validate();
        let store = NodeStore::new(capacity, cfg.policy, cfg.cache_policy);
        let cap = cfg.verify_memo_capacity;
        PastNode {
            cfg,
            keys,
            store,
            pointer_certs: IdHashMap::default(),
            pointer_backup_at: IdHashMap::default(),
            backup_certs: IdHashMap::default(),
            backup_owner: IdHashMap::default(),
            free_info: IdHashMap::default(),
            quota: QuotaLedger::new(quota),
            next_seq: 0,
            pending: IdHashMap::default(),
            coords: IdHashMap::default(),
            diversions: IdHashMap::default(),
            maint_pending: IdHashMap::default(),
            next_maint_seq: 0,
            maint_stats: MaintStats::default(),
            anti_entropy_cursor: None,
            verify_memo: VerifyMemo::new(cap),
            malice: ByzantineBehavior::default(),
            audits: AuditBook::new(),
            audit_stats: AuditStats::default(),
            audit_cursor: None,
        }
    }

    /// Read access to the storage manager.
    pub fn store(&self) -> &NodeStore<NodeEntry> {
        &self.store
    }

    /// Read access to the client quota.
    pub fn quota(&self) -> &QuotaLedger {
        &self.quota
    }

    /// The node's configuration.
    pub fn config(&self) -> &PastConfig {
        &self.cfg
    }

    /// The node's public key.
    pub fn public_key(&self) -> past_crypto::PublicKey {
        self.keys.public()
    }

    /// Number of client operations still pending.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Counters for the reliable maintenance plane.
    pub fn maint_stats(&self) -> MaintStats {
        self.maint_stats
    }

    /// Number of maintenance messages still awaiting acknowledgement.
    pub fn maint_in_flight(&self) -> usize {
        self.maint_pending.len()
    }

    /// Files this node keeps an A→B pointer certificate for (should
    /// pair 1:1 with the store's pointers; the invariant auditor checks
    /// this).
    pub fn pointer_cert_ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.pointer_certs.keys().copied()
    }

    /// Files this node keeps a backup-pointer certificate for.
    pub fn backup_cert_ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.backup_certs.keys().copied()
    }

    /// This node's Byzantine strategy (all-false = honest).
    pub fn malice(&self) -> ByzantineBehavior {
        self.malice
    }

    /// Installs a Byzantine strategy (harness-driven fault injection).
    pub fn set_malice(&mut self, behavior: ByzantineBehavior) {
        self.malice = behavior;
    }

    /// Audit counters (auditor side).
    pub fn audit_stats(&self) -> AuditStats {
        self.audit_stats
    }

    /// Byzantine `drop_replicas`: silently discard every replica this
    /// node holds — no events, no discard cascade, no one told. Invoked
    /// by the harness when the strategy is switched on.
    pub fn malice_drop_replicas(&mut self) {
        let ids: Vec<FileId> = self.store.primaries().map(|(id, _)| *id).collect();
        for id in ids {
            self.store.remove_replica(id);
        }
    }

    /// Wraps a message body with the free-space piggyback. A node lying
    /// about its free space (`inflate_free`) advertises its whole
    /// capacity to attract replica diversions it then mistreats.
    pub(crate) fn msg(&self, kind: MsgKind) -> PastMsg {
        PastMsg {
            free: if self.malice.inflate_free {
                self.store.capacity()
            } else {
                self.store.free()
            },
            kind,
        }
    }

    /// Sends a PAST message directly to another node.
    pub(crate) fn send_to(&self, ctx: &mut PCtx<'_, '_>, to: NodeEntry, kind: MsgKind) {
        let m = self.msg(kind);
        ctx.send_app(to.addr, m);
    }

    /// Records a peer's advertised free space. Free-space info is only
    /// ever consulted for current leaf-set members (diversion targeting,
    /// §3.3), so advertisements from other correspondents — e.g. the
    /// random clients of routed requests — are dropped rather than
    /// growing the map to overlay size with entries nothing reads.
    pub(crate) fn note_free(&mut self, ctx: &PCtx<'_, '_>, node: NodeId, free: u64) {
        if ctx.pastry().leaf_set().contains(node) {
            self.free_info.insert(node, free);
        }
    }

    /// Storage-node certificate check: passes when verification is
    /// disabled, otherwise verifies through the node's memo so a
    /// certificate already verified here skips the signature math.
    pub(crate) fn cert_ok(&mut self, cert: &FileCertificate) -> bool {
        !self.cfg.verify_certificates
            || cert.verify_memo(None, &mut self.verify_memo).is_ok()
    }

    /// The node's signature-verification memo (hit/miss introspection
    /// for tests; the counters also flow through `past-obs`).
    pub fn verify_memo(&self) -> &VerifyMemo {
        &self.verify_memo
    }

    /// Starts a client timeout for `seq` if timeouts are enabled.
    pub(crate) fn arm_timeout(&self, ctx: &mut PCtx<'_, '_>, seq: u64) {
        if self.cfg.client_timeout.micros() > 0 {
            ctx.set_app_timer(self.cfg.client_timeout, TIMEOUT_BASE + seq);
        }
    }

    // ------------------------------------------------------------------
    // Client API (invoked by the harness via `PastryNode::invoke_app`).
    // ------------------------------------------------------------------

    /// Issues an insert of `size` bytes under `name`. Returns the
    /// client-local sequence number; completion arrives as
    /// [`PastEvent::InsertDone`].
    pub fn insert(&mut self, ctx: &mut PCtx<'_, '_>, name: &str, size: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if past_obs::is_enabled() {
            past_obs::counter("past.insert.started", 1);
            past_obs::span_start(
                obs::client_span(ctx.own().addr, seq),
                "insert",
                ctx.now().micros(),
            );
        }
        // "The required storage (file size times k) is debited against
        // the client's storage quota."
        if self.quota.debit(size.saturating_mul(self.cfg.k as u64)).is_err() {
            past_obs::span_end(
                obs::client_span(ctx.own().addr, seq),
                ctx.now().micros(),
                "quota_exhausted",
            );
            ctx.emit(PastEvent::InsertDone {
                seq,
                file_id: FileId::from_bytes([0u8; 20]),
                size,
                attempts: 0,
                success: false,
            });
            return seq;
        }
        let cert = SharedFileCert::new(self.issue_cert(ctx, name, size, 1));
        self.pending.insert(
            seq,
            PendingOp::Insert {
                name: name.to_string(),
                size,
                attempts: 1,
                cert: cert.clone(),
            },
        );
        self.route_insert(ctx, seq, cert);
        self.arm_timeout(ctx, seq);
        seq
    }

    /// Issues a lookup for `file_id`. Completion arrives as
    /// [`PastEvent::LookupDone`].
    pub fn lookup(&mut self, ctx: &mut PCtx<'_, '_>, file_id: FileId) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if past_obs::is_enabled() {
            past_obs::counter("past.lookup.started", 1);
            past_obs::span_start(
                obs::client_span(ctx.own().addr, seq),
                "lookup",
                ctx.now().micros(),
            );
        }
        // Check local storage first: a client that stores or caches the
        // file fetches it at zero routing hops.
        match self.store.resolve(file_id) {
            Resolution::Primary | Resolution::DivertedHere => {
                past_obs::span_end(
                    obs::client_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    "local_primary",
                );
                self.note_lookup_window(ctx, HitKind::Primary, 0);
                self.note_served_window(ctx);
                ctx.emit(PastEvent::LookupDone {
                    seq,
                    file_id,
                    found: true,
                    hops: 0,
                    kind: Some(HitKind::Primary),
                    corrupted: false,
                });
                return seq;
            }
            Resolution::Cached => {
                past_obs::span_end(
                    obs::client_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    "local_cached",
                );
                self.note_lookup_window(ctx, HitKind::Cached, 0);
                self.note_served_window(ctx);
                ctx.emit(PastEvent::LookupDone {
                    seq,
                    file_id,
                    found: true,
                    hops: 0,
                    kind: Some(HitKind::Cached),
                    corrupted: false,
                });
                return seq;
            }
            Resolution::Pointer(holder) => {
                let req = ReqId {
                    client: ctx.own(),
                    seq,
                };
                past_obs::span_event(
                    obs::req_span(&req),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    "local_pointer",
                    holder.addr.0 as i64,
                );
                self.pending
                    .insert(seq, PendingOp::Lookup { file_id, retries: 0 });
                self.send_to(
                    ctx,
                    holder,
                    MsgKind::FetchDiverted {
                        req,
                        file_id,
                        hops: 0,
                        path: Vec::new(),
                    },
                );
                self.arm_timeout(ctx, seq);
                return seq;
            }
            Resolution::Miss => {}
        }
        let req = ReqId {
            client: ctx.own(),
            seq,
        };
        self.pending
            .insert(seq, PendingOp::Lookup { file_id, retries: 0 });
        let m = self.msg(MsgKind::Lookup {
            req,
            file_id,
            path: Vec::new(),
        });
        ctx.route(file_id.as_key(), m);
        self.arm_timeout(ctx, seq);
        seq
    }

    /// Issues a reclaim for `file_id` (this node must be the file's
    /// owner). Completion arrives as [`PastEvent::ReclaimDone`].
    pub fn reclaim(&mut self, ctx: &mut PCtx<'_, '_>, file_id: FileId) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if past_obs::is_enabled() {
            past_obs::counter("past.reclaim.started", 1);
            past_obs::span_start(
                obs::client_span(ctx.own().addr, seq),
                "reclaim",
                ctx.now().micros(),
            );
        }
        let req = ReqId {
            client: ctx.own(),
            seq,
        };
        // Reclaim certificates are always signed: storage nodes verify
        // them regardless of `verify_certificates` (see `PastConfig`).
        let cert = SharedReclaimCert::new(ReclaimCertificate::issue(
            &self.keys,
            file_id,
            ctx.now().micros(),
            ctx.rng(),
        ));
        self.pending.insert(seq, PendingOp::Reclaim { file_id });
        let m = self.msg(MsgKind::Reclaim { req, cert });
        ctx.route(file_id.as_key(), m);
        self.arm_timeout(ctx, seq);
        seq
    }

    /// Issues the file certificate for an insert attempt. The salt is the
    /// attempt number, so each file diversion re-salts deterministically.
    pub(crate) fn issue_cert(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        name: &str,
        size: u64,
        attempt: u32,
    ) -> FileCertificate {
        let content_hash = past_crypto::Sha1::digest(name.as_bytes());
        if self.cfg.verify_certificates {
            FileCertificate::issue(
                &self.keys,
                name,
                content_hash,
                size,
                self.cfg.k,
                attempt as u64,
                ctx.now().micros(),
                ctx.rng(),
            )
        } else {
            // Signature skipped: unread when verification is off, and
            // the fileId/signed fields are identical either way.
            FileCertificate::issue_unsigned(
                &self.keys,
                name,
                content_hash,
                size,
                self.cfg.k,
                attempt as u64,
                ctx.now().micros(),
            )
        }
    }

    pub(crate) fn route_insert(&self, ctx: &mut PCtx<'_, '_>, seq: u64, cert: SharedFileCert) {
        let req = ReqId {
            client: ctx.own(),
            seq,
        };
        let key = cert.file_id.as_key();
        let m = self.msg(MsgKind::Insert { req, cert });
        ctx.route(key, m);
    }

    /// Handles a client timeout.
    fn on_timeout(&mut self, ctx: &mut PCtx<'_, '_>, seq: u64) {
        let op = match self.pending.remove(&seq) {
            Some(op) => op,
            None => return, // Completed before the timer fired.
        };
        match op {
            PendingOp::Insert {
                name,
                size,
                attempts,
                cert,
            } => {
                past_obs::span_event(
                    obs::client_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    "timeout",
                    attempts as i64,
                );
                // Treat like a failed attempt: re-salt or give up.
                self.retry_or_fail_insert(ctx, seq, name, size, attempts, cert);
            }
            PendingOp::Lookup { file_id, .. } => {
                if past_obs::is_enabled() {
                    past_obs::counter("past.lookup.timeout", 1);
                    past_obs::span_end(
                        obs::client_span(ctx.own().addr, seq),
                        ctx.now().micros(),
                        "timeout",
                    );
                }
                ctx.emit(PastEvent::LookupDone {
                    seq,
                    file_id,
                    found: false,
                    hops: 0,
                    kind: None,
                    corrupted: false,
                });
            }
            PendingOp::Reclaim { file_id } => {
                if past_obs::is_enabled() {
                    past_obs::counter("past.reclaim.timeout", 1);
                    past_obs::span_end(
                        obs::client_span(ctx.own().addr, seq),
                        ctx.now().micros(),
                        "timeout",
                    );
                }
                ctx.emit(PastEvent::ReclaimDone {
                    seq,
                    file_id,
                    ok: false,
                    freed: 0,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Sampled storage audits (LOCKSS-style defense layer).
    // ------------------------------------------------------------------

    /// One audit sweep: round-robin over this node's primaries (sorted,
    /// resuming at the cursor), challenging one sampled *other* replica
    /// holder per file to prove possession of the copy. Sampling and
    /// nonces are SHA-1-derived from stable identities and counters, so
    /// audits never consume any seeded RNG stream.
    pub(crate) fn audit_sweep(&mut self, ctx: &mut PCtx<'_, '_>) {
        let mut ids: Vec<FileId> = self.store.primaries().map(|(id, _)| *id).collect();
        if ids.is_empty() {
            return;
        }
        ids.sort();
        let start = match self.audit_cursor {
            Some(cursor) => ids.partition_point(|id| *id <= cursor) % ids.len(),
            None => 0,
        };
        let own = ctx.own();
        let own_id = own.id.to_bytes();
        let batch = self.cfg.audit_batch.min(ids.len());
        for i in 0..batch {
            let file_id = ids[(start + i) % ids.len()];
            self.audit_cursor = Some(file_id);
            let expected = match self.store.replica(file_id) {
                Some(r) => r.cert.content_hash,
                None => continue,
            };
            let candidates: Vec<NodeEntry> = ctx
                .replica_candidates(file_id.as_key(), self.cfg.k as usize)
                .into_iter()
                .filter(|e| e.id != own.id)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            // Sample the challenged holder by hashing (auditor, file)
            // with the running challenge count, so repeated audits of
            // the same file rotate across holders.
            let mut seed = Vec::with_capacity(own_id.len() + 20);
            seed.extend_from_slice(&own_id);
            seed.extend_from_slice(file_id.as_bytes());
            let pick = past_crypto::audit_nonce(&seed, self.audit_stats.challenges) as usize
                % candidates.len();
            // Cross-examination: challenge up to `audit_fanout`
            // *distinct* holders of this file in the same sweep, so
            // the AuditBook can record pass/fail disagreements
            // (partial corruption one sample cannot witness). The
            // default fanout of 1 reproduces the classic one-sample
            // audit exactly.
            let fanout = self.cfg.audit_fanout.max(1).min(candidates.len());
            for j in 0..fanout {
                let holder = candidates[(pick + j) % candidates.len()];
                let (seq, nonce) = self.audits.issue(
                    &own_id,
                    file_id,
                    expected,
                    holder,
                    ctx.now(),
                    &mut self.audit_stats,
                );
                past_obs::counter("past.audit.challenge", 1);
                self.send_to(
                    ctx,
                    holder,
                    MsgKind::AuditChallenge {
                        seq,
                        file_id,
                        nonce,
                        auditor: own,
                    },
                );
                ctx.set_app_timer(self.cfg.audit_timeout, AUDIT_TIMEOUT_BASE + seq);
            }
        }
    }

    /// Holder side of an audit challenge. An honest holder proves
    /// possession (or honestly confesses to not having the copy); a
    /// content-corrupting holder hashes the bytes it actually serves,
    /// which fail verification; a holder that silently dropped its
    /// replicas has nothing to prove and stays silent, letting the
    /// auditor's timeout convict it.
    fn on_audit_challenge(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        seq: u64,
        file_id: FileId,
        nonce: u64,
        auditor: NodeEntry,
    ) {
        let proof = match self.store.replica(file_id) {
            Some(r) if self.malice.corrupt_content => {
                Some(corrupted_proof(&r.cert.content_hash, nonce))
            }
            Some(r) => Some(honest_proof(&r.cert.content_hash, nonce)),
            None if self.malice.is_malicious() => return,
            None => None,
        };
        let holder = ctx.own();
        self.send_to(
            ctx,
            auditor,
            MsgKind::AuditProof {
                seq,
                file_id,
                proof,
                holder,
            },
        );
    }

    /// Auditor side of a returned possession proof. Failures demote the
    /// challenged holder: its peer score drops and the overlay shuns it
    /// (eviction from leaf set and routing table), which triggers
    /// re-replication through the normal neighbor-loss repair path.
    fn on_audit_proof(&mut self, ctx: &mut PCtx<'_, '_>, seq: u64, proof: Option<Digest>) {
        let (verdict, pending) =
            self.audits
                .settle(seq, proof.as_ref(), ctx.now(), &mut self.audit_stats);
        match (verdict, pending) {
            (AuditVerdict::Pass, Some(p)) => {
                past_obs::counter("past.audit.pass", 1);
                ctx.record_peer_success(p.holder.id);
            }
            (AuditVerdict::Fail, Some(p)) => {
                past_obs::counter("past.audit.fail", 1);
                ctx.record_peer_failure(p.holder.id);
                ctx.demote_peer(p.holder.id);
            }
            _ => {}
        }
    }

    /// An audit challenge timed out unanswered: treat like a failed
    /// proof (unless the proof raced the timer and already settled it).
    fn on_audit_timeout(&mut self, ctx: &mut PCtx<'_, '_>, seq: u64) {
        if let Some(p) = self.audits.expire(seq, ctx.now(), &mut self.audit_stats) {
            past_obs::counter("past.audit.timeout", 1);
            ctx.record_peer_failure(p.holder.id);
            ctx.demote_peer(p.holder.id);
        }
    }

    /// Encodes the storage inventory carried in the warm-restart
    /// snapshot's application payload: the primary file table (id and
    /// size), the diversion-pointer ids, and the quota ledger's used
    /// bytes. Little-endian, count-prefixed; sorted so same-seed runs
    /// snapshot identical bytes regardless of hash-map order.
    pub(crate) fn encode_inventory(&self) -> Vec<u8> {
        let mut primaries: Vec<(FileId, u64)> = self
            .store
            .primaries()
            .map(|(id, cert)| (*id, cert.file_size))
            .collect();
        primaries.sort_by_key(|(id, _)| *id);
        let mut pointers: Vec<FileId> = self.store.pointers().map(|(id, _)| *id).collect();
        pointers.sort();
        let mut out = Vec::with_capacity(16 + primaries.len() * 28 + pointers.len() * 20);
        out.extend_from_slice(&(primaries.len() as u32).to_le_bytes());
        for (id, size) in &primaries {
            out.extend_from_slice(id.as_bytes());
            out.extend_from_slice(&size.to_le_bytes());
        }
        out.extend_from_slice(&(pointers.len() as u32).to_le_bytes());
        for id in &pointers {
            out.extend_from_slice(id.as_bytes());
        }
        out.extend_from_slice(&self.quota.used().to_le_bytes());
        out
    }

    /// Decodes [`Self::encode_inventory`]'s primary file table. Returns
    /// `None` on any framing violation — a corrupt payload is treated
    /// as "no inventory", never trusted partially.
    pub(crate) fn decode_inventory(payload: &[u8]) -> Option<Vec<(FileId, u64)>> {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if buf.len() < n {
                return None;
            }
            let (head, rest) = buf.split_at(n);
            *buf = rest;
            Some(head)
        }
        fn u32le(buf: &mut &[u8]) -> Option<u32> {
            take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        }
        fn u64le(buf: &mut &[u8]) -> Option<u64> {
            take(buf, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        }
        let mut buf = payload;
        let n = u32le(&mut buf)? as usize;
        let mut primaries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let id = FileId::from_bytes(take(&mut buf, 20)?.try_into().expect("20 bytes"));
            let size = u64le(&mut buf)?;
            primaries.push((id, size));
        }
        let pointers = u32le(&mut buf)? as usize;
        take(&mut buf, pointers.checked_mul(20)?)?;
        u64le(&mut buf)?; // Quota used (informational).
        if !buf.is_empty() {
            return None;
        }
        Some(primaries)
    }
}

impl Application for PastNode {
    type Msg = PastMsg;
    type Upcall = PastEvent;

    fn deliver(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        key: NodeId,
        msg: PastMsg,
        hops: u32,
        _source: NodeEntry,
    ) {
        match msg.kind {
            MsgKind::Insert { req, cert } => {
                self.note_free(ctx, req.client.id, msg.free);
                self.coordinate_insert(ctx, req, cert);
            }
            MsgKind::Lookup { req, file_id, path } => {
                self.note_free(ctx, req.client.id, msg.free);
                self.lookup_at_responsible(ctx, req, file_id, path, hops);
            }
            MsgKind::Reclaim { req, cert } => {
                self.note_free(ctx, req.client.id, msg.free);
                self.coordinate_reclaim(ctx, req, cert);
            }
            MsgKind::ReplicaAdvertise { cert, holder } => {
                // Routed by a warm-restarted holder toward the fileId so
                // it converges on the current responsible node.
                self.note_free(ctx, holder.id, msg.free);
                self.on_replica_advertise(ctx, cert, holder);
            }
            other => {
                // Direct message kinds are never routed; receiving one
                // here indicates a logic error upstream.
                debug_assert!(false, "unexpected routed message: {other:?} at {key}");
            }
        }
    }

    fn forward(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        key: NodeId,
        msg: &mut PastMsg,
        hops: u32,
        _source: NodeEntry,
    ) -> bool {
        match &mut msg.kind {
            MsgKind::Insert { req, cert } => {
                past_obs::span_event(
                    obs::req_span(req),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    "hop",
                    hops as i64,
                );
                // "When an insert request message first reaches a node
                // with a nodeId among the k numerically closest to the
                // fileId", that node takes over as coordinator.
                if ctx.is_among_k_closest(key, self.cfg.k as usize) {
                    let (req, cert) = (*req, cert.clone());
                    self.note_free(ctx, req.client.id, msg.free);
                    self.coordinate_insert(ctx, req, cert);
                    return false;
                }
                // Cache the file passing through (§4: files routed
                // through a node as part of an insert are cached).
                self.store.cache_file(cert);
                true
            }
            MsgKind::Lookup { req, file_id, path } => {
                let (req, file_id) = (*req, *file_id);
                past_obs::span_event(
                    obs::req_span(&req),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    "hop",
                    hops as i64,
                );
                // "As soon as the request message reaches a node that
                // stores the file, that node responds with the content."
                match self.store.resolve(file_id) {
                    Resolution::Primary | Resolution::DivertedHere => {
                        let path = path.clone();
                        self.answer_lookup(ctx, req, file_id, path, hops, HitKind::Primary);
                        return false;
                    }
                    Resolution::Cached => {
                        let path = path.clone();
                        self.answer_lookup(ctx, req, file_id, path, hops, HitKind::Cached);
                        return false;
                    }
                    Resolution::Pointer(holder) => {
                        let path = path.clone();
                        self.send_to(
                            ctx,
                            holder,
                            MsgKind::FetchDiverted {
                                req,
                                file_id,
                                hops,
                                path,
                            },
                        );
                        return false;
                    }
                    Resolution::Miss => {}
                }
                path.push(ctx.own());
                true
            }
            MsgKind::Reclaim { req, cert } => {
                if ctx.is_among_k_closest(key, self.cfg.k as usize) {
                    let (req, cert) = (*req, cert.clone());
                    self.coordinate_reclaim(ctx, req, cert);
                    return false;
                }
                true
            }
            _ => true,
        }
    }

    fn on_app_message(&mut self, ctx: &mut PCtx<'_, '_>, from: NodeEntry, msg: PastMsg) {
        self.note_free(ctx, from.id, msg.free);
        match msg.kind {
            MsgKind::Replicate {
                req,
                cert,
                coordinator,
            } => self.attempt_store(ctx, Some(req), cert, Some(coordinator)),
            MsgKind::ReplicateResult {
                req,
                file_id,
                receipt,
                storer,
            } => self.on_replicate_result(ctx, req, file_id, receipt, storer),
            MsgKind::Divert {
                req,
                cert,
                requester,
            } => self.on_divert_request(ctx, req, cert, requester),
            MsgKind::DivertResult {
                req,
                file_id,
                accepted,
                holder,
            } => self.on_divert_result(ctx, req, file_id, accepted, holder),
            MsgKind::InstallPointer {
                file_id,
                holder,
                backup,
                cert,
            } => self.on_install_pointer(from, file_id, holder, backup, cert),
            MsgKind::Discard { file_id } => self.on_discard(ctx, file_id),
            MsgKind::InsertReply {
                req,
                file_id,
                receipts,
                expected,
                ok,
            } => self.on_insert_reply(ctx, req, file_id, receipts, expected, ok),
            MsgKind::LookupHit {
                req,
                cert,
                hops,
                kind,
                reverse_path,
                corrupted,
                server,
            } => self.on_lookup_hit(ctx, req, cert, hops, kind, reverse_path, corrupted, server),
            MsgKind::LookupMiss { req, file_id } => self.on_lookup_miss(ctx, req, file_id),
            MsgKind::FetchDiverted {
                req,
                file_id,
                hops,
                path,
            } => self.on_fetch_diverted(ctx, req, file_id, hops, path),
            MsgKind::ReclaimExec { cert } => self.on_reclaim_exec(ctx, cert),
            MsgKind::ReclaimReply {
                req,
                file_id,
                ok,
                freed,
            } => self.on_reclaim_reply(ctx, req, file_id, ok, freed),
            MsgKind::FetchReplica { file_id, refresh } => {
                self.on_fetch_replica(ctx, from, file_id, refresh)
            }
            MsgKind::ReplicaAdvertise { cert, holder } => {
                self.on_replica_advertise(ctx, cert, holder)
            }
            MsgKind::ReplicaTransfer { cert } => self.on_replica_transfer(ctx, from, cert),
            MsgKind::MigrationDone { file_id } => self.on_migration_done(ctx, file_id),
            MsgKind::MaintSeq { seq, inner } => {
                // Ack first — receipt, not outcome, is what the sender
                // retries on; every handler below is idempotent.
                self.send_to(ctx, from, MsgKind::MaintAck { seq });
                match *inner {
                    MsgKind::InstallPointer {
                        file_id,
                        holder,
                        backup,
                        cert,
                    } => self.on_install_pointer(from, file_id, holder, backup, cert),
                    MsgKind::Discard { file_id } => self.on_discard(ctx, file_id),
                    MsgKind::FetchReplica { file_id, refresh } => {
                        self.on_fetch_replica(ctx, from, file_id, refresh)
                    }
                    MsgKind::ReplicaAdvertise { cert, holder } => {
                        self.on_replica_advertise(ctx, cert, holder)
                    }
                    MsgKind::ReplicaTransfer { cert } => {
                        self.on_replica_transfer(ctx, from, cert)
                    }
                    other => {
                        debug_assert!(false, "non-maintenance payload in MaintSeq: {other:?}");
                    }
                }
            }
            MsgKind::MaintAck { seq } => self.on_maint_ack(ctx, seq),
            MsgKind::AuditChallenge {
                seq,
                file_id,
                nonce,
                auditor,
            } => self.on_audit_challenge(ctx, seq, file_id, nonce, auditor),
            MsgKind::AuditProof { seq, proof, .. } => self.on_audit_proof(ctx, seq, proof),
            MsgKind::Insert { .. } | MsgKind::Lookup { .. } | MsgKind::Reclaim { .. } => {
                debug_assert!(false, "routed message arrived as a direct message");
            }
        }
    }

    fn on_joined(&mut self, ctx: &mut PCtx<'_, '_>) {
        if self.cfg.migration_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.migration_period, MIGRATION_TOKEN);
        }
        if self.cfg.anti_entropy_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.anti_entropy_period, ANTI_ENTROPY_TOKEN);
        }
        if self.cfg.audit_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.audit_period, AUDIT_SWEEP_TOKEN);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.encode_inventory()
    }

    fn on_restore(&mut self, ctx: &mut PCtx<'_, '_>, payload: &[u8]) {
        if !self.cfg.warm_restart {
            return;
        }
        // The periodic sweeps' timer chains broke while the node was
        // down (timers addressed to a down node are discarded); re-arm
        // them so a warm-restarted node resumes background repair.
        if self.cfg.migration_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.migration_period, MIGRATION_TOKEN);
        }
        if self.cfg.anti_entropy_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.anti_entropy_period, ANTI_ENTROPY_TOKEN);
        }
        if self.cfg.audit_period.micros() > 0 {
            ctx.set_app_timer(self.cfg.audit_period, AUDIT_SWEEP_TOKEN);
        }
        let inventory = match Self::decode_inventory(payload) {
            Some(v) => v,
            None => return,
        };
        let own = ctx.own();
        for (file_id, size) in inventory {
            // Validated, not trusted: only files the store ("disk")
            // actually holds at the recorded size are re-advertised —
            // with the cheap certificate-sized message, routed so it
            // converges on the file's current responsible node.
            let cert = match self.store.replica(file_id) {
                Some(r) if r.size() == size => r.cert.clone(),
                _ => continue,
            };
            let m = self.msg(MsgKind::ReplicaAdvertise { cert, holder: own });
            ctx.route(file_id.as_key(), m);
        }
    }

    fn on_neighbor_added(&mut self, ctx: &mut PCtx<'_, '_>, node: NodeEntry) {
        self.handle_neighbor_added(ctx, node);
    }

    fn on_neighbor_removed(&mut self, ctx: &mut PCtx<'_, '_>, node: NodeEntry) {
        self.handle_neighbor_removed(ctx, node);
    }

    fn on_app_timer(&mut self, ctx: &mut PCtx<'_, '_>, token: u64) {
        if token == MIGRATION_TOKEN {
            self.migration_sweep(ctx);
            if self.cfg.migration_period.micros() > 0 {
                ctx.set_app_timer(self.cfg.migration_period, MIGRATION_TOKEN);
            }
        } else if token == ANTI_ENTROPY_TOKEN {
            self.anti_entropy_sweep(ctx);
            if self.cfg.anti_entropy_period.micros() > 0 {
                ctx.set_app_timer(self.cfg.anti_entropy_period, ANTI_ENTROPY_TOKEN);
            }
        } else if token >= MAINT_RETRY_BASE {
            self.on_maint_retry(ctx, token - MAINT_RETRY_BASE);
        } else if token >= TIMEOUT_BASE {
            self.on_timeout(ctx, token - TIMEOUT_BASE);
        } else if token >= AUDIT_TIMEOUT_BASE {
            self.on_audit_timeout(ctx, token - AUDIT_TIMEOUT_BASE);
        } else if token == AUDIT_SWEEP_TOKEN {
            self.audit_sweep(ctx);
            if self.cfg.audit_period.micros() > 0 {
                ctx.set_app_timer(self.cfg.audit_period, AUDIT_SWEEP_TOKEN);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u8) -> FileId {
        FileId::from_bytes([n; 20])
    }

    fn encode(primaries: &[(FileId, u64)], pointers: &[FileId], quota_used: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(primaries.len() as u32).to_le_bytes());
        for (id, size) in primaries {
            out.extend_from_slice(id.as_bytes());
            out.extend_from_slice(&size.to_le_bytes());
        }
        out.extend_from_slice(&(pointers.len() as u32).to_le_bytes());
        for id in pointers {
            out.extend_from_slice(id.as_bytes());
        }
        out.extend_from_slice(&quota_used.to_le_bytes());
        out
    }

    #[test]
    fn inventory_roundtrip() {
        let primaries = vec![(fid(1), 100u64), (fid(2), 2_000_000)];
        let payload = encode(&primaries, &[fid(9)], 777);
        assert_eq!(PastNode::decode_inventory(&payload), Some(primaries));

        let empty = encode(&[], &[], 0);
        assert_eq!(PastNode::decode_inventory(&empty), Some(vec![]));
    }

    #[test]
    fn inventory_rejects_malformed_payloads() {
        let payload = encode(&[(fid(3), 42)], &[], 5);
        // Truncations at every prefix length fail closed.
        for cut in 0..payload.len() {
            assert_eq!(
                PastNode::decode_inventory(&payload[..cut]),
                None,
                "truncated at {cut}"
            );
        }
        // Trailing garbage is rejected, not ignored.
        let mut long = payload.clone();
        long.push(0);
        assert_eq!(PastNode::decode_inventory(&long), None);
        // An overflowing pointer count must not panic.
        let mut bogus = encode(&[], &[], 0);
        bogus[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(PastNode::decode_inventory(&bogus), None);
    }
}
