//! PAST node configuration.

use past_net::SimDuration;
use past_store::{CachePolicyKind, StorePolicy};

/// Configuration of a PAST node.
#[derive(Clone, Debug)]
pub struct PastConfig {
    /// Replication factor `k`: copies are kept on the `k` nodes with
    /// nodeIds numerically closest to the fileId (paper default: 5,
    /// chosen from the availability analysis of Bolosky et al.).
    pub k: u32,
    /// Storage-management thresholds (`t_pri`, `t_div`, cache fraction).
    pub policy: StorePolicy,
    /// Cache replacement policy.
    pub cache_policy: CachePolicyKind,
    /// Maximum number of *re-salting* retries after a failed insert
    /// attempt (paper: 3 retries, i.e. at most 4 attempts total).
    pub max_file_diversions: u32,
    /// Whether storage nodes verify certificate signatures and clients
    /// verify store receipts. Disabled in the very large trace-driven
    /// experiments (certificates are still issued and shipped; only the
    /// checks are skipped).
    pub verify_certificates: bool,
    /// Bound on the per-node signature-verification memo (entries). A
    /// certificate travels through many verify-and-accept sites (the
    /// coordinator, every replica holder, diversion targets, reclaim);
    /// the memo short-circuits re-verification of byte-identical
    /// `(signing bytes, signature)` pairs that already verified here.
    /// Zero disables memoization. Irrelevant unless
    /// `verify_certificates` is set (reclaim certificates are always
    /// verified and always use the memo).
    pub verify_memo_capacity: usize,
    /// Client-side per-attempt timeout for insert/lookup/reclaim. Zero
    /// disables timeouts (static experiments never need them and the
    /// event queue drains faster without timer events).
    pub client_timeout: SimDuration,
    /// Period of the background migration sweep that gradually moves
    /// diverted/pointed-to files onto their responsible nodes after node
    /// arrivals (§3.5). Zero disables migration.
    pub migration_period: SimDuration,
    /// Maximum files migrated per sweep.
    pub migration_batch: usize,
    /// Ack timeout for reliable maintenance traffic (`ReplicaTransfer`,
    /// `InstallPointer`, `FetchReplica`, `Discard`). Each unacked send
    /// is retransmitted after this timeout, doubling on every retry.
    /// Zero reverts maintenance to fire-and-forget.
    pub maint_ack_timeout: SimDuration,
    /// Maximum retransmissions per maintenance message before the
    /// repair is abandoned (reported as `PastEvent::MaintExhausted`).
    pub maint_retry_budget: u32,
    /// Period of the anti-entropy sweep: each node re-audits a batch of
    /// its primary replicas against the current replica set and
    /// re-issues repairs ("slow repair"). Zero disables the sweep —
    /// the default, because the periodic timer keeps the event queue
    /// non-empty, which static experiments driving the simulator with
    /// `run_until_idle` cannot tolerate. Bounded (`run_for`) churn
    /// experiments enable it.
    pub anti_entropy_period: SimDuration,
    /// Maximum primaries re-audited per anti-entropy sweep.
    pub anti_entropy_batch: usize,
    /// Warm-restart mode for the storage layer: the application payload
    /// of the Pastry snapshot carries the node's file inventory and
    /// quota ledger; on recovery the node validates it against its
    /// store and re-advertises its replicas to the current coordinator
    /// (cheap certificates instead of full re-replication), and the
    /// anti-entropy sweep switches from re-shipping whole replicas to
    /// advertise-then-fetch. Also enables deterministic over-replication
    /// reconciliation (the farthest holder drops). Off by default so
    /// legacy runs stay byte-identical; pair with
    /// `PastryConfig::warm_restart`.
    pub warm_restart: bool,
    /// Period of the sampled storage-audit sweep: each sweep the node
    /// challenges a sampled replica holder per audited file to prove
    /// possession via SHA-1(file ‖ nonce) (LOCKSS-style rate-limited
    /// sampling). Failed or timed-out proofs demote the holder in the
    /// peer-score table, shun it locally, and trigger re-replication
    /// through the normal neighbor-loss repair path. Zero disables
    /// audits — the default; audit scheduling is RNG-free, so enabling
    /// it never perturbs any seeded RNG stream.
    pub audit_period: SimDuration,
    /// Maximum files audited per sweep.
    pub audit_batch: usize,
    /// Distinct holders challenged per sampled file per sweep
    /// (clamped to the available other holders). The default of 1 is
    /// the classic one-sample audit; 2 lets a single sweep
    /// cross-examine two holders of the same file, and differing
    /// verdicts are recorded as `AuditStats::disagreements` —
    /// evidence of partial corruption that one sample cannot see.
    pub audit_fanout: usize,
    /// How long the auditor waits for a possession proof before
    /// treating the challenge as failed.
    pub audit_timeout: SimDuration,
    /// Client-side lookup content verification: the client recomputes
    /// the content hash of a lookup answer against the signed
    /// certificate, discards corrupted answers, shuns the offending
    /// server and retries the lookup (up to `k` times) before
    /// accepting defeat. Off by default.
    pub verify_lookup_content: bool,
    /// Width of the windowed time-series buckets for the obs layer:
    /// lookup completions, cache hits, hop counts, and per-node served
    /// load are additionally recorded per fixed sim-time window of this
    /// width (bucket = now / width), so they can be charted *over time*
    /// — e.g. across a flash-crowd popularity flip. Zero disables the
    /// windows — the default, keeping metrics reports byte-identical to
    /// earlier revisions.
    pub obs_window: SimDuration,
}

impl Default for PastConfig {
    fn default() -> Self {
        PastConfig {
            k: 5,
            policy: StorePolicy::default(),
            cache_policy: CachePolicyKind::GreedyDualSize,
            max_file_diversions: 3,
            verify_certificates: false,
            verify_memo_capacity: 1024,
            client_timeout: SimDuration::ZERO,
            migration_period: SimDuration::ZERO,
            migration_batch: 4,
            maint_ack_timeout: SimDuration::from_secs(2),
            maint_retry_budget: 5,
            anti_entropy_period: SimDuration::ZERO,
            anti_entropy_batch: 8,
            warm_restart: false,
            audit_period: SimDuration::ZERO,
            audit_batch: 4,
            audit_fanout: 1,
            audit_timeout: SimDuration::from_secs(2),
            verify_lookup_content: false,
            obs_window: SimDuration::ZERO,
        }
    }
}

impl PastConfig {
    /// Validates parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn validate(&self) {
        assert!(self.k >= 1, "replication factor must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PastConfig::default();
        c.validate();
        assert_eq!(c.k, 5);
        assert_eq!(c.max_file_diversions, 3);
        assert!((c.policy.t_pri - 0.1).abs() < 1e-12);
        assert!((c.policy.t_div - 0.05).abs() < 1e-12);
        // The Byzantine defense layer is opt-in: default runs make no
        // audit sends and no lookup retries.
        assert_eq!(c.audit_period, SimDuration::ZERO);
        assert!(!c.verify_lookup_content);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        PastConfig {
            k: 0,
            ..Default::default()
        }
        .validate();
    }
}
