//! Sampled challenge-response storage audits (the defense side).
//!
//! LOCKSS-style rate-limited sampling: each audit sweep a node picks a
//! batch of files it is responsible for, samples one other replica
//! holder per file, and challenges it to prove possession of the file
//! via SHA-1(file ‖ nonce) ([`past_crypto::possession_proof`]). The
//! [`AuditBook`] tracks outstanding challenges and enforces the
//! protocol's freshness rules:
//!
//! - every challenge carries a fresh nonce derived from the auditor's
//!   identity and a monotone sequence number (no RNG stream is
//!   consumed — see [`past_crypto::audit_nonce`]);
//! - a proof only counts against the one outstanding challenge whose
//!   sequence number it echoes; a replayed proof for an already-settled
//!   or never-issued challenge is rejected outright;
//! - a proof that echoes the right sequence number but was computed
//!   over a stale nonce (or corrupted content) fails digest comparison.
//!
//! The node layer reacts to failures: peer-score demotion, local
//! shunning and re-replication through the neighbor-loss repair path.

use std::collections::BTreeMap;

use past_crypto::{audit_nonce, possession_proof, verify_possession, Digest};
use past_id::FileId;
use past_pastry::NodeEntry;
use past_net::SimTime;

/// One outstanding audit challenge.
#[derive(Clone, Copy, Debug)]
pub struct PendingAudit {
    /// File being audited.
    pub file_id: FileId,
    /// Expected content hash (from the auditor's own certificate).
    pub expected: Digest,
    /// The challenged holder.
    pub holder: NodeEntry,
    /// The nonce this challenge was issued with.
    pub nonce: u64,
    /// When the challenge was sent.
    pub sent_at: SimTime,
}

/// The verdict on an incoming possession proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The proof matches SHA-1(expected content ‖ challenge nonce).
    Pass,
    /// The proof is absent, wrong, or computed over a stale nonce.
    Fail,
    /// No such challenge is outstanding (replay or spurious proof) —
    /// ignored, no score effect either way.
    Stale,
}

/// Auditor-side bookkeeping for outstanding challenges.
#[derive(Clone, Debug, Default)]
pub struct AuditBook {
    pending: BTreeMap<u64, PendingAudit>,
    next_seq: u64,
    /// First settled verdict (`true` = passed) for files that still
    /// have another challenge outstanding — the cross-examination
    /// state behind [`AuditStats::disagreements`]. Entries exist only
    /// while a sibling challenge is pending, so the map is bounded by
    /// `pending`.
    split_verdicts: BTreeMap<FileId, bool>,
}

/// Running audit counters, with the first-detection timestamp the
/// harness turns into a detection-latency metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Challenges issued.
    pub challenges: u64,
    /// Proofs that verified.
    pub passed: u64,
    /// Proofs that failed verification (wrong digest or "not held").
    pub failed: u64,
    /// Challenges that timed out unanswered.
    pub timeouts: u64,
    /// Same-file challenges (audit fanout ≥ 2) whose verdicts
    /// differed: one holder proved possession while another failed or
    /// timed out — partial corruption a single sample cannot witness.
    pub disagreements: u64,
    /// When this auditor first caught a holder (failed proof or
    /// timeout), if ever.
    pub first_detection: Option<SimTime>,
}

impl AuditStats {
    fn record_detection(&mut self, now: SimTime) {
        if self.first_detection.is_none() {
            self.first_detection = Some(now);
        }
    }
}

impl AuditBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        AuditBook::default()
    }

    /// Issues a challenge against `holder` for `file_id`, deriving the
    /// nonce from `auditor_id` (any stable identity bytes) and the
    /// book's own monotone sequence counter. Returns `(seq, nonce)` for
    /// the wire message.
    pub fn issue(
        &mut self,
        auditor_id: &[u8],
        file_id: FileId,
        expected: Digest,
        holder: NodeEntry,
        now: SimTime,
        stats: &mut AuditStats,
    ) -> (u64, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nonce = audit_nonce(auditor_id, seq);
        self.pending.insert(
            seq,
            PendingAudit {
                file_id,
                expected,
                holder,
                nonce,
                sent_at: now,
            },
        );
        stats.challenges += 1;
        (seq, nonce)
    }

    /// Settles the challenge `seq` with the holder's proof. `None`
    /// means the holder reported not having the copy (counts as a
    /// failure). The challenge is consumed either way, so a second
    /// proof for the same `seq` — a replay — comes back
    /// [`AuditVerdict::Stale`].
    pub fn settle(
        &mut self,
        seq: u64,
        proof: Option<&Digest>,
        now: SimTime,
        stats: &mut AuditStats,
    ) -> (AuditVerdict, Option<PendingAudit>) {
        let Some(pending) = self.pending.remove(&seq) else {
            return (AuditVerdict::Stale, None);
        };
        let ok = match proof {
            Some(p) => verify_possession(&pending.expected, pending.nonce, p),
            None => false,
        };
        self.note_outcome(pending.file_id, ok, stats);
        if ok {
            stats.passed += 1;
            (AuditVerdict::Pass, Some(pending))
        } else {
            stats.failed += 1;
            stats.record_detection(now);
            (AuditVerdict::Fail, Some(pending))
        }
    }

    /// Cross-examination bookkeeping: compares this challenge's
    /// outcome with its same-file sibling (if one settled already) or
    /// parks it until the sibling resolves. With audit fanout 1 a file
    /// never has two outstanding challenges, so this is a no-op.
    fn note_outcome(&mut self, file_id: FileId, passed: bool, stats: &mut AuditStats) {
        if let Some(prev) = self.split_verdicts.remove(&file_id) {
            if prev != passed {
                stats.disagreements += 1;
            }
        } else if self.pending.values().any(|p| p.file_id == file_id) {
            self.split_verdicts.insert(file_id, passed);
        }
    }

    /// Expires the challenge `seq` after its timeout fired unanswered.
    /// Returns the abandoned challenge, or `None` if it was already
    /// settled (the proof raced the timer).
    pub fn expire(
        &mut self,
        seq: u64,
        now: SimTime,
        stats: &mut AuditStats,
    ) -> Option<PendingAudit> {
        let pending = self.pending.remove(&seq)?;
        self.note_outcome(pending.file_id, false, stats);
        stats.timeouts += 1;
        stats.record_detection(now);
        Some(pending)
    }

    /// Number of challenges still outstanding.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Computes the proof an *honest* holder returns: the possession digest
/// over its stored copy's content hash.
pub fn honest_proof(content: &Digest, nonce: u64) -> Digest {
    possession_proof(content, nonce)
}

/// Computes the proof a holder serving *corrupted* content produces:
/// it hashes the bytes it actually has, which differ from what the
/// certificate committed to. Modeled by perturbing the content hash.
pub fn corrupted_proof(content: &Digest, nonce: u64) -> Digest {
    let mut bad = *content;
    bad.0[0] ^= 0xff;
    possession_proof(&bad, nonce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::Sha1;
    use past_id::NodeId;
    use past_net::Addr;

    fn holder() -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(42), Addr(42))
    }

    fn content() -> Digest {
        Sha1::digest(b"file body")
    }

    #[test]
    fn honest_holder_always_passes() {
        let mut book = AuditBook::new();
        let mut stats = AuditStats::default();
        for i in 0..16 {
            let fid = content().to_file_id();
            let (seq, nonce) =
                book.issue(b"auditor", fid, content(), holder(), SimTime(i), &mut stats);
            let proof = honest_proof(&content(), nonce);
            let (verdict, pending) = book.settle(seq, Some(&proof), SimTime(i), &mut stats);
            assert_eq!(verdict, AuditVerdict::Pass);
            assert_eq!(pending.unwrap().file_id, fid);
        }
        assert_eq!(stats.passed, 16);
        assert_eq!(stats.failed, 0);
        assert!(stats.first_detection.is_none());
    }

    #[test]
    fn corrupted_and_discarded_always_fail() {
        let mut book = AuditBook::new();
        let mut stats = AuditStats::default();
        let fid = content().to_file_id();
        // Corrupted copy: wrong digest.
        let (seq, nonce) = book.issue(b"a", fid, content(), holder(), SimTime(5), &mut stats);
        let bad = corrupted_proof(&content(), nonce);
        assert_eq!(
            book.settle(seq, Some(&bad), SimTime(6), &mut stats).0,
            AuditVerdict::Fail
        );
        // Discarded copy: no proof at all.
        let (seq, _) = book.issue(b"a", fid, content(), holder(), SimTime(7), &mut stats);
        assert_eq!(
            book.settle(seq, None, SimTime(8), &mut stats).0,
            AuditVerdict::Fail
        );
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.first_detection, Some(SimTime(6)));
    }

    #[test]
    fn replayed_stale_proof_rejected() {
        let mut book = AuditBook::new();
        let mut stats = AuditStats::default();
        let fid = content().to_file_id();
        let (seq1, nonce1) = book.issue(b"a", fid, content(), holder(), SimTime(1), &mut stats);
        let proof1 = honest_proof(&content(), nonce1);
        assert_eq!(
            book.settle(seq1, Some(&proof1), SimTime(2), &mut stats).0,
            AuditVerdict::Pass
        );
        // Replaying the settled challenge's proof is ignored.
        assert_eq!(
            book.settle(seq1, Some(&proof1), SimTime(3), &mut stats).0,
            AuditVerdict::Stale
        );
        // A new challenge gets a fresh nonce: answering it with the old
        // challenge's proof fails digest comparison.
        let (seq2, nonce2) = book.issue(b"a", fid, content(), holder(), SimTime(4), &mut stats);
        assert_ne!(nonce1, nonce2);
        assert_eq!(
            book.settle(seq2, Some(&proof1), SimTime(5), &mut stats).0,
            AuditVerdict::Fail
        );
        // A proof for a never-issued seq is also stale.
        assert_eq!(
            book.settle(999, Some(&proof1), SimTime(6), &mut stats).0,
            AuditVerdict::Stale
        );
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn timeout_expires_once_and_races_cleanly() {
        let mut book = AuditBook::new();
        let mut stats = AuditStats::default();
        let fid = content().to_file_id();
        let (seq, nonce) = book.issue(b"a", fid, content(), holder(), SimTime(1), &mut stats);
        assert_eq!(book.outstanding(), 1);
        assert!(book.expire(seq, SimTime(10), &mut stats).is_some());
        assert!(book.expire(seq, SimTime(11), &mut stats).is_none());
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.first_detection, Some(SimTime(10)));
        // A proof arriving after the timeout is stale, not a pass.
        let proof = honest_proof(&content(), nonce);
        assert_eq!(
            book.settle(seq, Some(&proof), SimTime(12), &mut stats).0,
            AuditVerdict::Stale
        );
        assert_eq!(book.outstanding(), 0);
    }
}
