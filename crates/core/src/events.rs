//! Harness-visible events (upcalls) emitted by PAST nodes.
//!
//! The experiment harness reconstructs every metric the paper reports
//! from this stream: insert success/failure and re-salt counts (Tables
//! 2–4, Figures 2–4, 6, 7), replica diversion ratios (Figure 5), global
//! utilization (all storage figures), and lookup hops / cache hit rates
//! (Figure 8).

use past_id::FileId;

use crate::messages::HitKind;

/// An event emitted by a PAST node.
#[derive(Clone, Debug, PartialEq)]
pub enum PastEvent {
    /// A client insert completed (successfully or not).
    InsertDone {
        /// Client-local sequence number of the operation.
        seq: u64,
        /// The final fileId (of the last salt attempt).
        file_id: FileId,
        /// File size in bytes.
        size: u64,
        /// Total attempts made (1 = no file diversion; the paper allows
        /// up to 4).
        attempts: u32,
        /// Whether the insert succeeded.
        success: bool,
    },
    /// A client lookup completed.
    LookupDone {
        /// Client-local sequence number.
        seq: u64,
        /// The file looked up.
        file_id: FileId,
        /// Whether the file was found.
        found: bool,
        /// Pastry routing hops until the file was found (the paper's
        /// fetch-distance metric; includes the +1 for a diverted fetch).
        hops: u32,
        /// What kind of copy answered (when found).
        kind: Option<HitKind>,
        /// Whether the final answer's content did not match the
        /// certificate's content hash (served by a Byzantine holder and
        /// not recovered by retries). Always `false` on misses.
        corrupted: bool,
    },
    /// A client reclaim completed.
    ReclaimDone {
        /// Client-local sequence number.
        seq: u64,
        /// The file reclaimed.
        file_id: FileId,
        /// Whether a responsible node accepted the reclaim.
        ok: bool,
        /// Bytes credited back against the quota.
        freed: u64,
    },
    /// A node stored a replica (primary or diverted). Drives the global
    /// utilization and diversion-ratio accounting.
    ReplicaStored {
        /// File concerned.
        file_id: FileId,
        /// Bytes stored.
        size: u64,
        /// `true` when stored as a diverted replica.
        diverted: bool,
    },
    /// A node dropped a replica (insert abort, reclaim, migration).
    ReplicaDropped {
        /// File concerned.
        file_id: FileId,
        /// Bytes freed.
        size: u64,
        /// Whether the dropped copy was a diverted replica.
        diverted: bool,
    },
    /// An insert attempt was aborted by its coordinator (leads to either
    /// a re-salt or a final failure at the client).
    InsertAttemptAborted {
        /// File id of the aborted attempt.
        file_id: FileId,
    },
    /// A maintenance action was skipped because the supporting local
    /// state was missing (e.g. a pointer without its certificate). The
    /// maintenance plane counts and skips instead of panicking.
    MaintSkipped {
        /// File concerned.
        file_id: FileId,
        /// What was missing.
        context: &'static str,
    },
    /// A reliable maintenance message exhausted its retry budget
    /// without being acknowledged; the repair is abandoned until the
    /// next anti-entropy sweep re-issues it.
    MaintExhausted {
        /// File the abandoned message concerned.
        file_id: FileId,
    },
}
