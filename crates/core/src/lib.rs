//! PAST: a large-scale, persistent peer-to-peer storage utility
//! (Rowstron & Druschel, SOSP 2001) — the paper's primary contribution.
//!
//! A [`PastNode`] is a Pastry application ([`past_pastry::Application`])
//! that implements:
//!
//! - the client operations **Insert**, **Lookup** and **Reclaim** (§2.2),
//!   with signed file certificates, store receipts and quota accounting;
//! - **storage management** (§3): the `t_pri`/`t_div` acceptance
//!   policies, *replica diversion* into the leaf set with A→B pointers
//!   and C→B backup pointers, and *file diversion* by re-salting the
//!   fileId (up to three retries);
//! - **replica maintenance** (§3.5): restoring the k-copies invariant on
//!   node arrival and failure, with lazy background migration;
//! - **caching** (§4): route-through insertion into the unused disk
//!   space, GreedyDual-Size replacement, and lookup responses that
//!   retrace the request path to populate caches;
//! - **Byzantine defense** (beyond the paper, LOCKSS-style): sampled
//!   challenge-response storage audits ([`AuditBook`]) that demote and
//!   shun holders failing possession proofs, plus client-side lookup
//!   content verification with shun-and-retry. All knobs default off.
//!
//! Nodes emit [`PastEvent`]s, from which the experiment harness
//! (`past-sim`) reconstructs every metric in the paper's evaluation.

mod audit;
mod config;
mod events;
mod insert;
mod lookup;
mod maintain;
mod messages;
mod node;
mod obs;
mod reclaim;

pub use audit::{AuditBook, AuditStats, AuditVerdict, PendingAudit};
pub use config::PastConfig;
pub use events::PastEvent;
pub use messages::{HitKind, MsgKind, PastMsg, ReqId};
pub use node::{MaintStats, PastNode};

/// A PAST node hosted on the Pastry overlay (what the simulator runs).
pub type PastOverlayNode = past_pastry::PastryNode<PastNode>;
