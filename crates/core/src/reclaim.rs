//! The reclaim path (§2.2): weak-semantics reclamation of a file's
//! storage, authorized by a signed reclaim certificate.

use past_crypto::SharedReclaimCert;
use past_id::FileId;
use past_store::Resolution;

use crate::events::PastEvent;
use crate::messages::{MsgKind, ReqId};
use crate::node::{PCtx, PastNode, PendingOp};
use crate::obs;

impl PastNode {
    /// A reclaim request reached one of the k responsible nodes: verify
    /// ownership, dispatch the reclamation to the replica set and answer
    /// the client. Reclaim has weak semantics ("reclaim does not
    /// guarantee that the file is no longer available"), so the
    /// coordinator replies without waiting for the holders.
    pub(crate) fn coordinate_reclaim(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        cert: SharedReclaimCert,
    ) {
        let file_id = cert.file_id;
        // Verify against the locally stored certificate where possible.
        let stored_cert = self
            .store
            .replica(file_id)
            .map(|r| r.cert.clone())
            .or_else(|| self.pointer_certs.get(&file_id).cloned());
        let ok = match &stored_cert {
            Some(sc) => cert.verify_memo(sc, &mut self.verify_memo).is_ok(),
            None => false,
        };
        if !ok {
            self.send_to(
                ctx,
                req.client,
                MsgKind::ReclaimReply {
                    req,
                    file_id,
                    ok: false,
                    freed: 0,
                },
            );
            return;
        }
        let stored_cert = stored_cert.expect("checked above");
        let freed = stored_cert
            .file_size
            .saturating_mul(stored_cert.replicas as u64);
        // Dispatch to every candidate holder (including self).
        let candidates =
            ctx.replica_candidates(file_id.as_key(), self.cfg.k as usize);
        past_obs::span_event(
            obs::req_span(&req),
            ctx.now().micros(),
            ctx.own().addr.0,
            "coordinate",
            candidates.len() as i64,
        );
        let own = ctx.own();
        for node in candidates {
            if node.id == own.id {
                self.on_reclaim_exec(ctx, cert.clone());
            } else {
                self.send_to(ctx, node, MsgKind::ReclaimExec { cert: cert.clone() });
            }
        }
        self.send_to(
            ctx,
            req.client,
            MsgKind::ReclaimReply {
                req,
                file_id,
                ok: true,
                freed,
            },
        );
    }

    /// A replica holder executes a reclaim: each node re-verifies the
    /// certificate against its own stored copy ("the replica storing
    /// nodes verify that the file's legitimate owner is requesting the
    /// operation").
    pub(crate) fn on_reclaim_exec(&mut self, ctx: &mut PCtx<'_, '_>, cert: SharedReclaimCert) {
        let file_id = cert.file_id;
        match self.store.resolve(file_id) {
            Resolution::Primary | Resolution::DivertedHere => {
                let stored = self.store.replica(file_id).expect("resolved").cert.clone();
                if cert.verify_memo(&stored, &mut self.verify_memo).is_ok() {
                    let replica = self.store.remove_replica(file_id).expect("resolved");
                    ctx.emit(PastEvent::ReplicaDropped {
                        file_id,
                        size: replica.size(),
                        diverted: replica.diverted_from.is_some(),
                    });
                }
            }
            Resolution::Pointer(holder) => {
                let valid = match self.pointer_certs.get(&file_id) {
                    Some(sc) => {
                        let sc = sc.clone();
                        cert.verify_memo(&sc, &mut self.verify_memo).is_ok()
                    }
                    None => false,
                };
                if valid {
                    self.store.remove_pointer(file_id);
                    self.pointer_certs.remove(&file_id);
                    self.send_to(ctx, holder, MsgKind::ReclaimExec { cert: cert.clone() });
                    if let Some(c_node) = self.pointer_backup_at.remove(&file_id) {
                        self.send_to(ctx, c_node, MsgKind::Discard { file_id });
                    }
                }
            }
            Resolution::Cached | Resolution::Miss => {
                // Nothing authoritative here; drop any backup pointer.
                if self.store.remove_backup_pointer(file_id).is_some() {
                    self.backup_certs.remove(&file_id);
                }
            }
        }
    }

    /// Client receives the reclaim verdict and credits its quota.
    pub(crate) fn on_reclaim_reply(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        ok: bool,
        freed: u64,
    ) {
        match self.pending.remove(&req.seq) {
            Some(PendingOp::Reclaim { .. }) => {
                if past_obs::is_enabled() {
                    past_obs::counter(
                        if ok {
                            "past.reclaim.ok"
                        } else {
                            "past.reclaim.fail"
                        },
                        1,
                    );
                    past_obs::span_end(
                        obs::req_span(&req),
                        ctx.now().micros(),
                        if ok { "ok" } else { "failed" },
                    );
                }
                if ok {
                    let _ = self.quota.credit(freed);
                }
                ctx.emit(PastEvent::ReclaimDone {
                    seq: req.seq,
                    file_id,
                    ok,
                    freed: if ok { freed } else { 0 },
                });
            }
            Some(other) => {
                self.pending.insert(req.seq, other);
            }
            None => {}
        }
    }
}
