//! The lookup path: interception at the first node storing the file,
//! pointer indirection for diverted replicas, and response-path caching.

use past_crypto::SharedFileCert;
use past_id::FileId;
use past_pastry::NodeEntry;
use past_store::Resolution;

use crate::events::PastEvent;
use crate::messages::{HitKind, MsgKind, ReqId};
use crate::node::{PCtx, PastNode, PendingOp};
use crate::obs;

fn hit_label(kind: HitKind) -> &'static str {
    match kind {
        HitKind::Primary => "hit_primary",
        HitKind::Diverted => "hit_diverted",
        HitKind::Cached => "hit_cached",
    }
}

fn hit_counter(kind: HitKind) -> &'static str {
    match kind {
        HitKind::Primary => "past.lookup.hit.primary",
        HitKind::Diverted => "past.lookup.hit.diverted",
        HitKind::Cached => "past.lookup.hit.cached",
    }
}

impl PastNode {
    /// The current windowed-metrics bucket, or `None` when windowed
    /// time series are disabled (`obs_window` zero or no recorder).
    pub(crate) fn win_bucket(&self, ctx: &PCtx<'_, '_>) -> Option<u64> {
        let width = self.cfg.obs_window.micros();
        if width == 0 || !past_obs::is_enabled() {
            return None;
        }
        Some(ctx.now().micros() / width)
    }

    /// Records a completed client lookup into the windowed time series
    /// (completion count, cache-hit count, hop sum per window).
    pub(crate) fn note_lookup_window(&self, ctx: &PCtx<'_, '_>, kind: HitKind, hops: u32) {
        if let Some(bucket) = self.win_bucket(ctx) {
            past_obs::window_add("past.win.lookup", bucket, 1);
            if kind == HitKind::Cached {
                past_obs::window_add("past.win.lookup.cached", bucket, 1);
            }
            if hops > 0 {
                past_obs::window_add("past.win.lookup.hops", bucket, hops as u64);
            }
        }
    }

    /// Records this node serving one lookup answer into the per-node
    /// windowed series (the max/mean spread per window is the
    /// flash-crowd load-concentration chart).
    pub(crate) fn note_served_window(&self, ctx: &PCtx<'_, '_>) {
        if let Some(bucket) = self.win_bucket(ctx) {
            past_obs::window_node_add("past.win.served", bucket, ctx.own().addr.0, 1);
        }
    }

    /// A lookup reached the node responsible for the key without being
    /// intercepted earlier.
    pub(crate) fn lookup_at_responsible(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        path: Vec<NodeEntry>,
        hops: u32,
    ) {
        match self.store.resolve(file_id) {
            Resolution::Primary | Resolution::DivertedHere => {
                self.answer_lookup(ctx, req, file_id, path, hops, HitKind::Primary);
            }
            Resolution::Cached => {
                self.answer_lookup(ctx, req, file_id, path, hops, HitKind::Cached);
            }
            Resolution::Pointer(holder) => {
                // One additional RPC reaches the diverted replica.
                self.send_to(
                    ctx,
                    holder,
                    MsgKind::FetchDiverted {
                        req,
                        file_id,
                        hops,
                        path,
                    },
                );
            }
            Resolution::Miss => {
                self.send_to(ctx, req.client, MsgKind::LookupMiss { req, file_id });
            }
        }
    }

    /// Replies to a lookup from this node's copy of the file, sending the
    /// response back along the request path so intermediate nodes can
    /// cache it.
    pub(crate) fn answer_lookup(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        path: Vec<NodeEntry>,
        hops: u32,
        kind: HitKind,
    ) {
        let cert = match self.certificate_for(file_id) {
            Some(c) => c,
            None => {
                self.send_to(ctx, req.client, MsgKind::LookupMiss { req, file_id });
                return;
            }
        };
        past_obs::span_event(
            obs::req_span(&req),
            ctx.now().micros(),
            ctx.own().addr.0,
            hit_label(kind),
            hops as i64,
        );
        self.note_served_window(ctx);
        // A content-corrupting holder serves bytes that no longer match
        // the certificate; the flag travels with the hit and stands in
        // for the client's own hash comparison of the received content.
        let corrupted = self.malice.corrupt_content;
        let server = ctx.own();
        // Response retraces the request path (closest forwarder first),
        // ending at the client.
        let mut reverse: Vec<NodeEntry> = path.into_iter().rev().collect();
        reverse.push(req.client);
        self.forward_hit(ctx, req, cert, hops, kind, reverse, corrupted, server);
    }

    /// Sends a hit to the next node on the reverse path (or completes the
    /// operation when this node *is* the client).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_hit(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        cert: SharedFileCert,
        hops: u32,
        kind: HitKind,
        mut reverse_path: Vec<NodeEntry>,
        corrupted: bool,
        server: NodeEntry,
    ) {
        // Skip self-entries (the responder may be on the recorded path).
        let own = ctx.own();
        while let Some(first) = reverse_path.first() {
            if first.id == own.id {
                reverse_path.remove(0);
            } else {
                break;
            }
        }
        match reverse_path.first().copied() {
            Some(next) => {
                let rest = reverse_path[1..].to_vec();
                self.send_to(
                    ctx,
                    next,
                    MsgKind::LookupHit {
                        req,
                        cert,
                        hops,
                        kind,
                        reverse_path: rest,
                        corrupted,
                        server,
                    },
                );
            }
            None => {
                // The path is exhausted: this node must be the client.
                debug_assert_eq!(req.client.id, own.id);
                self.complete_lookup(ctx, req, cert, hops, kind, corrupted, server);
            }
        }
    }

    /// A hit traveling back toward the client passes through this node:
    /// cache it (§4) and forward. Corrupted content is never cached —
    /// the relay's own hash check rejects it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_lookup_hit(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        cert: SharedFileCert,
        hops: u32,
        kind: HitKind,
        reverse_path: Vec<NodeEntry>,
        corrupted: bool,
        server: NodeEntry,
    ) {
        if !corrupted {
            self.store.cache_file(&cert);
        }
        if req.client.id == ctx.own().id && reverse_path.is_empty() {
            self.complete_lookup(ctx, req, cert, hops, kind, corrupted, server);
        } else {
            self.forward_hit(ctx, req, cert, hops, kind, reverse_path, corrupted, server);
        }
    }

    /// Completes a pending client lookup. In content-verification mode a
    /// corrupted answer is not accepted: the client demotes and shuns
    /// the offending server and re-routes the lookup (the shun steers
    /// the retry to a different replica holder), giving up only after
    /// `k` retries.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn complete_lookup(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        cert: SharedFileCert,
        hops: u32,
        kind: HitKind,
        corrupted: bool,
        server: NodeEntry,
    ) {
        match self.pending.remove(&req.seq) {
            Some(PendingOp::Lookup { file_id, retries }) => {
                debug_assert_eq!(file_id, cert.file_id);
                if corrupted && self.cfg.verify_lookup_content {
                    past_obs::counter("past.lookup.corrupted", 1);
                    ctx.record_peer_failure(server.id);
                    ctx.demote_peer(server.id);
                    if retries < self.cfg.k {
                        past_obs::counter("past.lookup.retry", 1);
                        self.pending.insert(
                            req.seq,
                            PendingOp::Lookup {
                                file_id,
                                retries: retries + 1,
                            },
                        );
                        let m = self.msg(MsgKind::Lookup {
                            req,
                            file_id,
                            path: Vec::new(),
                        });
                        ctx.route(file_id.as_key(), m);
                        return;
                    }
                }
                if past_obs::is_enabled() {
                    past_obs::counter("past.lookup.ok", 1);
                    past_obs::counter(hit_counter(kind), 1);
                    past_obs::observe("past.lookup.hops", hops as u64);
                    past_obs::span_end(obs::req_span(&req), ctx.now().micros(), hit_label(kind));
                }
                self.note_lookup_window(ctx, kind, hops);
                ctx.emit(PastEvent::LookupDone {
                    seq: req.seq,
                    file_id,
                    found: true,
                    hops,
                    kind: Some(kind),
                    corrupted,
                });
            }
            Some(other) => {
                self.pending.insert(req.seq, other);
            }
            None => {} // Timed out already.
        }
    }

    /// Client receives a definitive miss.
    pub(crate) fn on_lookup_miss(&mut self, ctx: &mut PCtx<'_, '_>, req: ReqId, file_id: FileId) {
        match self.pending.remove(&req.seq) {
            Some(PendingOp::Lookup { .. }) => {
                if past_obs::is_enabled() {
                    past_obs::counter("past.lookup.miss", 1);
                    past_obs::span_end(obs::req_span(&req), ctx.now().micros(), "miss");
                }
                ctx.emit(PastEvent::LookupDone {
                    seq: req.seq,
                    file_id,
                    found: false,
                    hops: 0,
                    kind: None,
                    corrupted: false,
                });
            }
            Some(other) => {
                self.pending.insert(req.seq, other);
            }
            None => {}
        }
    }

    /// Node B (diverted-replica holder) answers a pointer-indirected
    /// lookup; the extra A→B RPC counts as one more hop.
    pub(crate) fn on_fetch_diverted(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        hops: u32,
        path: Vec<NodeEntry>,
    ) {
        past_obs::span_event(
            obs::req_span(&req),
            ctx.now().micros(),
            ctx.own().addr.0,
            "fetch_diverted",
            hops as i64,
        );
        if self.store.holds_replica(file_id) {
            self.answer_lookup(ctx, req, file_id, path, hops + 1, HitKind::Diverted);
        } else {
            // Stale pointer (replica discarded or migrated away).
            self.send_to(ctx, req.client, MsgKind::LookupMiss { req, file_id });
        }
    }

    /// Returns the certificate for a file this node can serve (replica,
    /// cache registry is certificate-less, so cached files are served
    /// from the pointer/backup certificate registries or the replica
    /// store).
    pub(crate) fn certificate_for(&self, file_id: FileId) -> Option<SharedFileCert> {
        if let Some(r) = self.store.replica(file_id) {
            return Some(r.cert.clone());
        }
        if let Some(c) = self.store.cached_cert(file_id) {
            return Some(c.clone());
        }
        if let Some(c) = self.pointer_certs.get(&file_id) {
            return Some(c.clone());
        }
        self.backup_certs.get(&file_id).cloned()
    }
}
