//! Bridges PAST request identities to `past-obs` span ids.
//!
//! A client operation is already uniquely identified across the
//! overlay by [`ReqId`] (originating node address + per-node
//! sequence), so the same pair keys its span from any node the
//! operation touches. Maintenance exchanges draw sequence numbers
//! from a per-node space of their own, so their spans set
//! [`past_obs::span::MAINT_SPAN_BIT`] to stay disjoint.

use past_net::Addr;
use past_obs::span::MAINT_SPAN_BIT;
use past_obs::SpanId;

use crate::messages::ReqId;

/// The span id of a client operation, from its request id.
pub(crate) fn req_span(req: &ReqId) -> SpanId {
    SpanId {
        node: req.client.addr.0,
        seq: req.seq,
    }
}

/// The span id of a client operation, at the originating node.
pub(crate) fn client_span(addr: Addr, seq: u64) -> SpanId {
    SpanId { node: addr.0, seq }
}

/// The span id of an acked maintenance exchange.
pub(crate) fn maint_span(addr: Addr, seq: u64) -> SpanId {
    SpanId {
        node: addr.0,
        seq: MAINT_SPAN_BIT | seq,
    }
}
