//! Replica maintenance (§3.5): keeping k copies per file as nodes join,
//! fail and recover, and gradually migrating files to their responsible
//! nodes in the background.

use past_crypto::SharedFileCert;
use past_id::FileId;
use past_pastry::NodeEntry;

use crate::events::PastEvent;
use crate::messages::MsgKind;
use crate::node::{PCtx, PastNode, PendingMaint, MAINT_RETRY_BASE};
use crate::obs;

impl PastNode {
    /// Sends a maintenance message reliably: enveloped with a sequence
    /// number, retransmitted with exponential backoff until the
    /// receiver acks or the retry budget runs out. Falls back to
    /// fire-and-forget when `maint_ack_timeout` is zero.
    pub(crate) fn send_maint(&mut self, ctx: &mut PCtx<'_, '_>, to: NodeEntry, kind: MsgKind) {
        self.maint_stats.sent += 1;
        past_obs::counter("maint.sent", 1);
        if self.cfg.maint_ack_timeout.micros() == 0 {
            self.send_to(ctx, to, kind);
            return;
        }
        let seq = self.next_maint_seq;
        self.next_maint_seq += 1;
        if past_obs::is_enabled() {
            past_obs::span_start(
                obs::maint_span(ctx.own().addr, seq),
                "maint",
                ctx.now().micros(),
            );
            past_obs::span_event(
                obs::maint_span(ctx.own().addr, seq),
                ctx.now().micros(),
                ctx.own().addr.0,
                "send",
                to.addr.0 as i64,
            );
        }
        self.maint_pending.insert(
            seq,
            PendingMaint {
                to,
                kind: kind.clone(),
                attempts: 0,
                backoff: self.cfg.maint_ack_timeout,
            },
        );
        self.send_to(
            ctx,
            to,
            MsgKind::MaintSeq {
                seq,
                inner: Box::new(kind),
            },
        );
        ctx.set_app_timer(self.cfg.maint_ack_timeout, MAINT_RETRY_BASE + seq);
    }

    /// Accounts maintenance payload bytes by class. The struct counters
    /// always run (plain integers, invisible to legacy metrics); the
    /// obs counters are emitted only in warm-restart mode so existing
    /// metrics reports stay byte-identical.
    pub(crate) fn count_maint_bytes(&mut self, bytes: u64, refresh: bool) {
        if refresh {
            self.maint_stats.bytes_refresh += bytes;
        } else {
            self.maint_stats.bytes_rereplication += bytes;
        }
        if self.cfg.warm_restart && past_obs::is_enabled() {
            past_obs::counter(
                if refresh {
                    "maint.bytes.refresh"
                } else {
                    "maint.bytes.rereplication"
                },
                bytes,
            );
        }
    }

    /// The receiver acknowledged maintenance message `seq`.
    pub(crate) fn on_maint_ack(&mut self, ctx: &mut PCtx<'_, '_>, seq: u64) {
        if let Some(done) = self.maint_pending.remove(&seq) {
            ctx.record_peer_success(done.to.id);
            self.maint_stats.acked += 1;
            if past_obs::is_enabled() {
                past_obs::counter("maint.acked", 1);
                past_obs::span_end(
                    obs::maint_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    "acked",
                );
            }
        }
    }

    /// The ack timer for maintenance message `seq` fired: retransmit
    /// with doubled backoff, or give up once the budget is spent.
    pub(crate) fn on_maint_retry(&mut self, ctx: &mut PCtx<'_, '_>, seq: u64) {
        let entry = match self.maint_pending.get_mut(&seq) {
            Some(e) => e,
            None => return, // Acked before the timer fired.
        };
        if entry.attempts >= self.cfg.maint_retry_budget {
            let entry = self.maint_pending.remove(&seq).expect("present");
            ctx.record_peer_failure(entry.to.id);
            self.maint_stats.exhausted += 1;
            if past_obs::is_enabled() {
                past_obs::counter("maint.exhausted", 1);
                past_obs::span_end(
                    obs::maint_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    "exhausted",
                );
            }
            if let Some(file_id) = entry.kind.maint_file_id() {
                ctx.emit(PastEvent::MaintExhausted { file_id });
            }
            return;
        }
        entry.attempts += 1;
        entry.backoff = entry.backoff + entry.backoff;
        let (to, kind, backoff, attempts) =
            (entry.to, entry.kind.clone(), entry.backoff, entry.attempts);
        // A missed ack is a (decaying) strike against the receiver.
        ctx.record_peer_failure(to.id);
        self.maint_stats.retries += 1;
        if past_obs::is_enabled() {
            past_obs::counter("maint.retry", 1);
            past_obs::span_event(
                obs::maint_span(ctx.own().addr, seq),
                ctx.now().micros(),
                ctx.own().addr.0,
                "retry",
                attempts as i64,
            );
        }
        self.send_to(
            ctx,
            to,
            MsgKind::MaintSeq {
                seq,
                inner: Box::new(kind),
            },
        );
        ctx.set_app_timer(backoff, MAINT_RETRY_BASE + seq);
    }
    /// A node entered this node's leaf set. For every primary replica
    /// whose replica set now includes the newcomer *instead of* this
    /// node, install a pointer on the newcomer (semantically a replica
    /// diversion, per §3.5) so responsibility transfers immediately while
    /// the data migrates lazily.
    pub(crate) fn handle_neighbor_added(&mut self, ctx: &mut PCtx<'_, '_>, node: NodeEntry) {
        let own = ctx.own();
        let k = self.cfg.k as usize;
        let mut displaced: Vec<(FileId, SharedFileCert)> = self
            .store
            .primaries()
            .filter_map(|(id, cert)| {
                let candidates = ctx.replica_candidates(id.as_key(), k);
                let newcomer_in = candidates.iter().any(|c| c.id == node.id);
                let self_out = !candidates.iter().any(|c| c.id == own.id);
                if newcomer_in && self_out {
                    Some((*id, cert.clone()))
                } else {
                    None
                }
            })
            .collect();
        // The store's maps iterate in per-instance random order; batches
        // derived from them are sorted so same-seed runs send identical
        // message sequences (maintenance seq numbers included).
        displaced.sort_by_key(|(id, _)| *id);
        for (file_id, cert) in displaced {
            // "The joining node may install a pointer in its file table,
            // referring to the node that has just ceased to be one of the
            // k numerically closest, and requiring that node to keep the
            // replica."
            self.send_maint(
                ctx,
                node,
                MsgKind::InstallPointer {
                    file_id,
                    holder: own,
                    backup: false,
                    cert,
                },
            );
        }
    }

    /// A node left this node's leaf set (presumed failed). Restore the
    /// storage invariant for every file this node shares responsibility
    /// for, and repair diversion pointers that referenced the failed
    /// node.
    pub(crate) fn handle_neighbor_removed(&mut self, ctx: &mut PCtx<'_, '_>, failed: NodeEntry) {
        let own = ctx.own();
        let k = self.cfg.k as usize;
        // (a) Primary replicas: if the failed node was in the replica set
        // and this node is the set's closest member, ship a copy to the
        // node that newly completes the set.
        let mut to_restore: Vec<(NodeEntry, SharedFileCert)> = Vec::new();
        for (id, stored) in self.store.primaries() {
            let key = id.as_key();
            let candidates = ctx.replica_candidates(key, k);
            if candidates.is_empty() {
                continue;
            }
            // Was the failed node responsible? Compare its distance to
            // the current farthest candidate.
            let farthest = candidates.last().expect("non-empty");
            let failed_was_in =
                failed.id.ring_distance(key) <= farthest.id.ring_distance(key);
            let i_am_closest = candidates[0].id == own.id;
            if failed_was_in && i_am_closest {
                let newcomer = *farthest;
                if newcomer.id != own.id {
                    to_restore.push((newcomer, stored.clone()));
                }
            }
        }
        to_restore.sort_by_key(|(_, cert)| cert.file_id);
        for (node, cert) in to_restore {
            self.count_maint_bytes(cert.file_size, false);
            self.send_maint(ctx, node, MsgKind::ReplicaTransfer { cert });
        }
        // (b) A→B pointers whose holder B failed: the diverted replica is
        // lost; re-create it (locally if possible, else divert again). A
        // pointer whose certificate went missing cannot be repaired —
        // skip it with an event rather than panicking on the map lookup.
        let mut lost: Vec<(FileId, Option<SharedFileCert>)> = self
            .store
            .pointers()
            .filter(|(_, holder)| holder.id == failed.id)
            .map(|(id, _)| (*id, self.pointer_certs.get(id).cloned()))
            .collect();
        lost.sort_by_key(|(id, _)| *id);
        for (file_id, cert) in lost {
            self.store.remove_pointer(file_id);
            self.pointer_certs.remove(&file_id);
            if let Some(c_node) = self.pointer_backup_at.remove(&file_id) {
                self.send_maint(ctx, c_node, MsgKind::Discard { file_id });
            }
            match cert {
                // Re-create the replica: §3.3's machinery is reused with
                // no coordinator (no receipts at maintenance time).
                Some(cert) => self.attempt_store(ctx, None, cert, None),
                None => ctx.emit(PastEvent::MaintSkipped {
                    file_id,
                    context: "pointer without certificate",
                }),
            }
        }
        // (c) Backup pointers installed by the failed diverting node A:
        // promote them to regular pointers so the diverted replica at B
        // stays reachable from this node. Only pointers whose recorded
        // installer is the failed node are promoted; backups for live
        // diverting nodes stay backups.
        let mut promoted: Vec<(FileId, NodeEntry)> = self
            .store
            .backup_pointers()
            .filter(|(id, holder)| {
                holder.id != failed.id && self.backup_owner.get(*id) == Some(&failed.id)
            })
            .map(|(id, holder)| (*id, *holder))
            .collect();
        promoted.sort_by_key(|(id, _)| *id);
        for (file_id, holder) in promoted {
            if self.store.remove_backup_pointer(file_id).is_some() {
                self.backup_owner.remove(&file_id);
                match self.backup_certs.remove(&file_id) {
                    Some(cert) => {
                        self.store.install_pointer(file_id, holder);
                        self.pointer_certs.insert(file_id, cert);
                    }
                    None => ctx.emit(PastEvent::MaintSkipped {
                        file_id,
                        context: "backup pointer without certificate",
                    }),
                }
            }
        }
        // (d) Backup pointers whose replica holder B failed reference a
        // replica that no longer exists; A's branch (b) re-creates it,
        // so the stale backup is dropped here.
        let mut stale: Vec<FileId> = self
            .store
            .backup_pointers()
            .filter(|(_, holder)| holder.id == failed.id)
            .map(|(id, _)| *id)
            .collect();
        stale.sort();
        for file_id in stale {
            self.store.remove_backup_pointer(file_id);
            self.backup_certs.remove(&file_id);
            self.backup_owner.remove(&file_id);
        }
    }

    /// A replica holder receives a request for a file's content (a newly
    /// responsible node pulling its copy). `refresh` classifies the
    /// shipped bytes: a fetch answering an anti-entropy advertisement
    /// refreshes a copy, a migration pull restores one.
    pub(crate) fn on_fetch_replica(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        from: NodeEntry,
        file_id: FileId,
        refresh: bool,
    ) {
        // A replica-dropping Byzantine node refuses maintenance service
        // outright (it has discarded its copies anyway).
        if self.malice.drop_replicas {
            return;
        }
        if let Some(replica) = self.store.replica(file_id) {
            let cert = replica.cert.clone();
            self.count_maint_bytes(cert.file_size, refresh);
            self.send_maint(ctx, from, MsgKind::ReplicaTransfer { cert });
        }
    }

    /// A file arrives for this node to store as part of maintenance
    /// (failure recovery or migration). Stored with the §3.5 overflow
    /// handling: locally, else diverted, else dropped (replication
    /// temporarily below k).
    pub(crate) fn on_replica_transfer(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        from: NodeEntry,
        cert: SharedFileCert,
    ) {
        let file_id = cert.file_id;
        if self.store.holds_replica(file_id) {
            // Already held — but the sender believing it should ship us a
            // copy can itself be stale: a node that cold-rejoined after
            // the replica set moved on keeps re-creating a k+1-th copy.
            // In warm-restart mode, reconcile deterministically: a sender
            // outside the current replica set (i.e. farther than every
            // candidate) is told to drop; its own `on_migration_done`
            // re-checks standing before doing so.
            if self.cfg.warm_restart {
                let k = self.cfg.k as usize;
                let candidates = ctx.replica_candidates(file_id.as_key(), k);
                if !candidates.iter().any(|c| c.id == from.id) {
                    self.send_to(ctx, from, MsgKind::MigrationDone { file_id });
                }
            }
            return;
        }
        let size = cert.file_size;
        if self.store.store_primary(cert.clone()).is_ok() {
            ctx.emit(PastEvent::ReplicaStored {
                file_id,
                size,
                diverted: false,
            });
            // If this transfer completed a migration, the old holder may
            // now drop its copy.
            self.store.remove_pointer(file_id);
            self.pointer_certs.remove(&file_id);
            self.send_to(ctx, from, MsgKind::MigrationDone { file_id });
        } else {
            // Reuse replica diversion with no coordinator.
            self.attempt_store(ctx, None, cert, None);
        }
    }

    /// The old holder learns a migration completed: drop the replica if
    /// this node is no longer among the file's k closest.
    pub(crate) fn on_migration_done(&mut self, ctx: &mut PCtx<'_, '_>, file_id: FileId) {
        let k = self.cfg.k as usize;
        if ctx.is_among_k_closest(file_id.as_key(), k) {
            return; // Still responsible: keep the copy.
        }
        if let Some(replica) = self.store.remove_replica(file_id) {
            ctx.emit(PastEvent::ReplicaDropped {
                file_id,
                size: replica.size(),
                diverted: replica.diverted_from.is_some(),
            });
        }
    }

    /// Background migration sweep (§3.5: "the affected files can then be
    /// gradually migrated ... as part of a background operation"): pull
    /// up to `migration_batch` pointed-to files whose replica lives on a
    /// node outside this node's leaf set or that this node should own.
    pub(crate) fn migration_sweep(&mut self, ctx: &mut PCtx<'_, '_>) {
        let mut pointed: Vec<(FileId, NodeEntry)> = self
            .store
            .pointers()
            .map(|(id, holder)| (*id, *holder))
            .collect();
        // Sorted (not HashMap-order) so the batch picked each sweep is
        // the same across same-seed runs.
        pointed.sort_by_key(|(id, _)| *id);
        let mut migrated = 0;
        for (file_id, holder) in pointed {
            if migrated == self.cfg.migration_batch {
                break;
            }
            // Only migrate files this node should hold itself.
            if ctx.is_among_k_closest(file_id.as_key(), self.cfg.k as usize) {
                self.send_maint(
                    ctx,
                    holder,
                    MsgKind::FetchReplica {
                        file_id,
                        refresh: false,
                    },
                );
                migrated += 1;
            }
        }
    }

    /// Anti-entropy sweep (LOCKSS-style "slow repair"): re-audit a
    /// bounded, round-robin batch of this node's primary replicas
    /// against the current replica set and re-ship copies to every
    /// current candidate. Receivers deduplicate (and answer with
    /// `MigrationDone` when the sender should migrate the file away),
    /// so repeated sweeps converge without amplification; the batch
    /// limit is the rate limit. This is the slow path that eventually
    /// restores `k` replicas even when the event-driven repairs of
    /// [`Self::handle_neighbor_removed`] were lost or exhausted their
    /// retries.
    pub(crate) fn anti_entropy_sweep(&mut self, ctx: &mut PCtx<'_, '_>) {
        let k = self.cfg.k as usize;
        let own = ctx.own();
        // Local hygiene first: certificates whose pointer is gone (or
        // vice versa, pointers whose certificate is gone) are repaired
        // by dropping the orphaned half.
        self.pointer_certs
            .retain(|id, _| self.store.pointer(*id).is_some());
        self.backup_certs
            .retain(|id, _| self.store.backup_pointer(*id).is_some());
        self.backup_owner
            .retain(|id, _| self.store.backup_pointer(*id).is_some());
        let mut ids: Vec<FileId> = self.store.primaries().map(|(id, _)| *id).collect();
        if ids.is_empty() {
            return;
        }
        ids.sort();
        // Resume after the cursor, wrapping, so every file is audited
        // once per full rotation regardless of the batch size.
        let start = match self.anti_entropy_cursor {
            Some(cursor) => ids.partition_point(|id| *id <= cursor),
            None => 0,
        };
        let take = ids.len().min(self.cfg.anti_entropy_batch);
        let batch: Vec<FileId> = ids
            .iter()
            .cycle()
            .skip(start)
            .take(take)
            .copied()
            .collect();
        self.anti_entropy_cursor = batch.last().copied();
        for file_id in batch {
            let cert = match self.store.replica(file_id) {
                Some(r) => r.cert.clone(),
                None => continue,
            };
            for node in ctx.replica_candidates(file_id.as_key(), k) {
                if node.id == own.id {
                    continue;
                }
                if self.cfg.warm_restart {
                    // Advertise-then-fetch: ship the certificate, not
                    // the file. Receivers that miss the replica pull it
                    // (`FetchReplica { refresh: true }`); receivers that
                    // hold it reconcile over-replication instead of
                    // absorbing a redundant full copy.
                    self.send_maint(
                        ctx,
                        node,
                        MsgKind::ReplicaAdvertise {
                            cert: cert.clone(),
                            holder: own,
                        },
                    );
                } else {
                    self.count_maint_bytes(cert.file_size, true);
                    self.send_maint(ctx, node, MsgKind::ReplicaTransfer { cert: cert.clone() });
                }
            }
        }
    }

    /// A holder advertised a replica (warm-restart mode: on recovery,
    /// routed toward the fileId; during anti-entropy, sent directly to
    /// the replica set). Cheap reconciliation in both directions: a
    /// receiver missing the file pulls it from the advertiser, a
    /// receiver holding it tells an advertiser that fell out of the
    /// replica set to drop. Never installs pointers — the invariant
    /// audit counts pointers as copies, so an advertisement must not
    /// mint one.
    pub(crate) fn on_replica_advertise(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        cert: SharedFileCert,
        holder: NodeEntry,
    ) {
        let file_id = cert.file_id;
        let own = ctx.own();
        if holder.id == own.id {
            return;
        }
        let k = self.cfg.k as usize;
        if !self.store.holds_replica(file_id) {
            // Only pull content this node is actually responsible for,
            // and only under a valid certificate.
            if ctx.is_among_k_closest(file_id.as_key(), k) && self.cert_ok(&cert) {
                self.send_maint(
                    ctx,
                    holder,
                    MsgKind::FetchReplica {
                        file_id,
                        refresh: true,
                    },
                );
            }
            return;
        }
        let candidates = ctx.replica_candidates(file_id.as_key(), k);
        if !candidates.iter().any(|c| c.id == holder.id) {
            self.send_to(ctx, holder, MsgKind::MigrationDone { file_id });
        }
    }
}
