//! Replica maintenance (§3.5): keeping k copies per file as nodes join,
//! fail and recover, and gradually migrating files to their responsible
//! nodes in the background.

use past_crypto::FileCertificate;
use past_id::FileId;
use past_pastry::NodeEntry;

use crate::events::PastEvent;
use crate::messages::MsgKind;
use crate::node::{PCtx, PastNode};

impl PastNode {
    /// A node entered this node's leaf set. For every primary replica
    /// whose replica set now includes the newcomer *instead of* this
    /// node, install a pointer on the newcomer (semantically a replica
    /// diversion, per §3.5) so responsibility transfers immediately while
    /// the data migrates lazily.
    pub(crate) fn handle_neighbor_added(&mut self, ctx: &mut PCtx<'_, '_>, node: NodeEntry) {
        let own = ctx.own();
        let k = self.cfg.k as usize;
        let displaced: Vec<(FileId, FileCertificate)> = self
            .store
            .primaries()
            .filter_map(|(id, replica)| {
                let candidates = ctx.replica_candidates(id.as_key(), k);
                let newcomer_in = candidates.iter().any(|c| c.id == node.id);
                let self_out = !candidates.iter().any(|c| c.id == own.id);
                if newcomer_in && self_out {
                    Some((*id, replica.cert.clone()))
                } else {
                    None
                }
            })
            .collect();
        for (file_id, cert) in displaced {
            // "The joining node may install a pointer in its file table,
            // referring to the node that has just ceased to be one of the
            // k numerically closest, and requiring that node to keep the
            // replica."
            self.send_to(
                ctx,
                node,
                MsgKind::InstallPointer {
                    file_id,
                    holder: own,
                    backup: false,
                    cert,
                },
            );
        }
    }

    /// A node left this node's leaf set (presumed failed). Restore the
    /// storage invariant for every file this node shares responsibility
    /// for, and repair diversion pointers that referenced the failed
    /// node.
    pub(crate) fn handle_neighbor_removed(&mut self, ctx: &mut PCtx<'_, '_>, failed: NodeEntry) {
        let own = ctx.own();
        let k = self.cfg.k as usize;
        // (a) Primary replicas: if the failed node was in the replica set
        // and this node is the set's closest member, ship a copy to the
        // node that newly completes the set.
        let mut to_restore: Vec<(NodeEntry, FileCertificate)> = Vec::new();
        for (id, replica) in self.store.primaries() {
            let key = id.as_key();
            let candidates = ctx.replica_candidates(key, k);
            if candidates.is_empty() {
                continue;
            }
            // Was the failed node responsible? Compare its distance to
            // the current farthest candidate.
            let farthest = candidates.last().expect("non-empty");
            let failed_was_in =
                failed.id.ring_distance(key) <= farthest.id.ring_distance(key);
            let i_am_closest = candidates[0].id == own.id;
            if failed_was_in && i_am_closest {
                let newcomer = *farthest;
                if newcomer.id != own.id {
                    to_restore.push((newcomer, replica.cert.clone()));
                }
            }
        }
        for (node, cert) in to_restore {
            self.send_to(ctx, node, MsgKind::ReplicaTransfer { cert });
        }
        // (b) A→B pointers whose holder B failed: the diverted replica is
        // lost; re-create it (locally if possible, else divert again).
        let lost: Vec<(FileId, FileCertificate)> = self
            .store
            .pointers()
            .filter(|(_, holder)| holder.id == failed.id)
            .map(|(id, _)| (*id, self.pointer_certs[id].clone()))
            .collect();
        for (file_id, cert) in lost {
            self.store.remove_pointer(file_id);
            self.pointer_certs.remove(&file_id);
            if let Some(c_node) = self.pointer_backup_at.remove(&file_id) {
                self.send_to(ctx, c_node, MsgKind::Discard { file_id });
            }
            // Re-create the replica: §3.3's machinery is reused with no
            // coordinator (no receipts at maintenance time).
            self.attempt_store(ctx, None, cert, None);
        }
        // (c) Backup pointers installed by a failed diverting node A:
        // promote them to regular pointers so the diverted replica at B
        // stays reachable from this (responsible) node.
        let promoted: Vec<(FileId, NodeEntry)> = self
            .store
            .backup_pointers()
            .filter(|(id, _)| {
                // Promote only when A failed; we approximate "A failed"
                // by checking whether we now lack any pointer for a file
                // whose backup we hold and whose responsible set includes
                // us. Conservatively promote on any neighbor failure when
                // we are among the k closest.
                let key = id.as_key();
                ctx.is_among_k_closest(key, k + 1)
            })
            .map(|(id, holder)| (*id, *holder))
            .collect();
        let _ = failed;
        for (file_id, holder) in promoted {
            if self.store.remove_backup_pointer(file_id).is_some() {
                if let Some(cert) = self.backup_certs.remove(&file_id) {
                    self.store.install_pointer(file_id, holder);
                    self.pointer_certs.insert(file_id, cert);
                }
            }
        }
    }

    /// A replica holder receives a request for a file's content (a newly
    /// responsible node pulling its copy).
    pub(crate) fn on_fetch_replica(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        from: NodeEntry,
        file_id: FileId,
    ) {
        if let Some(replica) = self.store.replica(file_id) {
            let cert = replica.cert.clone();
            self.send_to(ctx, from, MsgKind::ReplicaTransfer { cert });
        }
    }

    /// A file arrives for this node to store as part of maintenance
    /// (failure recovery or migration). Stored with the §3.5 overflow
    /// handling: locally, else diverted, else dropped (replication
    /// temporarily below k).
    pub(crate) fn on_replica_transfer(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        from: NodeEntry,
        cert: FileCertificate,
    ) {
        let file_id = cert.file_id;
        if self.store.holds_replica(file_id) {
            return;
        }
        let size = cert.file_size;
        if self.store.store_primary(cert.clone()).is_ok() {
            ctx.emit(PastEvent::ReplicaStored {
                file_id,
                size,
                diverted: false,
            });
            // If this transfer completed a migration, the old holder may
            // now drop its copy.
            self.store.remove_pointer(file_id);
            self.pointer_certs.remove(&file_id);
            self.send_to(ctx, from, MsgKind::MigrationDone { file_id });
        } else {
            // Reuse replica diversion with no coordinator.
            self.attempt_store(ctx, None, cert, None);
        }
    }

    /// The old holder learns a migration completed: drop the replica if
    /// this node is no longer among the file's k closest.
    pub(crate) fn on_migration_done(&mut self, ctx: &mut PCtx<'_, '_>, file_id: FileId) {
        let k = self.cfg.k as usize;
        if ctx.is_among_k_closest(file_id.as_key(), k) {
            return; // Still responsible: keep the copy.
        }
        if let Some(replica) = self.store.remove_replica(file_id) {
            ctx.emit(PastEvent::ReplicaDropped {
                file_id,
                size: replica.size(),
                diverted: replica.diverted_from.is_some(),
            });
        }
    }

    /// Background migration sweep (§3.5: "the affected files can then be
    /// gradually migrated ... as part of a background operation"): pull
    /// up to `migration_batch` pointed-to files whose replica lives on a
    /// node outside this node's leaf set or that this node should own.
    pub(crate) fn migration_sweep(&mut self, ctx: &mut PCtx<'_, '_>) {
        let batch: Vec<(FileId, NodeEntry)> = self
            .store
            .pointers()
            .take(self.cfg.migration_batch)
            .map(|(id, holder)| (*id, *holder))
            .collect();
        for (file_id, holder) in batch {
            // Only migrate files this node should hold itself.
            if ctx.is_among_k_closest(file_id.as_key(), self.cfg.k as usize) {
                self.send_to(ctx, holder, MsgKind::FetchReplica { file_id });
            }
        }
    }
}
