//! PAST wire messages (carried as the Pastry application payload).

use past_crypto::{Digest, SharedFileCert, SharedReceipt, SharedReclaimCert};
use past_id::{FileId, NodeId};
use past_pastry::NodeEntry;

/// Identifies a client operation: the issuing node plus a local sequence
/// number. Replies are sent directly to `client.addr`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReqId {
    /// The client node that issued the operation.
    pub client: NodeEntry,
    /// Client-local sequence number.
    pub seq: u64,
}

impl ReqId {
    /// Hashable key form.
    pub fn key(&self) -> (NodeId, u64) {
        (self.client.id, self.seq)
    }
}

/// How a lookup was satisfied (for the caching experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitKind {
    /// Served from a primary replica.
    Primary,
    /// Served from a diverted replica (one extra hop through the pointer).
    Diverted,
    /// Served from a node's disk cache.
    Cached,
}

/// A PAST message. Every message piggybacks the sender's current free
/// space, which feeds the diversion-target selection policy ("choose the
/// node with maximal remaining free space").
#[derive(Clone, Debug)]
pub struct PastMsg {
    /// Sender's free bytes at send time.
    pub free: u64,
    /// The payload.
    pub kind: MsgKind,
}

/// PAST message bodies.
#[derive(Clone, Debug)]
pub enum MsgKind {
    /// Routed toward the fileId: an insert request carrying the file
    /// certificate (the file content travels with it).
    Insert {
        /// Operation id.
        req: ReqId,
        /// Signed file certificate.
        cert: SharedFileCert,
    },
    /// Routed toward the fileId: a lookup request. `path` accumulates the
    /// nodes traversed so the response can retrace it (populating caches).
    Lookup {
        /// Operation id.
        req: ReqId,
        /// Requested file.
        file_id: FileId,
        /// Nodes traversed so far (client excluded).
        path: Vec<NodeEntry>,
    },
    /// Routed toward the fileId: a reclaim request.
    Reclaim {
        /// Operation id.
        req: ReqId,
        /// Signed reclaim certificate.
        cert: SharedReclaimCert,
    },
    /// Coordinator → the other k−1 replica holders: store a replica.
    Replicate {
        /// Operation id.
        req: ReqId,
        /// The file certificate.
        cert: SharedFileCert,
        /// The coordinating node (receives the result).
        coordinator: NodeEntry,
    },
    /// Replica holder → coordinator: outcome of a store attempt
    /// (`receipt` is `None` when both the local store and the diversion
    /// attempt failed).
    ReplicateResult {
        /// Operation id.
        req: ReqId,
        /// File concerned.
        file_id: FileId,
        /// Signed store receipt on success.
        receipt: Option<SharedReceipt>,
        /// The node reporting.
        storer: NodeEntry,
    },
    /// Node A → node B: hold a diverted replica on A's behalf (§3.3).
    Divert {
        /// Insert operation id (`None` during §3.5 maintenance).
        req: Option<ReqId>,
        /// The file certificate.
        cert: SharedFileCert,
        /// The diverting node A.
        requester: NodeEntry,
    },
    /// B → A: diversion outcome.
    DivertResult {
        /// Insert operation id (`None` during maintenance).
        req: Option<ReqId>,
        /// File concerned.
        file_id: FileId,
        /// Whether B accepted the replica.
        accepted: bool,
        /// The answering node B.
        holder: NodeEntry,
    },
    /// Install a diversion pointer: `holder` stores the replica. With
    /// `backup`, this is the C→B pointer placed on the k+1-th closest
    /// node to guard against A's failure.
    InstallPointer {
        /// File concerned.
        file_id: FileId,
        /// The replica holder (B).
        holder: NodeEntry,
        /// Whether this is the backup (C) pointer.
        backup: bool,
        /// Certificate, kept so the pointer owner can re-create the
        /// replica if the holder fails.
        cert: SharedFileCert,
    },
    /// Drop a replica/pointer for `file_id` (insert abort or reclaim).
    Discard {
        /// File concerned.
        file_id: FileId,
    },
    /// Coordinator → client: insert outcome.
    InsertReply {
        /// Operation id.
        req: ReqId,
        /// File concerned.
        file_id: FileId,
        /// Store receipts from each replica holder.
        receipts: Vec<SharedReceipt>,
        /// Number of replicas the coordinator aimed for.
        expected: u32,
        /// Overall success.
        ok: bool,
    },
    /// A node that found the file answers back along the request path;
    /// each node on `reverse_path` caches the file and forwards.
    LookupHit {
        /// Operation id.
        req: ReqId,
        /// Certificate (stands in for the file content).
        cert: SharedFileCert,
        /// Pastry hops the request took until the hit.
        hops: u32,
        /// What kind of copy answered.
        kind: HitKind,
        /// Remaining nodes to traverse; the client is last.
        reverse_path: Vec<NodeEntry>,
        /// Whether the served content does not match the certificate's
        /// content hash (a Byzantine holder answered from a corrupted
        /// copy). Honest relays propagate the flag — in the real system
        /// any node can recompute SHA-1 over the received bytes.
        corrupted: bool,
        /// The node that answered (for client-side shunning when
        /// content verification detects corruption).
        server: NodeEntry,
    },
    /// The responsible node does not have the file.
    LookupMiss {
        /// Operation id.
        req: ReqId,
        /// File concerned.
        file_id: FileId,
    },
    /// A (pointer owner) → B (replica holder): answer this lookup.
    FetchDiverted {
        /// Operation id.
        req: ReqId,
        /// File concerned.
        file_id: FileId,
        /// Hops the request had taken when it hit the pointer (the extra
        /// A→B hop is added by B).
        hops: u32,
        /// Request path for the response to retrace.
        path: Vec<NodeEntry>,
    },
    /// Coordinator → replica holders: execute a verified reclaim.
    ReclaimExec {
        /// The reclaim certificate (re-verified by each holder).
        cert: SharedReclaimCert,
    },
    /// Coordinator → client: reclaim outcome (weak semantics — the
    /// coordinator replies once the reclaim is dispatched).
    ReclaimReply {
        /// Operation id.
        req: ReqId,
        /// File concerned.
        file_id: FileId,
        /// Whether a responsible node processed the reclaim.
        ok: bool,
        /// Bytes whose reclamation was initiated (size × replicas), for
        /// the client's quota credit.
        freed: u64,
    },
    /// New responsible node → replica holder: send me the file (§3.5
    /// migration and failure recovery).
    FetchReplica {
        /// File concerned.
        file_id: FileId,
        /// Whether this fetch refreshes a copy the anti-entropy sweep
        /// advertised (accounted as refresh bytes) rather than restores
        /// a lost replica (re-replication bytes).
        refresh: bool,
    },
    /// Replica holder → replica set: "I hold this file" — the cheap
    /// (certificate-sized) alternative to shipping the whole replica.
    /// Sent routed toward the fileId by a warm-restarted node so it
    /// converges on the current coordinator, and directly by the
    /// anti-entropy sweep in warm-restart mode. A receiver missing the
    /// replica fetches it; a receiver that holds it and judges the
    /// advertiser outside the k closest answers `MigrationDone` so the
    /// farthest holder drops (over-replication reconciliation).
    ReplicaAdvertise {
        /// The file certificate.
        cert: SharedFileCert,
        /// The advertising holder.
        holder: NodeEntry,
    },
    /// Replica holder → new responsible node: the file (as its
    /// certificate).
    ReplicaTransfer {
        /// The file certificate.
        cert: SharedFileCert,
    },
    /// New responsible node → old holder: migration complete, you may
    /// drop your copy if no longer responsible.
    MigrationDone {
        /// File concerned.
        file_id: FileId,
    },
    /// Reliable-delivery envelope for maintenance traffic
    /// (`ReplicaTransfer`, `InstallPointer`, `FetchReplica`,
    /// `ReplicaAdvertise`, `Discard`): the sender retransmits `inner`
    /// with exponential
    /// backoff until a matching [`MsgKind::MaintAck`] arrives or its
    /// retry budget is exhausted.
    MaintSeq {
        /// Sender-local maintenance sequence number.
        seq: u64,
        /// The enveloped maintenance message.
        inner: Box<MsgKind>,
    },
    /// Receiver → sender: acknowledges receipt of `MaintSeq { seq }`.
    MaintAck {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Auditor → replica holder: prove possession of `file_id` by
    /// answering SHA-1(file ‖ nonce) (sampled storage audit).
    AuditChallenge {
        /// Auditor-local challenge sequence number (echoed back).
        seq: u64,
        /// File audited.
        file_id: FileId,
        /// One-shot nonce for this challenge.
        nonce: u64,
        /// The auditing node (receives the proof).
        auditor: NodeEntry,
    },
    /// Replica holder → auditor: the possession proof.
    AuditProof {
        /// Echo of the challenge's sequence number.
        seq: u64,
        /// File audited.
        file_id: FileId,
        /// SHA-1(content ‖ nonce), or `None` for "copy not held".
        proof: Option<Digest>,
        /// The answering holder.
        holder: NodeEntry,
    },
}

impl MsgKind {
    /// The file a maintenance message concerns, for skip/give-up
    /// reporting (`None` for non-maintenance kinds).
    pub fn maint_file_id(&self) -> Option<FileId> {
        match self {
            MsgKind::InstallPointer { file_id, .. }
            | MsgKind::Discard { file_id }
            | MsgKind::FetchReplica { file_id, .. }
            | MsgKind::MigrationDone { file_id } => Some(*file_id),
            MsgKind::ReplicaTransfer { cert } => Some(cert.file_id),
            MsgKind::ReplicaAdvertise { cert, .. } => Some(cert.file_id),
            MsgKind::MaintSeq { inner, .. } => inner.maint_file_id(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_net::Addr;

    #[test]
    fn req_id_key_distinguishes_clients_and_seqs() {
        let a = ReqId {
            client: NodeEntry::new(NodeId::from_u128(1), Addr(1)),
            seq: 9,
        };
        let b = ReqId {
            client: NodeEntry::new(NodeId::from_u128(2), Addr(2)),
            seq: 9,
        };
        assert_ne!(a.key(), b.key());
        let c = ReqId { seq: 10, ..a };
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.key());
    }
}
