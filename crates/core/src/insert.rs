//! The insert path: coordination, replica storage, replica diversion
//! (§3.3) and file diversion (§3.4).

use past_crypto::{SharedFileCert, SharedReceipt, StoreReceipt};
use past_id::FileId;
use past_pastry::NodeEntry;

use crate::events::PastEvent;
use crate::messages::{MsgKind, ReqId};
use crate::obs;
use crate::node::{InsertCoord, PCtx, PastNode, PendingDiversion, PendingOp};

impl PastNode {
    /// Coordinates an insert at the first among-k node the request
    /// reaches: store locally, fan the request out to the other k−1
    /// replica holders, and collect receipts.
    pub(crate) fn coordinate_insert(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        cert: SharedFileCert,
    ) {
        let file_id = cert.file_id;
        // Certificate verification by the first storage node ("that node
        // verifies the file certificate ... If everything checks out").
        if !self.cert_ok(&cert) {
            self.send_to(
                ctx,
                req.client,
                MsgKind::InsertReply {
                    req,
                    file_id,
                    receipts: Vec::new(),
                    expected: self.cfg.k,
                    ok: false,
                },
            );
            return;
        }
        // Rare fileId collisions are detected and lead to the rejection
        // of the later-inserted file.
        if self.store.holds_replica(file_id) {
            self.send_to(
                ctx,
                req.client,
                MsgKind::InsertReply {
                    req,
                    file_id,
                    receipts: Vec::new(),
                    expected: self.cfg.k,
                    ok: false,
                },
            );
            return;
        }
        if let Some(existing) = self.coords.get(&req.key()) {
            if existing.file_id == file_id {
                // Duplicate delivery (per-hop retransmission) of a
                // request we are already coordinating: ignore it.
                return;
            }
            // A leftover coordinator from an earlier attempt of the same
            // client op (re-salted attempts reuse the request seq).
            // Abort it before coordinating the new attempt.
            let stale = self.coords.remove(&req.key()).expect("present");
            for node in stale.stored {
                self.send_discard(ctx, node, stale.file_id);
            }
        }
        let candidates = ctx.replica_candidates(file_id.as_key(), self.cfg.k as usize);
        let own = ctx.own();
        past_obs::span_event(
            obs::req_span(&req),
            ctx.now().micros(),
            own.addr.0,
            "coordinate",
            candidates.len() as i64,
        );
        self.coords.insert(
            req.key(),
            InsertCoord {
                file_id,
                expected: candidates.clone(),
                receipts: Vec::new(),
                stored: Vec::new(),
            },
        );
        for node in candidates {
            if node.id == own.id {
                self.attempt_store(ctx, Some(req), cert.clone(), Some(own));
            } else {
                self.send_to(
                    ctx,
                    node,
                    MsgKind::Replicate {
                        req,
                        cert: cert.clone(),
                        coordinator: own,
                    },
                );
            }
        }
    }

    /// One of the k replica holders attempts to store the file: locally
    /// first, then via replica diversion. `coordinator` is `None` during
    /// §3.5 maintenance re-replication (no receipts flow then).
    pub(crate) fn attempt_store(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: Option<ReqId>,
        cert: SharedFileCert,
        coordinator: Option<NodeEntry>,
    ) {
        let file_id = cert.file_id;
        if !self.cert_ok(&cert) {
            if let (Some(req), Some(coord)) = (req, coordinator) {
                self.report_store_result(ctx, req, file_id, None, coord);
            }
            return;
        }
        if self.store.holds_replica(file_id) {
            // Already stored (duplicate replicate): report as stored.
            if let (Some(req), Some(coord)) = (req, coordinator) {
                let receipt = self.issue_receipt(ctx, file_id, false);
                self.report_store_result(ctx, req, file_id, Some(receipt), coord);
            }
            return;
        }
        match self.store.store_primary(cert.clone()) {
            Ok(()) => {
                ctx.emit(PastEvent::ReplicaStored {
                    file_id,
                    size: cert.file_size,
                    diverted: false,
                });
                if let (Some(req), Some(coord)) = (req, coordinator) {
                    let receipt = self.issue_receipt(ctx, file_id, false);
                    self.report_store_result(ctx, req, file_id, Some(receipt), coord);
                }
                // Byzantine acknowledge-then-discard: the receipt went
                // out, the copy silently doesn't. No drop event — the
                // harness's global auditor must not see the betrayal.
                if self.malice.ack_then_discard {
                    self.store.remove_replica(file_id);
                }
            }
            Err(_) => {
                // Replica diversion: ask a leaf-set node outside the k
                // closest, preferring maximal remaining free space.
                match self.pick_diversion_target(ctx, file_id) {
                    Some(target) => {
                        if past_obs::is_enabled() {
                            past_obs::counter("past.divert.requested", 1);
                            if let Some(req) = req {
                                past_obs::span_event(
                                    obs::req_span(&req),
                                    ctx.now().micros(),
                                    ctx.own().addr.0,
                                    "divert_request",
                                    target.addr.0 as i64,
                                );
                            }
                        }
                        self.diversions.insert(
                            file_id,
                            PendingDiversion {
                                req,
                                cert: cert.clone(),
                                coordinator,
                            },
                        );
                        let own = ctx.own();
                        self.send_to(
                            ctx,
                            target,
                            MsgKind::Divert {
                                req,
                                cert,
                                requester: own,
                            },
                        );
                    }
                    None => {
                        if let (Some(req), Some(coord)) = (req, coordinator) {
                            self.report_store_result(ctx, req, file_id, None, coord);
                        }
                    }
                }
            }
        }
    }

    /// Chooses node B for a diverted replica: in the leaf set, not among
    /// the k closest to the fileId, not already holding the file, with
    /// maximal known remaining free space. Nodes with unknown free space
    /// are tried optimistically. Different replica holders de-collide by
    /// offsetting their pick with their rank in the replica set.
    ///
    /// With `track_reliability` on, the ordering becomes free space ×
    /// decayed peer reliability, so both insert-time diversions and the
    /// §3.5 maintenance re-creations (which reuse this chooser with no
    /// coordinator) prefer targets that have been answering their
    /// maintenance acks.
    pub(crate) fn pick_diversion_target(
        &self,
        ctx: &mut PCtx<'_, '_>,
        file_id: FileId,
    ) -> Option<NodeEntry> {
        let key = file_id.as_key();
        let candidates = ctx.replica_candidates(key, self.cfg.k as usize);
        let own = ctx.own();
        let mut eligible: Vec<NodeEntry> = ctx
            .pastry()
            .leaf_set()
            .members()
            .filter(|m| !candidates.iter().any(|c| c.id == m.id))
            .copied()
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Sort by known free space, descending; unknown is optimistic.
        // Under reliability tracking the key is free × reliability (u128:
        // the optimistic u64::MAX times 1000 milli-units must not wrap).
        if ctx.config().track_reliability {
            eligible.sort_by_key(|m| {
                let free = self.free_info.get(&m.id).copied().unwrap_or(u64::MAX);
                let rel = ctx.reliability_milli(m.id);
                std::cmp::Reverse((free as u128) * (rel as u128))
            });
        } else {
            eligible.sort_by_key(|m| {
                std::cmp::Reverse(self.free_info.get(&m.id).copied().unwrap_or(u64::MAX))
            });
        }
        let rank = candidates
            .iter()
            .position(|c| c.id == own.id)
            .unwrap_or(0);
        Some(eligible[rank % eligible.len()])
    }

    /// Node B receives a diversion request: apply the `t_div` acceptance
    /// policy and answer.
    pub(crate) fn on_divert_request(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: Option<ReqId>,
        cert: SharedFileCert,
        requester: NodeEntry,
    ) {
        let file_id = cert.file_id;
        let size = cert.file_size;
        let accepted =
            self.cert_ok(&cert) && self.store.store_diverted(cert, requester).is_ok();
        if past_obs::is_enabled() {
            past_obs::counter(
                if accepted {
                    "past.divert.accepted"
                } else {
                    "past.divert.rejected"
                },
                1,
            );
            if let Some(req) = req {
                past_obs::span_event(
                    obs::req_span(&req),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    if accepted {
                        "divert_accept"
                    } else {
                        "divert_reject"
                    },
                    size as i64,
                );
            }
        }
        if accepted {
            ctx.emit(PastEvent::ReplicaStored {
                file_id,
                size,
                diverted: true,
            });
        }
        let own = ctx.own();
        self.send_to(
            ctx,
            requester,
            MsgKind::DivertResult {
                req,
                file_id,
                accepted,
                holder: own,
            },
        );
    }

    /// Node A receives B's answer to a diversion request.
    pub(crate) fn on_divert_result(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        _req: Option<ReqId>,
        file_id: FileId,
        accepted: bool,
        holder: NodeEntry,
    ) {
        let pending = match self.diversions.remove(&file_id) {
            Some(p) => p,
            None => return, // Stale (aborted in the meantime).
        };
        if accepted {
            // Install the A→B pointer and the C→B backup pointer on the
            // k+1-th closest node, then report success.
            self.store.install_pointer(file_id, holder);
            self.pointer_certs.insert(file_id, pending.cert.clone());
            let key = file_id.as_key();
            let own = ctx.own();
            let kplus1 = ctx.replica_candidates(key, self.cfg.k as usize + 1);
            if let Some(c_node) = kplus1.last().copied() {
                if c_node.id != own.id && c_node.id != holder.id && kplus1.len() > self.cfg.k as usize
                {
                    self.pointer_backup_at.insert(file_id, c_node);
                    self.send_maint(
                        ctx,
                        c_node,
                        MsgKind::InstallPointer {
                            file_id,
                            holder,
                            backup: true,
                            cert: pending.cert.clone(),
                        },
                    );
                }
            }
            if let (Some(req), Some(coord)) = (pending.req, pending.coordinator) {
                let receipt = self.issue_receipt(ctx, file_id, true);
                self.report_store_result(ctx, req, file_id, Some(receipt), coord);
            }
        } else if let (Some(req), Some(coord)) = (pending.req, pending.coordinator) {
            // "When one of the k nodes declines ... and the node it then
            // chooses also declines, then the entire file is diverted."
            self.report_store_result(ctx, req, file_id, None, coord);
        }
    }

    /// Installs a pointer received from a diverting node (backup C role)
    /// or from a displaced node during maintenance (regular A role).
    /// `from` is the installing node; for backups it identifies the
    /// diverting node A, so the pointer is promoted only when *that*
    /// node fails.
    pub(crate) fn on_install_pointer(
        &mut self,
        from: NodeEntry,
        file_id: FileId,
        holder: NodeEntry,
        backup: bool,
        cert: SharedFileCert,
    ) {
        if backup {
            self.store.install_backup_pointer(file_id, holder);
            self.backup_certs.insert(file_id, cert);
            self.backup_owner.insert(file_id, from.id);
        } else {
            self.store.install_pointer(file_id, holder);
            self.pointer_certs.insert(file_id, cert);
        }
    }

    /// Signs a store receipt for a file this node is responsible for.
    pub(crate) fn issue_receipt(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        file_id: FileId,
        diverted: bool,
    ) -> SharedReceipt {
        SharedReceipt::new(if self.cfg.verify_certificates {
            StoreReceipt::issue(&self.keys, file_id, diverted, ctx.now().micros(), ctx.rng())
        } else {
            // Unread when verification is off; skip the signature hash.
            StoreReceipt::issue_unsigned(&self.keys, file_id, diverted, ctx.now().micros())
        })
    }

    /// Routes a store outcome to the coordinator (inline when this node
    /// coordinates its own replica).
    pub(crate) fn report_store_result(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        receipt: Option<SharedReceipt>,
        coordinator: NodeEntry,
    ) {
        let own = ctx.own();
        if coordinator.id == own.id {
            self.on_replicate_result(ctx, req, file_id, receipt, own);
        } else {
            self.send_to(
                ctx,
                coordinator,
                MsgKind::ReplicateResult {
                    req,
                    file_id,
                    receipt,
                    storer: own,
                },
            );
        }
    }

    /// Coordinator handles one replica holder's outcome.
    pub(crate) fn on_replicate_result(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        receipt: Option<SharedReceipt>,
        storer: NodeEntry,
    ) {
        let coord = match self.coords.get_mut(&req.key()) {
            // A coordinator for a *different* fileId under the same key
            // belongs to a later re-salted attempt; results from the
            // aborted earlier attempt must not touch it.
            Some(c) if c.file_id == file_id => c,
            _ => {
                // The attempt was already aborted; a straggler stored a
                // replica that must now be discarded.
                if receipt.is_some() {
                    self.send_discard(ctx, storer, file_id);
                }
                return;
            }
        };
        // Per-hop retries can duplicate messages; count each storer once.
        if coord.stored.iter().any(|s| s.id == storer.id) {
            return;
        }
        match receipt {
            Some(r) => {
                coord.receipts.push(r);
                coord.stored.push(storer);
                if coord.receipts.len() == coord.expected.len() {
                    let coord = self.coords.remove(&req.key()).expect("present");
                    self.send_to(
                        ctx,
                        req.client,
                        MsgKind::InsertReply {
                            req,
                            file_id,
                            receipts: coord.receipts,
                            expected: coord.expected.len() as u32,
                            ok: true,
                        },
                    );
                }
            }
            None => {
                // Abort: discard everything stored so far, fail the
                // attempt back to the client (file diversion follows).
                let coord = self.coords.remove(&req.key()).expect("present");
                if past_obs::is_enabled() {
                    past_obs::counter("past.insert.attempt_aborted", 1);
                    past_obs::span_event(
                        obs::req_span(&req),
                        ctx.now().micros(),
                        ctx.own().addr.0,
                        "abort",
                        coord.stored.len() as i64,
                    );
                }
                ctx.emit(PastEvent::InsertAttemptAborted { file_id });
                for node in coord.stored {
                    self.send_discard(ctx, node, file_id);
                }
                self.send_to(
                    ctx,
                    req.client,
                    MsgKind::InsertReply {
                        req,
                        file_id,
                        receipts: Vec::new(),
                        expected: coord.expected.len() as u32,
                        ok: false,
                    },
                );
            }
        }
    }

    /// Sends a discard (reliably), handling the self-addressed case
    /// inline.
    pub(crate) fn send_discard(&mut self, ctx: &mut PCtx<'_, '_>, node: NodeEntry, file_id: FileId) {
        if node.id == ctx.own().id {
            self.on_discard(ctx, file_id);
        } else {
            self.send_maint(ctx, node, MsgKind::Discard { file_id });
        }
    }

    /// Drops any role this node has for `file_id` (replica, diverted
    /// replica, pointer, backup pointer), cascading to the diverted
    /// holder where needed.
    pub(crate) fn on_discard(&mut self, ctx: &mut PCtx<'_, '_>, file_id: FileId) {
        if let Some(replica) = self.store.remove_replica(file_id) {
            ctx.emit(PastEvent::ReplicaDropped {
                file_id,
                size: replica.size(),
                diverted: replica.diverted_from.is_some(),
            });
        }
        if let Some(holder) = self.store.remove_pointer(file_id) {
            self.pointer_certs.remove(&file_id);
            self.send_maint(ctx, holder, MsgKind::Discard { file_id });
            if let Some(c_node) = self.pointer_backup_at.remove(&file_id) {
                self.send_maint(ctx, c_node, MsgKind::Discard { file_id });
            }
        }
        if self.store.remove_backup_pointer(file_id).is_some() {
            self.backup_certs.remove(&file_id);
            self.backup_owner.remove(&file_id);
        }
        // Pending diversion for an aborted insert: drop silently; a late
        // DivertResult will find no pending entry and be ignored, and the
        // B-side replica is discarded via the holder cascade above.
        self.diversions.remove(&file_id);
    }

    /// Client receives the coordinator's verdict.
    pub(crate) fn on_insert_reply(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        req: ReqId,
        file_id: FileId,
        receipts: Vec<SharedReceipt>,
        expected: u32,
        ok: bool,
    ) {
        let op = match self.pending.remove(&req.seq) {
            Some(op) => op,
            None => return, // Already timed out or duplicate reply.
        };
        let (name, size, attempts, cert) = match op {
            PendingOp::Insert {
                name,
                size,
                attempts,
                cert,
            } => (name, size, attempts, cert),
            other => {
                self.pending.insert(req.seq, other);
                return;
            }
        };
        // Ignore replies for earlier (re-salted) attempts.
        if cert.file_id != file_id {
            self.pending.insert(
                req.seq,
                PendingOp::Insert {
                    name,
                    size,
                    attempts,
                    cert,
                },
            );
            return;
        }
        let verified = !self.cfg.verify_certificates
            || receipts
                .iter()
                .all(|r| r.verify_memo(&mut self.verify_memo).is_ok());
        if ok && receipts.len() as u32 == expected && verified {
            if past_obs::is_enabled() {
                past_obs::counter("past.insert.ok", 1);
                past_obs::observe("past.insert.attempts", attempts as u64);
                past_obs::span_end(obs::req_span(&req), ctx.now().micros(), "ok");
            }
            ctx.emit(PastEvent::InsertDone {
                seq: req.seq,
                file_id,
                size,
                attempts,
                success: true,
            });
        } else {
            self.retry_or_fail_insert(ctx, req.seq, name, size, attempts, cert);
        }
    }

    /// File diversion: re-salt and retry, up to the configured number of
    /// retries; then report failure and refund the quota.
    pub(crate) fn retry_or_fail_insert(
        &mut self,
        ctx: &mut PCtx<'_, '_>,
        seq: u64,
        name: String,
        size: u64,
        attempts: u32,
        old_cert: SharedFileCert,
    ) {
        if attempts <= self.cfg.max_file_diversions {
            if past_obs::is_enabled() {
                past_obs::counter("past.insert.re_salt", 1);
                past_obs::span_event(
                    obs::client_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    ctx.own().addr.0,
                    "re_salt",
                    (attempts + 1) as i64,
                );
            }
            let cert = SharedFileCert::new(self.issue_cert(ctx, &name, size, attempts + 1));
            self.pending.insert(
                seq,
                PendingOp::Insert {
                    name,
                    size,
                    attempts: attempts + 1,
                    cert: cert.clone(),
                },
            );
            self.route_insert(ctx, seq, cert);
            self.arm_timeout(ctx, seq);
        } else {
            // Refund the quota debited at issue time.
            let _ = self
                .quota
                .credit(size.saturating_mul(self.cfg.k as u64));
            if past_obs::is_enabled() {
                past_obs::counter("past.insert.fail", 1);
                past_obs::span_end(
                    obs::client_span(ctx.own().addr, seq),
                    ctx.now().micros(),
                    "failed",
                );
            }
            ctx.emit(PastEvent::InsertDone {
                seq,
                file_id: old_cert.file_id,
                size,
                attempts,
                success: false,
            });
        }
    }
}
