//! The thread-local recorder and the free functions instrumented
//! crates call.
//!
//! When no recorder is installed every free function is a single
//! thread-local boolean load and a branch — cheap enough to leave the
//! instrumentation permanently compiled into the hot paths (the
//! acceptance bar is < 5% wall-clock overhead on the churn bench with
//! recording disabled).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::span::{OpSpan, SpanEvent, SpanId};

/// Default cap on retained finished spans; beyond it spans still feed
/// the duration histograms but their timelines are dropped (counted
/// in `spans_dropped`).
pub const DEFAULT_MAX_SPANS: usize = 512;

/// A partial view of one operation span as seen by a single shard of
/// the sharded engine. An operation crosses shard boundaries, so one
/// shard may see only the start, only the end, or only a few timeline
/// events; fragments are stitched back into whole [`OpSpan`]s when a
/// shard recorder is absorbed into the primary recorder.
#[derive(Clone, Debug, Default)]
struct SpanFragment {
    kind: Option<&'static str>,
    started_at: Option<u64>,
    ended_at: Option<u64>,
    outcome: &'static str,
    events: Vec<SpanEvent>,
}

impl SpanFragment {
    fn merge_from(&mut self, mut other: SpanFragment) {
        if self.kind.is_none() {
            self.kind = other.kind;
        }
        if self.started_at.is_none() {
            self.started_at = other.started_at;
        }
        if self.ended_at.is_none() {
            self.ended_at = other.ended_at;
            if !other.outcome.is_empty() {
                self.outcome = other.outcome;
            }
        }
        self.events.append(&mut other.events);
    }
}

/// Collects metrics and spans for one run.
///
/// Two modes share the struct: a *primary* recorder (the default)
/// tracks spans start-to-end on one thread, and a *fragment* recorder
/// ([`Recorder::fragment`]) records whatever pieces of a span its shard
/// happens to process, deferring stitching and duration accounting to
/// [`Recorder::absorb`]/[`Recorder::finalize_completed_spans`] on the
/// primary.
pub struct Recorder {
    metrics: MetricsRegistry,
    active: BTreeMap<SpanId, OpSpan>,
    finished: Vec<OpSpan>,
    max_spans: usize,
    spans_dropped: u64,
    snapshots: Vec<String>,
    /// Fragment mode: span calls land in `fragments` instead of
    /// `active`/`finished`, and `span_end` does not feed histograms.
    is_fragment: bool,
    /// Fragment mode: partial spans recorded by this shard.
    fragments: BTreeMap<SpanId, SpanFragment>,
    /// Primary mode: absorbed fragments awaiting their missing pieces.
    pending: BTreeMap<SpanId, SpanFragment>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default span cap.
    pub fn new() -> Self {
        Recorder {
            metrics: MetricsRegistry::new(),
            active: BTreeMap::new(),
            finished: Vec::new(),
            max_spans: DEFAULT_MAX_SPANS,
            spans_dropped: 0,
            snapshots: Vec::new(),
            is_fragment: false,
            fragments: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Creates a per-shard fragment recorder: metrics accumulate as
    /// deltas (drained by [`Recorder::absorb`]) and span calls record
    /// partial timelines keyed by [`SpanId`] for later stitching.
    pub fn fragment() -> Self {
        Recorder {
            is_fragment: true,
            ..Self::new()
        }
    }

    /// Whether this is a per-shard fragment recorder.
    pub fn is_fragment(&self) -> bool {
        self.is_fragment
    }

    /// Creates a recorder retaining at most `max_spans` finished span
    /// timelines.
    pub fn with_max_spans(max_spans: usize) -> Self {
        Recorder {
            max_spans,
            ..Self::new()
        }
    }

    /// Read access to the aggregated metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Finished spans retained so far, in completion order.
    pub fn finished_spans(&self) -> &[OpSpan] {
        &self.finished
    }

    /// Number of spans whose timelines were dropped by the cap.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Appends a point-in-time metrics snapshot stamped `at_us`.
    pub fn take_snapshot(&mut self, at_us: u64) {
        self.snapshots.push(self.metrics.to_json(at_us));
    }

    fn span_start(&mut self, id: SpanId, kind: &'static str, at_us: u64) {
        if self.is_fragment {
            let f = self.fragments.entry(id).or_default();
            f.kind = Some(kind);
            f.started_at = Some(at_us);
            return;
        }
        self.active.insert(id, OpSpan::start(id, kind, at_us));
    }

    fn span_event(&mut self, id: SpanId, at_us: u64, node: u32, label: &'static str, value: i64) {
        let ev = SpanEvent {
            at_us,
            node,
            label,
            value,
        };
        if self.is_fragment {
            // A shard can't tell whether the span was ever opened (the
            // start may live on another shard); keep everything and let
            // finalization drop startless spans, as the primary does.
            self.fragments.entry(id).or_default().events.push(ev);
            return;
        }
        if let Some(span) = self.active.get_mut(&id) {
            span.events.push(ev);
        }
    }

    fn span_end(&mut self, id: SpanId, at_us: u64, outcome: &'static str) {
        if self.is_fragment {
            let f = self.fragments.entry(id).or_default();
            f.ended_at = Some(at_us);
            f.outcome = outcome;
            return;
        }
        let Some(mut span) = self.active.remove(&id) else {
            return;
        };
        span.ended_at = at_us;
        span.outcome = outcome;
        self.finish_span(span);
    }

    /// Feeds a completed span's duration into its kind histogram and
    /// retains the timeline under the cap.
    fn finish_span(&mut self, span: OpSpan) {
        let hist = match span.kind {
            "insert" => "span.insert.duration_us",
            "lookup" => "span.lookup.duration_us",
            "reclaim" => "span.reclaim.duration_us",
            "maint" => "span.maint.duration_us",
            _ => "span.other.duration_us",
        };
        self.metrics.observe(hist, span.duration_us());
        if self.finished.len() < self.max_spans {
            self.finished.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Drains a shard's fragment recorder into this primary recorder:
    /// metric deltas merge into the registry and span fragments merge
    /// into the pending-assembly map. Call once per shard (in shard
    /// order, for a deterministic event concatenation order), then
    /// [`Self::finalize_completed_spans`] once.
    pub fn absorb(&mut self, shard: &mut Recorder) {
        debug_assert!(shard.is_fragment, "absorb takes a fragment recorder");
        self.metrics.merge_from(&shard.metrics);
        shard.metrics = MetricsRegistry::new();
        for (id, frag) in std::mem::take(&mut shard.fragments) {
            match self.pending.get_mut(&id) {
                Some(p) => p.merge_from(frag),
                None => {
                    self.pending.insert(id, frag);
                }
            }
        }
    }

    /// Stitches every pending span whose start *and* end have been
    /// absorbed into a finished [`OpSpan`]: timeline events sort by
    /// `(at_us, node)` (stable, so one node's emission order is kept),
    /// spans finalize in `(ended_at, id)` order, and durations feed the
    /// `span.<kind>.duration_us` histograms exactly as a single-thread
    /// run would. Spans with an end but no recorded start mirror the
    /// primary path's behaviour for unknown spans: dropped silently.
    pub fn finalize_completed_spans(&mut self) {
        let done: Vec<SpanId> = self
            .pending
            .iter()
            .filter(|(_, f)| f.ended_at.is_some())
            .map(|(id, _)| *id)
            .collect();
        let mut completed = Vec::with_capacity(done.len());
        for id in done {
            let f = self.pending.remove(&id).expect("collected above");
            let (Some(kind), Some(started_at)) = (f.kind, f.started_at) else {
                // Recording began mid-operation; no start was ever seen.
                continue;
            };
            let mut events = f.events;
            events.sort_by_key(|e| (e.at_us, e.node));
            completed.push(OpSpan {
                id,
                kind,
                started_at,
                ended_at: f.ended_at.expect("filtered on ended_at"),
                outcome: f.outcome,
                events,
            });
        }
        completed.sort_by_key(|s| (s.ended_at, s.id));
        for span in completed {
            self.finish_span(span);
        }
    }

    /// Builds the full report document emitted to
    /// `results/metrics_<label>.json`: run identity, every snapshot
    /// taken, the retained span timelines, and drop accounting.
    pub fn report_json(&self, label: &str, seed: u64) -> String {
        let spans: Vec<String> = self.finished.iter().map(|s| s.to_json()).collect();
        json::object(&[
            ("label", format!("\"{}\"", json::escape(label))),
            ("seed", seed.to_string()),
            ("snapshots", json::array(&self.snapshots)),
            ("spans", json::array(&spans)),
            ("spans_dropped", self.spans_dropped.to_string()),
            (
                "spans_open",
                (self.active.len() + self.pending.len()).to_string(),
            ),
        ])
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `rec` as this thread's active recorder, replacing (and
/// returning) any previous one.
pub fn install(rec: Recorder) -> Option<Recorder> {
    ENABLED.with(|e| e.set(true));
    RECORDER.with(|r| r.borrow_mut().replace(rec))
}

/// Removes and returns this thread's active recorder, disabling all
/// recording.
pub fn uninstall() -> Option<Recorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Whether a recorder is installed on this thread. Instrumentation
/// sites may use this to skip argument construction entirely.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Runs `f` against the installed recorder, if any.
pub fn with_recorder<T>(f: impl FnOnce(&mut Recorder) -> T) -> Option<T> {
    if !is_enabled() {
        return None;
    }
    RECORDER.with(|r| r.borrow_mut().as_mut().map(f))
}

/// Adds `delta` to a named counter. No-op when disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.counter(name, delta));
}

/// Sets a named gauge. No-op when disabled.
#[inline]
pub fn gauge(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.gauge(name, value));
}

/// Records a histogram sample. No-op when disabled.
#[inline]
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.observe(name, value));
}

/// Adds `delta` to a windowed time series at a caller-computed sim-time
/// bucket (`now / window_width`). No-op when disabled.
#[inline]
pub fn window_add(name: &str, bucket: u64, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.window_add(name, bucket, delta));
}

/// Adds `delta` to a per-node windowed time series at `(bucket, node)`.
/// No-op when disabled.
#[inline]
pub fn window_node_add(name: &str, bucket: u64, node: u32, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.window_node_add(name, bucket, node, delta));
}

/// Opens a span. No-op when disabled.
#[inline]
pub fn span_start(id: SpanId, kind: &'static str, at_us: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_start(id, kind, at_us));
}

/// Appends a timeline event to an open span. No-op when disabled or
/// when the span was never opened (e.g. recording began mid-run).
#[inline]
pub fn span_event(id: SpanId, at_us: u64, node: u32, label: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_event(id, at_us, node, label, value));
}

/// Closes a span with a terminal outcome, feeding its duration into
/// `span.<kind>.duration_us`. No-op when disabled or unknown.
#[inline]
pub fn span_end(id: SpanId, at_us: u64, outcome: &'static str) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_end(id, at_us, outcome));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_a_noop() {
        assert!(uninstall().is_none());
        assert!(!is_enabled());
        counter("ignored", 1);
        observe("ignored", 1);
        span_start(SpanId { node: 1, seq: 1 }, "lookup", 0);
        span_end(SpanId { node: 1, seq: 1 }, 5, "ok");
        assert!(uninstall().is_none());
    }

    #[test]
    fn install_record_uninstall_roundtrip() {
        install(Recorder::new());
        assert!(is_enabled());
        counter("c", 2);
        gauge("g", -1);
        observe("h", 10);
        let id = SpanId { node: 4, seq: 7 };
        span_start(id, "insert", 100);
        span_event(id, 150, 9, "hop", 1);
        span_end(id, 300, "ok");
        let rec = uninstall().expect("installed");
        assert!(!is_enabled());
        assert_eq!(rec.metrics().counter_value("c"), 2);
        assert_eq!(rec.metrics().gauge_value("g"), Some(-1));
        assert_eq!(rec.finished_spans().len(), 1);
        assert_eq!(rec.finished_spans()[0].outcome, "ok");
        assert_eq!(rec.finished_spans()[0].events.len(), 1);
        let dur = rec
            .metrics()
            .histogram("span.insert.duration_us")
            .expect("duration recorded");
        assert_eq!(dur.count(), 1);
        assert_eq!(dur.max(), 200);
    }

    #[test]
    fn span_cap_drops_timelines_but_keeps_durations() {
        install(Recorder::with_max_spans(1));
        for seq in 0..3u64 {
            let id = SpanId { node: 1, seq };
            span_start(id, "lookup", 0);
            span_end(id, 10, "ok");
        }
        let rec = uninstall().unwrap();
        assert_eq!(rec.finished_spans().len(), 1);
        assert_eq!(rec.spans_dropped(), 2);
        assert_eq!(
            rec.metrics()
                .histogram("span.lookup.duration_us")
                .unwrap()
                .count(),
            3
        );
    }

    #[test]
    fn fragments_stitch_into_whole_spans() {
        // One operation crosses two shards: shard A sees the start and
        // a hop, shard B sees a hop and the end.
        let id = SpanId { node: 2, seq: 5 };
        let mut a = Recorder::fragment();
        let mut b = Recorder::fragment();
        a.metrics.counter("net.delivered", 3);
        b.metrics.counter("net.delivered", 4);
        a.span_start(id, "insert", 100);
        a.span_event(id, 120, 2, "hop", 1);
        b.span_event(id, 110, 7, "hop", 2);
        b.span_end(id, 300, "ok");

        let mut primary = Recorder::new();
        primary.absorb(&mut a);
        primary.absorb(&mut b);
        primary.finalize_completed_spans();

        assert_eq!(primary.metrics().counter_value("net.delivered"), 7);
        // Shard deltas were drained.
        assert_eq!(a.metrics().counter_value("net.delivered"), 0);
        assert_eq!(primary.finished_spans().len(), 1);
        let span = &primary.finished_spans()[0];
        assert_eq!(span.kind, "insert");
        assert_eq!(span.outcome, "ok");
        assert_eq!(span.duration_us(), 200);
        // Events sorted by (at_us, node) regardless of absorb order.
        let order: Vec<u64> = span.events.iter().map(|e| e.at_us).collect();
        assert_eq!(order, vec![110, 120]);
        let dur = primary
            .metrics()
            .histogram("span.insert.duration_us")
            .expect("stitched duration recorded");
        assert_eq!(dur.count(), 1);
        assert_eq!(dur.max(), 200);
    }

    #[test]
    fn fragment_stitch_order_is_shard_invariant() {
        // The same recorded pieces distributed over 1 vs 3 shard
        // recorders must produce an identical report.
        let ops: &[(u32, u64)] = &[(1, 1), (2, 1), (3, 1)];
        let run = |shards: usize| {
            let mut frags: Vec<Recorder> = (0..shards).map(|_| Recorder::fragment()).collect();
            for &(node, seq) in ops {
                let id = SpanId { node, seq };
                let start_shard = node as usize % shards;
                let end_shard = (node as usize + 1) % shards;
                frags[start_shard].span_start(id, "lookup", 10 * node as u64);
                frags[end_shard].span_event(id, 10 * node as u64 + 1, node + 8, "hop", 1);
                frags[end_shard].span_end(id, 10 * node as u64 + 5, "ok");
                frags[start_shard].metrics.counter("net.sent", node as u64);
            }
            let mut primary = Recorder::new();
            for f in frags.iter_mut() {
                primary.absorb(f);
            }
            primary.finalize_completed_spans();
            primary.take_snapshot(99);
            primary.report_json("inv", 1)
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn endless_and_startless_fragments_handled() {
        let mut frag = Recorder::fragment();
        // Startless (recording began mid-operation): dropped at finalize.
        frag.span_end(SpanId { node: 1, seq: 1 }, 50, "ok");
        // Endless (still open): stays pending, counted as open.
        frag.span_start(SpanId { node: 1, seq: 2 }, "maint", 10);
        let mut primary = Recorder::new();
        primary.absorb(&mut frag);
        primary.finalize_completed_spans();
        assert!(primary.finished_spans().is_empty());
        let report = primary.report_json("frag", 0);
        assert!(report.ends_with("\"spans_dropped\":0,\"spans_open\":1}"));
    }

    #[test]
    fn report_json_shape() {
        install(Recorder::new());
        counter("a", 1);
        let mut rec = uninstall().unwrap();
        rec.take_snapshot(42);
        let json = rec.report_json("unit \"test\"", 7);
        assert!(json.starts_with("{\"label\":\"unit \\\"test\\\"\",\"seed\":7,"));
        assert!(json.contains("\"snapshots\":[{\"at_us\":42,"));
        assert!(json.contains("\"spans\":[]"));
        assert!(json.ends_with("\"spans_dropped\":0,\"spans_open\":0}"));
    }
}
