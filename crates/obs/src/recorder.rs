//! The thread-local recorder and the free functions instrumented
//! crates call.
//!
//! When no recorder is installed every free function is a single
//! thread-local boolean load and a branch — cheap enough to leave the
//! instrumentation permanently compiled into the hot paths (the
//! acceptance bar is < 5% wall-clock overhead on the churn bench with
//! recording disabled).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::span::{OpSpan, SpanEvent, SpanId};

/// Default cap on retained finished spans; beyond it spans still feed
/// the duration histograms but their timelines are dropped (counted
/// in `spans_dropped`).
pub const DEFAULT_MAX_SPANS: usize = 512;

/// Collects metrics and spans for one run.
pub struct Recorder {
    metrics: MetricsRegistry,
    active: BTreeMap<SpanId, OpSpan>,
    finished: Vec<OpSpan>,
    max_spans: usize,
    spans_dropped: u64,
    snapshots: Vec<String>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default span cap.
    pub fn new() -> Self {
        Recorder {
            metrics: MetricsRegistry::new(),
            active: BTreeMap::new(),
            finished: Vec::new(),
            max_spans: DEFAULT_MAX_SPANS,
            spans_dropped: 0,
            snapshots: Vec::new(),
        }
    }

    /// Creates a recorder retaining at most `max_spans` finished span
    /// timelines.
    pub fn with_max_spans(max_spans: usize) -> Self {
        Recorder {
            max_spans,
            ..Self::new()
        }
    }

    /// Read access to the aggregated metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Finished spans retained so far, in completion order.
    pub fn finished_spans(&self) -> &[OpSpan] {
        &self.finished
    }

    /// Number of spans whose timelines were dropped by the cap.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Appends a point-in-time metrics snapshot stamped `at_us`.
    pub fn take_snapshot(&mut self, at_us: u64) {
        self.snapshots.push(self.metrics.to_json(at_us));
    }

    fn span_start(&mut self, id: SpanId, kind: &'static str, at_us: u64) {
        self.active.insert(id, OpSpan::start(id, kind, at_us));
    }

    fn span_event(&mut self, id: SpanId, at_us: u64, node: u32, label: &'static str, value: i64) {
        if let Some(span) = self.active.get_mut(&id) {
            span.events.push(SpanEvent {
                at_us,
                node,
                label,
                value,
            });
        }
    }

    fn span_end(&mut self, id: SpanId, at_us: u64, outcome: &'static str) {
        let Some(mut span) = self.active.remove(&id) else {
            return;
        };
        span.ended_at = at_us;
        span.outcome = outcome;
        let hist = match span.kind {
            "insert" => "span.insert.duration_us",
            "lookup" => "span.lookup.duration_us",
            "reclaim" => "span.reclaim.duration_us",
            "maint" => "span.maint.duration_us",
            _ => "span.other.duration_us",
        };
        self.metrics.observe(hist, span.duration_us());
        if self.finished.len() < self.max_spans {
            self.finished.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Builds the full report document emitted to
    /// `results/metrics_<label>.json`: run identity, every snapshot
    /// taken, the retained span timelines, and drop accounting.
    pub fn report_json(&self, label: &str, seed: u64) -> String {
        let spans: Vec<String> = self.finished.iter().map(|s| s.to_json()).collect();
        json::object(&[
            ("label", format!("\"{}\"", json::escape(label))),
            ("seed", seed.to_string()),
            ("snapshots", json::array(&self.snapshots)),
            ("spans", json::array(&spans)),
            ("spans_dropped", self.spans_dropped.to_string()),
            ("spans_open", self.active.len().to_string()),
        ])
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `rec` as this thread's active recorder, replacing (and
/// returning) any previous one.
pub fn install(rec: Recorder) -> Option<Recorder> {
    ENABLED.with(|e| e.set(true));
    RECORDER.with(|r| r.borrow_mut().replace(rec))
}

/// Removes and returns this thread's active recorder, disabling all
/// recording.
pub fn uninstall() -> Option<Recorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Whether a recorder is installed on this thread. Instrumentation
/// sites may use this to skip argument construction entirely.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Runs `f` against the installed recorder, if any.
pub fn with_recorder<T>(f: impl FnOnce(&mut Recorder) -> T) -> Option<T> {
    if !is_enabled() {
        return None;
    }
    RECORDER.with(|r| r.borrow_mut().as_mut().map(f))
}

/// Adds `delta` to a named counter. No-op when disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.counter(name, delta));
}

/// Sets a named gauge. No-op when disabled.
#[inline]
pub fn gauge(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.gauge(name, value));
}

/// Records a histogram sample. No-op when disabled.
#[inline]
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.metrics.observe(name, value));
}

/// Opens a span. No-op when disabled.
#[inline]
pub fn span_start(id: SpanId, kind: &'static str, at_us: u64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_start(id, kind, at_us));
}

/// Appends a timeline event to an open span. No-op when disabled or
/// when the span was never opened (e.g. recording began mid-run).
#[inline]
pub fn span_event(id: SpanId, at_us: u64, node: u32, label: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_event(id, at_us, node, label, value));
}

/// Closes a span with a terminal outcome, feeding its duration into
/// `span.<kind>.duration_us`. No-op when disabled or unknown.
#[inline]
pub fn span_end(id: SpanId, at_us: u64, outcome: &'static str) {
    if !is_enabled() {
        return;
    }
    with_recorder(|r| r.span_end(id, at_us, outcome));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_a_noop() {
        assert!(uninstall().is_none());
        assert!(!is_enabled());
        counter("ignored", 1);
        observe("ignored", 1);
        span_start(SpanId { node: 1, seq: 1 }, "lookup", 0);
        span_end(SpanId { node: 1, seq: 1 }, 5, "ok");
        assert!(uninstall().is_none());
    }

    #[test]
    fn install_record_uninstall_roundtrip() {
        install(Recorder::new());
        assert!(is_enabled());
        counter("c", 2);
        gauge("g", -1);
        observe("h", 10);
        let id = SpanId { node: 4, seq: 7 };
        span_start(id, "insert", 100);
        span_event(id, 150, 9, "hop", 1);
        span_end(id, 300, "ok");
        let rec = uninstall().expect("installed");
        assert!(!is_enabled());
        assert_eq!(rec.metrics().counter_value("c"), 2);
        assert_eq!(rec.metrics().gauge_value("g"), Some(-1));
        assert_eq!(rec.finished_spans().len(), 1);
        assert_eq!(rec.finished_spans()[0].outcome, "ok");
        assert_eq!(rec.finished_spans()[0].events.len(), 1);
        let dur = rec
            .metrics()
            .histogram("span.insert.duration_us")
            .expect("duration recorded");
        assert_eq!(dur.count(), 1);
        assert_eq!(dur.max(), 200);
    }

    #[test]
    fn span_cap_drops_timelines_but_keeps_durations() {
        install(Recorder::with_max_spans(1));
        for seq in 0..3u64 {
            let id = SpanId { node: 1, seq };
            span_start(id, "lookup", 0);
            span_end(id, 10, "ok");
        }
        let rec = uninstall().unwrap();
        assert_eq!(rec.finished_spans().len(), 1);
        assert_eq!(rec.spans_dropped(), 2);
        assert_eq!(
            rec.metrics()
                .histogram("span.lookup.duration_us")
                .unwrap()
                .count(),
            3
        );
    }

    #[test]
    fn report_json_shape() {
        install(Recorder::new());
        counter("a", 1);
        let mut rec = uninstall().unwrap();
        rec.take_snapshot(42);
        let json = rec.report_json("unit \"test\"", 7);
        assert!(json.starts_with("{\"label\":\"unit \\\"test\\\"\",\"seed\":7,"));
        assert!(json.contains("\"snapshots\":[{\"at_us\":42,"));
        assert!(json.contains("\"spans\":[]"));
        assert!(json.ends_with("\"spans_dropped\":0,\"spans_open\":0}"));
    }
}
