//! Minimal hand-written JSON helpers (no serde; the workspace is
//! offline and dependency-free by policy — see `churn_availability.rs`
//! for the original idiom).

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Joins already-serialized JSON values into an array literal.
pub fn array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

/// Builds an object literal from `(key, already-serialized value)`
/// pairs, preserving the given order.
pub fn object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        out.push_str(v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn array_and_object_shapes() {
        assert_eq!(array(&[]), "[]");
        assert_eq!(array(&["1".into(), "2".into()]), "[1,2]");
        assert_eq!(
            object(&[("a", "1".into()), ("b", "\"x\"".into())]),
            "{\"a\":1,\"b\":\"x\"}"
        );
    }
}
