//! The memory plane: live RSS sampling from `/proc/self/status`, a
//! resettable peak watermark, and (behind the `count-alloc` feature) a
//! global counting allocator with coarse allocation-site attribution.
//!
//! # Peak-RSS semantics
//!
//! Linux exposes two relevant lines in `/proc/self/status`:
//!
//! - `VmRSS` — resident set *right now*;
//! - `VmHWM` — the high-water mark **since process start** (or since
//!   the last reset).
//!
//! A multi-workload bench reading `VmHWM` after each workload
//! attributes the largest-so-far footprint to *every* subsequent
//! workload. [`reset_peak`] clears the watermark (by writing `5` to
//! `/proc/self/clear_refs`, see `proc(5)`) so `VmHWM` becomes a
//! *peak-since-reset* — the per-workload number a memory budget can be
//! enforced against. Not every kernel/container allows the write;
//! callers must check the return value and fall back to process-wide
//! semantics when it fails.
//!
//! Nothing in this module feeds the deterministic [`crate::Recorder`]
//! snapshots: RSS varies run-to-run and would break the byte-identical
//! metrics-JSON contract. Harnesses read these values directly and
//! report them out-of-band (e.g. `BENCH_perf.json`).

/// Reads an integer kB field (e.g. `VmRSS`, `VmHWM`) from
/// `/proc/self/status`. Returns 0 when the field or file is missing
/// (non-Linux platforms).
pub fn proc_status_kb(key: &str) -> u64 {
    let Ok(body) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            if let Some(num) = rest.split_whitespace().next() {
                return num.parse().unwrap_or(0);
            }
        }
    }
    0
}

/// Current resident set size in kB (`VmRSS`), 0 when unavailable.
pub fn rss_kb() -> u64 {
    proc_status_kb("VmRSS")
}

/// Peak resident set size in kB (`VmHWM`): since process start, or
/// since the last successful [`reset_peak`].
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM")
}

/// Resets the kernel's RSS high-water mark so subsequent
/// [`peak_rss_kb`] reads report the peak *since this call*. Returns
/// `false` when the kernel/container refuses the write (sandboxes
/// commonly do); the watermark then keeps its process-wide meaning.
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

/// Allocation-site counters (active only with the `count-alloc`
/// feature and [`CountingAlloc`] installed as the global allocator).
#[cfg(feature = "count-alloc")]
pub mod count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Coarse allocation sites a harness can tag its phases with.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u8)]
    pub enum Site {
        /// Untagged allocations (the default site).
        Other = 0,
        /// Workload/trace construction.
        TraceBuild = 1,
        /// Overlay construction (keys, routing state, node stores).
        OverlayBuild = 2,
        /// Trace replay (messages, replica maps growing).
        Replay = 3,
    }

    const SITES: usize = 4;
    const NAMES: [&str; SITES] = ["other", "trace_build", "overlay_build", "replay"];

    static ALLOC_CALLS: [AtomicU64; SITES] =
        [const { AtomicU64::new(0) }; SITES];
    static ALLOC_BYTES: [AtomicU64; SITES] =
        [const { AtomicU64::new(0) }; SITES];

    thread_local! {
        // const-initialized so reading it never allocates (a lazy TLS
        // init inside the allocator would recurse).
        static CURRENT: Cell<u8> = const { Cell::new(0) };
    }

    /// Runs `f` with its allocations attributed to `site`. Nests:
    /// the previous site is restored on exit.
    pub fn with_site<R>(site: Site, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.replace(site as u8));
        let out = f();
        CURRENT.with(|c| c.set(prev));
        out
    }

    /// `(site name, allocation calls, allocated bytes)` per site.
    /// Cumulative since process start; frees are not subtracted (the
    /// counters measure allocator pressure, not residency — residency
    /// is [`super::rss_kb`]'s job).
    pub fn site_totals() -> Vec<(&'static str, u64, u64)> {
        (0..SITES)
            .map(|i| {
                (
                    NAMES[i],
                    ALLOC_CALLS[i].load(Ordering::Relaxed),
                    ALLOC_BYTES[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// A [`System`]-backed global allocator that bills every
    /// allocation to the thread's current [`Site`].
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static A: past_obs::mem::count::CountingAlloc = past_obs::mem::count::CountingAlloc;
    /// ```
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let site = CURRENT.try_with(|c| c.get()).unwrap_or(0) as usize;
            ALLOC_CALLS[site].fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES[site].fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let site = CURRENT.try_with(|c| c.get()).unwrap_or(0) as usize;
            ALLOC_CALLS[site].fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES[site]
                .fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss_kb() > 0, "a live process has resident pages");
            assert!(peak_rss_kb() >= rss_kb());
        }
    }

    #[test]
    fn reset_peak_reports_outcome_and_keeps_watermark_sane() {
        // Whether or not the kernel honours the reset, the watermark
        // must stay a valid peak for the current process.
        let _ = reset_peak();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn site_scoping_nests_and_restores() {
        use super::count::{with_site, Site};
        let out = with_site(Site::TraceBuild, || {
            with_site(Site::Replay, || 7) + 1
        });
        assert_eq!(out, 8);
        // Totals exist for every site even when the allocator is not
        // installed (counters just stay at their current values).
        assert_eq!(super::count::site_totals().len(), 4);
    }
}
